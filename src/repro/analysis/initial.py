"""Initial quality evaluation (paper Section IV-A).

Runs on the first 1,000 read-outs of each board at the start of the
test and produces the data behind:

* **Fig. 4** — the visualised 1 KB start-up pattern of board S0
  (:func:`startup_pattern_image`);
* **Fig. 5** — pooled distributions of within-class HD, between-class
  HD and fractional Hamming weight over all boards
  (:class:`InitialQualityEvaluation`).

This evaluation needs the per-measurement FHD *distribution* (not just
its mean), so it always runs at measurement fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.metrics.hamming import between_class_hd
from repro.metrics.histograms import HistogramSummary, fractional_histogram
from repro.sram.chip import SRAMChip


def startup_pattern_image(bits: np.ndarray, width: int = 128) -> np.ndarray:
    """Reshape a start-up read-out into a 2-D image (Fig. 4).

    Returns a ``(bits/width, width)`` uint8 matrix suitable for
    rendering; the paper shows the 8,192-bit pattern of board S0.
    """
    vector = np.asarray(bits)
    if vector.ndim != 1:
        raise ConfigurationError(f"bits must be 1-D, got shape {vector.shape}")
    if width <= 0 or vector.size % width != 0:
        raise ConfigurationError(
            f"width {width} does not tile a {vector.size}-bit pattern"
        )
    return vector.reshape(-1, width).astype(np.uint8)


@dataclass(frozen=True)
class InitialQualityEvaluation:
    """Pooled initial-quality distributions over a fleet (Fig. 5).

    Attributes
    ----------
    wchd_samples:
        FHD of every non-reference measurement against its board's
        reference, pooled over boards.
    bchd_samples:
        Pairwise FHD between board references.
    fhw_samples:
        Per-measurement fractional Hamming weight, pooled over boards.
    """

    measurements: int
    board_count: int
    wchd_samples: np.ndarray = field(repr=False)
    bchd_samples: np.ndarray = field(repr=False)
    fhw_samples: np.ndarray = field(repr=False)

    @classmethod
    def measure(
        cls, chips: Sequence[SRAMChip], measurements: int = 1000
    ) -> "InitialQualityEvaluation":
        """Take the first ``measurements`` read-outs of each chip.

        The first read-out of each chip doubles as its reference (the
        paper's convention), so each board contributes
        ``measurements - 1`` WCHD samples.
        """
        if len(chips) < 2:
            raise ConfigurationError("initial evaluation needs at least two chips")
        if measurements < 2:
            raise ConfigurationError(f"measurements must be >= 2, got {measurements}")
        wchd_all: List[np.ndarray] = []
        fhw_all: List[np.ndarray] = []
        references: List[np.ndarray] = []
        for chip in chips:
            block = chip.read_startup(measurements)
            reference = block[0]
            references.append(reference)
            distances = (block[1:] != reference[np.newaxis, :]).mean(axis=1)
            wchd_all.append(distances)
            fhw_all.append(block.mean(axis=1))
        return cls(
            measurements=measurements,
            board_count=len(chips),
            wchd_samples=np.concatenate(wchd_all),
            bchd_samples=between_class_hd(references),
            fhw_samples=np.concatenate(fhw_all),
        )

    def wchd_histogram(self, bins: int = 100) -> HistogramSummary:
        """Within-class HD distribution (the Fig. 5 spike near 0)."""
        return fractional_histogram(self.wchd_samples, bins=bins)

    def bchd_histogram(self, bins: int = 100) -> HistogramSummary:
        """Between-class HD distribution (the Fig. 5 mass at 40–50 %)."""
        return fractional_histogram(self.bchd_samples, bins=bins)

    def fhw_histogram(self, bins: int = 100) -> HistogramSummary:
        """Hamming-weight distribution (the Fig. 5 mass at 60–70 %)."""
        return fractional_histogram(self.fhw_samples, bins=bins)
