"""Longitudinal analysis: the paper's evaluation pipeline.

* :mod:`repro.analysis.initial` — initial quality evaluation
  (Section IV-A; Fig. 4 and Fig. 5).
* :mod:`repro.analysis.monthly` — the monthly evaluation protocol
  (Section IV-B: 1,000 consecutive measurements after midnight on the
  8th of each month).
* :mod:`repro.analysis.campaign` — the two-year campaign driver
  producing the Fig. 6 / Table I data.
* :mod:`repro.analysis.timeseries` — per-metric series extraction.
* :mod:`repro.analysis.trends` — trend fitting and change rates.
* :mod:`repro.analysis.accelerated` — the accelerated-aging
  comparison study (Section IV-D vs Maes & van der Leest, HOST 2014).
"""

from repro.analysis.accelerated import AcceleratedAgingStudy, AcceleratedResult
from repro.analysis.campaign import CampaignResult, LongTermCampaign
from repro.analysis.comparison import SourceComparisonStudy, SourceSnapshot
from repro.analysis.environment import EnvironmentStudy, SweepPoint
from repro.analysis.initial import InitialQualityEvaluation, startup_pattern_image
from repro.analysis.lifetime import LifetimePoint, LifetimeProjection
from repro.analysis.migration import (
    CellCategory,
    CellMigrationStudy,
    MigrationResult,
    classify_cells,
)
from repro.analysis.monthly import MonthlyEvaluation, evaluate_month
from repro.analysis.reliability import (
    CellReliabilityModel,
    block_failure_probability,
    key_failure_probability,
)
from repro.analysis.statistics import (
    CampaignInference,
    ConfidenceInterval,
    PairedChangeTest,
    bootstrap_mean_ci,
    paired_change_test,
)
from repro.analysis.timeseries import MetricSeries, QualityTimeSeries
from repro.analysis.trends import fit_power_law_trend, monthly_rates, PowerLawTrend

__all__ = [
    "AcceleratedAgingStudy",
    "AcceleratedResult",
    "CampaignResult",
    "LongTermCampaign",
    "SourceComparisonStudy",
    "SourceSnapshot",
    "EnvironmentStudy",
    "SweepPoint",
    "InitialQualityEvaluation",
    "startup_pattern_image",
    "LifetimePoint",
    "LifetimeProjection",
    "CellCategory",
    "CellMigrationStudy",
    "MigrationResult",
    "classify_cells",
    "MonthlyEvaluation",
    "evaluate_month",
    "CellReliabilityModel",
    "block_failure_probability",
    "key_failure_probability",
    "CampaignInference",
    "ConfidenceInterval",
    "PairedChangeTest",
    "bootstrap_mean_ci",
    "paired_change_test",
    "MetricSeries",
    "QualityTimeSeries",
    "fit_power_law_trend",
    "monthly_rates",
    "PowerLawTrend",
]
