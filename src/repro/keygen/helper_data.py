"""The code-offset fuzzy extractor (helper-data scheme).

Enrollment draws a uniformly random message, encodes it, and publishes
``helper = codeword XOR puf_response``.  Reconstruction XORs the helper
with a *noisy* re-measurement — yielding ``codeword XOR error`` — and
decodes; success reproduces the enrolled message exactly.

The helper data is public: for a full-entropy PUF response it leaks
nothing about the message (one-time-pad argument); for a *biased*
response it leaks ``n - k`` bits at most, which is why debiasing
(:mod:`repro.keygen.debias`) precedes sketching for sources like the
paper's 62.7 %-biased SRAMs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, DecodingFailure, ReconstructionFailure
from repro.io.bitutil import ensure_bits
from repro.keygen.ecc.base import BlockCode
from repro.rng import RandomState, as_generator


@dataclass(frozen=True)
class HelperData:
    """Public helper data of one enrolled secret.

    Attributes
    ----------
    offset:
        ``codeword XOR response`` per block, flattened.
    blocks:
        Number of code blocks the response was split into.
    code_name:
        Descriptive label of the code used (consistency check at
        reconstruction time).
    """

    offset: np.ndarray = field(repr=False)
    blocks: int
    code_name: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "offset", ensure_bits(self.offset))
        if self.blocks < 1:
            raise ConfigurationError(f"blocks must be >= 1, got {self.blocks}")
        if self.offset.size % self.blocks != 0:
            raise ConfigurationError("offset length must divide evenly into blocks")


class CodeOffsetSketch:
    """Code-offset secure sketch over a block code.

    Parameters
    ----------
    code:
        The error-correcting code; its correction radius must exceed
        the worst-case response noise for reliable reconstruction.
    """

    def __init__(self, code: BlockCode):
        self._code = code

    @property
    def code(self) -> BlockCode:
        """The underlying block code."""
        return self._code

    def response_bits_needed(self, secret_bits: int) -> int:
        """PUF response bits consumed to sketch ``secret_bits``."""
        if secret_bits < 1:
            raise ConfigurationError(f"secret_bits must be >= 1, got {secret_bits}")
        blocks = -(-secret_bits // self._code.message_bits)  # ceil division
        return blocks * self._code.codeword_bits

    def enroll(
        self, response: np.ndarray, secret_bits: int, random_state: RandomState = None
    ) -> tuple:
        """Enroll: returns ``(secret, helper_data)``.

        ``response`` must supply at least
        :meth:`response_bits_needed` bits; extras are ignored.
        """
        bits = ensure_bits(response)
        needed = self.response_bits_needed(secret_bits)
        if bits.size < needed:
            raise ConfigurationError(
                f"response too short: need {needed} bits, got {bits.size}"
            )
        rng = as_generator(random_state, "code-offset-enroll")
        blocks = needed // self._code.codeword_bits
        secret = rng.integers(
            0, 2, size=blocks * self._code.message_bits, dtype=np.uint8
        )
        messages = secret.reshape(blocks, self._code.message_bits)
        codewords = self._code.encode_blocks(messages)
        offset = codewords.ravel() ^ bits[:needed]
        helper = HelperData(
            offset=offset, blocks=blocks, code_name=repr(self._code)
        )
        return secret[:secret_bits], helper

    def reconstruct(self, response: np.ndarray, helper: HelperData, secret_bits: int) -> np.ndarray:
        """Recover the enrolled secret from a noisy re-measurement.

        Raises
        ------
        ReconstructionFailure
            When any block's error weight exceeds the code's decoding
            capability.
        """
        if helper.code_name != repr(self._code):
            raise ConfigurationError(
                f"helper data was made with {helper.code_name}, "
                f"not {self._code!r}"
            )
        bits = ensure_bits(response)
        needed = helper.offset.size
        if bits.size < needed:
            raise ConfigurationError(
                f"response too short: need {needed} bits, got {bits.size}"
            )
        noisy_codewords = (helper.offset ^ bits[:needed]).reshape(
            helper.blocks, self._code.codeword_bits
        )
        try:
            messages = self._code.decode_blocks(noisy_codewords)
        except DecodingFailure as exc:
            raise ReconstructionFailure(
                f"secret reconstruction failed: {exc}"
            ) from exc
        secret = messages.ravel()
        if secret.size < secret_bits:
            raise ConfigurationError(
                f"helper data only covers {secret.size} secret bits, "
                f"requested {secret_bits}"
            )
        return secret[:secret_bits]
