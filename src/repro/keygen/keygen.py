"""End-to-end SRAM PUF key generation.

:class:`SRAMKeyGenerator` chains the full commercial-style pipeline on
a simulated chip:

1. measure the start-up response;
2. (optionally) debias it with CVN, publishing the retained-pair mask;
3. sketch it with a code-offset fuzzy extractor, publishing the offset;
4. condition the enrolled secret into the final key with SHA-256.

Reconstruction re-measures the (possibly *aged*) chip and reverses the
pipeline; the enrolled key comes back bit-exact as long as the
response noise stays inside the code's correction radius — which is
precisely what the paper's reliability analysis (WCHD growing from
2.49 % to 2.97 % over two years) guarantees with margin.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, ReconstructionFailure
from repro.keygen.debias import CVNDebiaser
from repro.keygen.ecc.base import BlockCode
from repro.keygen.ecc.concatenated import ConcatenatedCode
from repro.keygen.ecc.golay import ExtendedGolayCode
from repro.keygen.ecc.repetition import RepetitionCode
from repro.keygen.helper_data import CodeOffsetSketch, HelperData
from repro.keygen.kdf import derive_key
from repro.rng import RandomState
from repro.sram.chip import SRAMChip
from repro.telemetry import get_metrics, get_tracer

logger = logging.getLogger(__name__)


def default_code() -> BlockCode:
    """The default PUF code: Golay [24,12,8] over 5x repetition.

    Corrects a guaranteed 11 errors per 120-bit block and in practice
    survives i.i.d. bit error rates well above 10 % — an order of
    magnitude over the paper's worst-case 3.25 % WCHD after two years.
    """
    return ConcatenatedCode(ExtendedGolayCode(), RepetitionCode(5))


@dataclass(frozen=True)
class EnrolledKey:
    """Public enrollment record (everything but the key itself).

    Attributes
    ----------
    helper:
        The code-offset helper data.
    debias_pairs:
        Retained-pair mask of the CVN debiaser (``None`` when
        debiasing was disabled).
    key_bits:
        Derived key length.
    secret_bits:
        Sketched secret length.
    """

    helper: HelperData
    debias_pairs: Optional[np.ndarray] = field(repr=False, default=None)
    key_bits: int = 256
    secret_bits: int = 128


class SRAMKeyGenerator:
    """Enroll/reconstruct cryptographic keys on a simulated SRAM chip.

    Parameters
    ----------
    chip:
        The device; enrollment and reconstruction each trigger a fresh
        power-up measurement.
    code:
        The error-correcting code of the sketch.
    debias:
        Run CVN debiasing before sketching (recommended for the
        paper's ~62.7 %-biased devices).
    key_bits:
        Length of the derived key.
    secret_bits:
        Length of the sketched secret the key is derived from.
    """

    def __init__(
        self,
        chip: SRAMChip,
        code: Optional[BlockCode] = None,
        debias: bool = True,
        key_bits: int = 256,
        secret_bits: int = 128,
    ):
        if key_bits < 1 or secret_bits < 1:
            raise ConfigurationError("key_bits and secret_bits must be positive")
        self._chip = chip
        self._code = code if code is not None else default_code()
        self._sketch = CodeOffsetSketch(self._code)
        self._debias = CVNDebiaser() if debias else None
        self._key_bits = key_bits
        self._secret_bits = secret_bits
        metrics = get_metrics()
        self._enrollments = metrics.counter("keygen.enrollments")
        self._reconstructions = metrics.counter("keygen.reconstructions")
        self._decode_failures = metrics.counter("keygen.decode_failures")

    @property
    def chip(self) -> SRAMChip:
        """The device keys are generated on."""
        return self._chip

    @property
    def code(self) -> BlockCode:
        """The sketch's error-correcting code."""
        return self._code

    def audit(self):
        """Entropy audit of this pipeline on this device.

        Measures the device bias from a fresh read-out and runs
        :func:`repro.keygen.accounting.audit_pipeline` — call before
        enrolling to check the configuration's security margin.
        """
        from repro.keygen.accounting import audit_pipeline

        response = self._chip.read_startup()
        return audit_pipeline(
            self._code,
            response_bits=int(response.size),
            response_bias=float(response.mean()),
            key_bits=self._key_bits,
            secret_bits=self._secret_bits,
            debias=self._debias is not None,
        )

    def enroll(self, random_state: RandomState = None) -> tuple:
        """One-time enrollment: returns ``(key, EnrolledKey record)``.

        Raises :class:`ConfigurationError` when the chip cannot supply
        enough (debiased) response bits for the requested secret.
        """
        with get_tracer().span("keygen.enroll", chip=self._chip.chip_id):
            response = self._chip.read_startup()
            debias_pairs = None
            if self._debias is not None:
                result = self._debias.enroll(response)
                response = result.bits
                debias_pairs = result.selected_pairs
            needed = self._sketch.response_bits_needed(self._secret_bits)
            if response.size < needed:
                raise ConfigurationError(
                    f"device yields {response.size} usable bits, sketch needs {needed}; "
                    "reduce secret_bits or use a higher-rate code"
                )
            secret, helper = self._sketch.enroll(
                response, self._secret_bits, random_state=random_state
            )
            key = derive_key(secret, self._key_bits)
            record = EnrolledKey(
                helper=helper,
                debias_pairs=debias_pairs,
                key_bits=self._key_bits,
                secret_bits=self._secret_bits,
            )
            self._enrollments.inc()
            logger.info(
                "enrolled chip %d: %d-bit key from %d-bit secret",
                self._chip.chip_id,
                self._key_bits,
                self._secret_bits,
            )
            return key, record

    def reconstruct(self, record: EnrolledKey) -> np.ndarray:
        """Re-derive the enrolled key from a fresh measurement.

        Raises
        ------
        ReconstructionFailure
            When the response has drifted beyond the code's correction
            capability (e.g. extreme aging or wrong device).
        """
        with get_tracer().span("keygen.reconstruct", chip=self._chip.chip_id):
            response = self._chip.read_startup()
            if record.debias_pairs is not None:
                if self._debias is None:
                    raise ConfigurationError(
                        "enrollment used debiasing but this generator has it disabled"
                    )
                response = self._debias.apply(response, record.debias_pairs)
            elif self._debias is not None:
                raise ConfigurationError(
                    "enrollment skipped debiasing but this generator enables it"
                )
            try:
                secret = self._sketch.reconstruct(
                    response, record.helper, record.secret_bits
                )
            except ReconstructionFailure:
                self._decode_failures.inc()
                logger.warning(
                    "key reconstruction failed on chip %d (decode failure)",
                    self._chip.chip_id,
                )
                raise
            self._reconstructions.inc()
            return derive_key(secret, record.key_bits)

    def reconstruction_succeeds(self, record: EnrolledKey, reference_key: np.ndarray) -> bool:
        """Convenience: reconstruct and compare against the enrolled key."""
        try:
            key = self.reconstruct(record)
        except ReconstructionFailure:
            return False
        return bool(np.array_equal(key, reference_key))
