"""Key derivation: hash conditioning of reconstructed secrets.

The fuzzy extractor's reconstructed message still reflects the sketch's
entropy loss, so the final key is derived through a cryptographic hash
(SHA-256), optionally domain-separated by a context label — the
standard "conditioning" stage of commercial PUF key generators.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import ConfigurationError
from repro.io.bitutil import ensure_bits, pack_bits, unpack_bits


def derive_key(
    secret_bits: np.ndarray, key_bits: int = 256, context: str = "repro-sram-puf-key"
) -> np.ndarray:
    """Derive ``key_bits`` key bits from a reconstructed secret.

    Uses SHA-256 in counter mode (NIST SP 800-108 style) over the
    packed secret, domain-separated by ``context``.
    """
    if key_bits < 1:
        raise ConfigurationError(f"key_bits must be >= 1, got {key_bits}")
    bits = ensure_bits(secret_bits)
    if bits.size == 0:
        raise ConfigurationError("cannot derive a key from an empty secret")
    # Pad the secret to a byte boundary for packing.
    padding = (-bits.size) % 8
    padded = np.concatenate([bits, np.zeros(padding, dtype=np.uint8)])
    secret_bytes = pack_bits(padded)

    output = bytearray()
    counter = 0
    while len(output) * 8 < key_bits:
        block = hashlib.sha256(
            counter.to_bytes(4, "big")
            + context.encode("utf-8")
            + b"\x00"
            + len(bits).to_bytes(4, "big")
            + secret_bytes
        ).digest()
        output.extend(block)
        counter += 1
    return unpack_bits(bytes(output), bit_count=key_bits)
