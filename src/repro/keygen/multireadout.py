"""Temporal majority voting (TMV) over repeated power-ups.

A standard pre-ECC noise reducer in deployed PUF key generators: read
the PUF ``votes`` times (odd), take the per-bit majority, and hand the
ECC a far cleaner response.  A cell with flip probability ``q`` mis-
votes with probability ``P[Bin(votes, q) > votes / 2]`` — e.g. 3 %
per-read error becomes ~0.26 % with 3 votes and ~0.03 % with 5.

TMV trades *time* (power cycles at reconstruction) for ECC *rate*, the
dual of what an inner repetition code does with *space*.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.errors import ConfigurationError
from repro.sram.chip import SRAMChip


def majority_vote(readouts: np.ndarray) -> np.ndarray:
    """Per-bit majority of a ``(votes, bits)`` read-out block.

    Requires an odd number of rows so no tie-breaking rule is needed.
    """
    block = np.asarray(readouts)
    if block.ndim != 2:
        raise ConfigurationError(f"readouts must be 2-D, got shape {block.shape}")
    votes = block.shape[0]
    if votes % 2 == 0:
        raise ConfigurationError(f"vote count must be odd, got {votes}")
    if block.size and (block.min() < 0 or block.max() > 1):
        raise ConfigurationError("readouts may only contain 0 and 1")
    return (block.sum(axis=0) * 2 > votes).astype(np.uint8)


def voted_error_rate(per_read_error: float, votes: int) -> float:
    """Post-TMV bit error probability for a per-read error rate.

    ``P[Bin(votes, q) > votes / 2]`` — exact for independent reads.
    """
    if not 0.0 <= per_read_error <= 1.0:
        raise ConfigurationError(
            f"per_read_error must be in [0, 1], got {per_read_error}"
        )
    if votes < 1 or votes % 2 == 0:
        raise ConfigurationError(f"votes must be a positive odd number, got {votes}")
    return float(stats.binom.sf(votes // 2, votes, per_read_error))


class VotedReadout:
    """Reads a chip with temporal majority voting.

    Parameters
    ----------
    chip:
        The device.
    votes:
        Odd number of power-ups per logical read-out.

    Examples
    --------
    >>> from repro.sram import SRAMChip
    >>> reader = VotedReadout(SRAMChip(0, random_state=3), votes=5)
    >>> reader.read().size
    8192
    """

    def __init__(self, chip: SRAMChip, votes: int = 3):
        if votes < 1 or votes % 2 == 0:
            raise ConfigurationError(f"votes must be a positive odd number, got {votes}")
        self._chip = chip
        self._votes = votes

    @property
    def chip(self) -> SRAMChip:
        """The underlying device."""
        return self._chip

    @property
    def votes(self) -> int:
        """Power-ups per logical read-out."""
        return self._votes

    def read(self) -> np.ndarray:
        """One TMV read-out (costs ``votes`` power cycles)."""
        if self._votes == 1:
            return self._chip.read_startup()
        return majority_vote(self._chip.read_startup(self._votes))
