"""Debiasing schemes for biased PUF responses.

The paper's devices power up to '1' with probability ≈62.7 %; a
code-offset sketch over such a response leaks more than the usual
``n - k`` bound, so commercial key generators debias first.  The
schemes here follow Maes, van der Leest, van der Sluis & Willems,
"Secure key generation from biased PUFs" (CHES 2015) — the paper's
reference [14], which handles bias up to 25 %/75 %:

* :func:`von_neumann_debias` — **classic von Neumann (CVN)**: consume
  non-overlapping bit pairs, keep one bit per *discordant* pair
  (01 → 0, 10 → 1).  The output is exactly unbiased for i.i.d. input
  bits, at the cost of rate ``p(1-p)``.
* :class:`CVNDebiaser` — the *enrollment/reconstruction* variant: the
  retained-pair mask is published as helper data so the reconstructor
  selects the same pairs from its noisy re-measurement.
* :func:`pair_output_von_neumann` — **2O-VN**: a second von Neumann
  pass over the discarded concordant pairs (00/11 treated as
  super-symbols), recovering part of the lost rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.io.bitutil import ensure_bits


@dataclass(frozen=True)
class DebiasResult:
    """Output of a debiasing pass.

    Attributes
    ----------
    bits:
        The debiased output bits.
    selected_pairs:
        Indices (into the sequence of non-overlapping input pairs) of
        the pairs that produced output — the CVN helper data.
    input_bits:
        Length of the consumed input.
    """

    bits: np.ndarray = field(repr=False)
    selected_pairs: np.ndarray = field(repr=False)
    input_bits: int

    @property
    def rate(self) -> float:
        """Output bits per input bit."""
        if self.input_bits == 0:
            return 0.0
        return self.bits.size / self.input_bits


def _split_pairs(bits: np.ndarray) -> np.ndarray:
    """Reshape to non-overlapping pairs, dropping a trailing odd bit."""
    usable = bits.size - (bits.size % 2)
    if usable == 0:
        raise ConfigurationError("need at least one bit pair to debias")
    return bits[:usable].reshape(-1, 2)


def von_neumann_debias(bits: np.ndarray) -> DebiasResult:
    """Classic von Neumann extraction (01 → 0, 10 → 1)."""
    vector = ensure_bits(bits)
    pairs = _split_pairs(vector)
    discordant = pairs[:, 0] != pairs[:, 1]
    selected = np.flatnonzero(discordant)
    # Convention: a (0, 1) pair outputs 0 and a (1, 0) pair outputs 1 —
    # the *first* bit of the pair.
    output = pairs[selected, 0]
    return DebiasResult(
        bits=output.astype(np.uint8),
        selected_pairs=selected,
        input_bits=int(vector.size),
    )


def pair_output_von_neumann(bits: np.ndarray) -> DebiasResult:
    """2O-VN: a second extraction pass over the concordant pairs.

    Pass 1 is classic von Neumann.  Pass 2 treats the discarded 00/11
    pairs as symbols (00 → '0', 11 → '1') and von-Neumann-extracts
    *those*, which is again exactly unbiased for i.i.d. inputs.  The
    combined rate approaches ``p(1-p) + p'(1-p')/2`` with
    ``p' = p² / (p² + (1-p)²)``.
    """
    vector = ensure_bits(bits)
    pairs = _split_pairs(vector)
    discordant = pairs[:, 0] != pairs[:, 1]
    first_pass = np.flatnonzero(discordant)
    output_bits = [pairs[first_pass, 0]]

    concordant_symbols = pairs[~discordant, 0]  # 00 -> 0, 11 -> 1
    if concordant_symbols.size >= 2:
        second = von_neumann_debias(concordant_symbols)
        output_bits.append(second.bits)
    return DebiasResult(
        bits=np.concatenate(output_bits).astype(np.uint8),
        selected_pairs=first_pass,
        input_bits=int(vector.size),
    )


class CVNDebiaser:
    """CVN debiasing with retained-pair helper data (CHES 2015).

    Enrollment runs classic von Neumann and publishes which pairs were
    retained; reconstruction extracts the first bit of exactly those
    pairs from the noisy re-measurement.  A retained bit survives
    reconstruction with roughly the raw reliability of its cell, so the
    debiased stream feeds a code-offset sketch unchanged.
    """

    def enroll(self, response: np.ndarray) -> DebiasResult:
        """Debias an enrollment response; the result carries the mask."""
        return von_neumann_debias(response)

    def apply(self, response: np.ndarray, selected_pairs: np.ndarray) -> np.ndarray:
        """Re-extract the enrolled pair positions from a re-measurement."""
        vector = ensure_bits(response)
        pairs = _split_pairs(vector)
        selected = np.asarray(selected_pairs)
        if selected.size and (selected.min() < 0 or selected.max() >= pairs.shape[0]):
            raise ConfigurationError(
                "selected_pairs indices exceed the response's pair count"
            )
        return pairs[selected, 0].astype(np.uint8)
