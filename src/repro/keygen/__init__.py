"""SRAM PUF key generation (paper Section II-A.1).

The paper's first application: derive a stable cryptographic key from
a noisy, biased PUF response via a helper-data scheme.  This
subpackage provides every piece:

* :mod:`repro.keygen.ecc` — error-correcting codes: repetition,
  Hamming, extended Golay [24,12,8], BCH with Berlekamp–Massey
  decoding, and code concatenation (the paper cites schemes correcting
  up to 25 % bit error rate).
* :mod:`repro.keygen.helper_data` — the code-offset fuzzy extractor
  (secure sketch): enrollment produces public helper data,
  reconstruction recovers the enrolled secret from a noisy
  re-measurement.
* :mod:`repro.keygen.debias` — von Neumann debiasing with retained-
  pair helper data (Maes et al., CHES 2015 handle bias up to
  25 %/75 %; the paper's devices sit at 62.7 %).
* :mod:`repro.keygen.kdf` — hash-based key derivation.
* :mod:`repro.keygen.keygen` — :class:`SRAMKeyGenerator`, the
  end-to-end enroll/reconstruct flow on a simulated chip.
"""

from repro.keygen.accounting import EntropyBudget, audit_pipeline
from repro.keygen.debias import DebiasResult, pair_output_von_neumann, von_neumann_debias
from repro.keygen.ecc import (
    BCHCode,
    BlockCode,
    ConcatenatedCode,
    ExtendedGolayCode,
    HammingCode,
    PolarCode,
    ReedMullerCode,
    RepetitionCode,
)
from repro.keygen.multireadout import VotedReadout, majority_vote, voted_error_rate
from repro.keygen.helper_data import CodeOffsetSketch, HelperData
from repro.keygen.kdf import derive_key
from repro.keygen.keygen import EnrolledKey, SRAMKeyGenerator

__all__ = [
    "EntropyBudget",
    "audit_pipeline",
    "DebiasResult",
    "pair_output_von_neumann",
    "von_neumann_debias",
    "BCHCode",
    "BlockCode",
    "ConcatenatedCode",
    "ExtendedGolayCode",
    "HammingCode",
    "PolarCode",
    "ReedMullerCode",
    "VotedReadout",
    "majority_vote",
    "voted_error_rate",
    "RepetitionCode",
    "CodeOffsetSketch",
    "HelperData",
    "derive_key",
    "EnrolledKey",
    "SRAMKeyGenerator",
]
