"""The block-code interface.

A :class:`BlockCode` maps ``k`` message bits to ``n`` codeword bits and
back.  Implementations are *bounded-distance* decoders: within their
guaranteed correction radius ``t`` they always return the transmitted
message; beyond it they either still succeed, or raise
:class:`~repro.errors.DecodingFailure` — they never silently return a
wrong answer for a detectable error.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ConfigurationError
from repro.io.bitutil import ensure_bits


class BlockCode(abc.ABC):
    """Abstract binary block code."""

    @property
    @abc.abstractmethod
    def message_bits(self) -> int:
        """Message length ``k``."""

    @property
    @abc.abstractmethod
    def codeword_bits(self) -> int:
        """Codeword length ``n``."""

    @property
    @abc.abstractmethod
    def correctable_errors(self) -> int:
        """Guaranteed correction radius ``t``."""

    @property
    def rate(self) -> float:
        """Code rate ``k / n``."""
        return self.message_bits / self.codeword_bits

    @abc.abstractmethod
    def encode(self, message: np.ndarray) -> np.ndarray:
        """Encode ``k`` message bits into an ``n``-bit codeword."""

    @abc.abstractmethod
    def decode(self, received: np.ndarray) -> np.ndarray:
        """Decode a (possibly corrupted) ``n``-bit word to ``k`` bits.

        Raises
        ------
        DecodingFailure
            When the word detectably lies outside the decoding radius.
        """

    # Shared validation helpers ------------------------------------------

    def _check_message(self, message: np.ndarray) -> np.ndarray:
        return ensure_bits(message, length=self.message_bits)

    def _check_received(self, received: np.ndarray) -> np.ndarray:
        return ensure_bits(received, length=self.codeword_bits)

    def encode_blocks(self, messages: np.ndarray) -> np.ndarray:
        """Encode a (blocks x k) matrix row-wise."""
        matrix = np.asarray(messages)
        if matrix.ndim != 2 or matrix.shape[1] != self.message_bits:
            raise ConfigurationError(
                f"expected (blocks, {self.message_bits}) messages, got {matrix.shape}"
            )
        return np.stack([self.encode(row) for row in matrix])

    def decode_blocks(self, received: np.ndarray) -> np.ndarray:
        """Decode a (blocks x n) matrix row-wise."""
        matrix = np.asarray(received)
        if matrix.ndim != 2 or matrix.shape[1] != self.codeword_bits:
            raise ConfigurationError(
                f"expected (blocks, {self.codeword_bits}) words, got {matrix.shape}"
            )
        return np.stack([self.decode(row) for row in matrix])

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}[n={self.codeword_bits}, "
            f"k={self.message_bits}, t={self.correctable_errors}]"
        )
