"""Hamming codes.

``[2^r - 1, 2^r - 1 - r, 3]`` single-error-correcting codes with
syndrome decoding.  The parity-check matrix columns are the binary
representations of 1..n, so the syndrome of a single error *is* the
(1-based) error position — the classic construction.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DecodingFailure
from repro.keygen.ecc.base import BlockCode


class HammingCode(BlockCode):
    """Hamming code of order ``r`` (``r >= 2``).

    Data bits live at the non-power-of-two positions, parity bits at
    positions 1, 2, 4, ... (1-based), as in the classic layout.
    """

    def __init__(self, order: int):
        if order < 2:
            raise ConfigurationError(f"order must be >= 2, got {order}")
        self._r = int(order)
        self._n = (1 << order) - 1
        self._k = self._n - order
        positions = np.arange(1, self._n + 1)
        self._parity_positions = np.array([1 << i for i in range(order)])
        self._data_positions = np.array(
            [p for p in positions if p not in set(self._parity_positions)]
        )
        # H columns: binary representation of the (1-based) position.
        self._check_matrix = (
            (positions[np.newaxis, :] >> np.arange(order)[:, np.newaxis]) & 1
        ).astype(np.uint8)

    @property
    def message_bits(self) -> int:
        return self._k

    @property
    def codeword_bits(self) -> int:
        return self._n

    @property
    def correctable_errors(self) -> int:
        return 1

    def encode(self, message: np.ndarray) -> np.ndarray:
        bits = self._check_message(message)
        codeword = np.zeros(self._n, dtype=np.uint8)
        codeword[self._data_positions - 1] = bits
        syndrome = self._syndrome(codeword)
        # Setting each parity bit to its syndrome component zeroes the
        # syndrome: parity position 2^i touches only syndrome bit i.
        codeword[self._parity_positions - 1] = syndrome
        return codeword

    def decode(self, received: np.ndarray) -> np.ndarray:
        word = self._check_received(received).copy()
        syndrome = self._syndrome(word)
        position = int(syndrome @ (1 << np.arange(self._r)))
        if position != 0:
            if position > self._n:
                raise DecodingFailure(
                    f"syndrome {position} exceeds the code length {self._n}"
                )
            word[position - 1] ^= 1
        return word[self._data_positions - 1]

    def _syndrome(self, word: np.ndarray) -> np.ndarray:
        return (self._check_matrix @ word) % 2
