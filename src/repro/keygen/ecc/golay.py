"""The extended binary Golay code [24, 12, 8].

A perfect fit for PUF key generation blocks: rate 1/2, corrects any 3
errors in 24 bits and *detects* weight-4 patterns (raising
:class:`~repro.errors.DecodingFailure` instead of miscorrecting).

Construction: systematic generator ``G = [I | B]`` with the classic
bordered-circulant ``B`` (MacWilliams & Sloane).  Self-duality gives
``B · Bᵀ = I`` over GF(2), which the decoder exploits; correctness of
the matrix identities is asserted at construction time.

Decoding is the standard four-case syndrome algorithm for weight ≤ 3
patterns, split by how many errors hit each half of the word:

=========================  =======================================
errors (first, second)     case
=========================  =======================================
(0, ≤3)                    ``e = (0, s)``
(1, ≤2)                    ``e = (u_i, s + B_i)``
(≤3, 0)                    ``e = (s · Bᵀ, 0)``
(≤2, 1)                    ``e = (s · Bᵀ + colᵢ(B), u_i)``
=========================  =======================================
"""

from __future__ import annotations

import numpy as np

from repro.errors import DecodingFailure
from repro.keygen.ecc.base import BlockCode


def _build_b_matrix() -> np.ndarray:
    """The 12x12 bordered-circulant B of the standard construction."""
    circulant_row = np.array([1, 1, 0, 1, 1, 1, 0, 0, 0, 1, 0], dtype=np.uint8)
    matrix = np.zeros((12, 12), dtype=np.uint8)
    matrix[0, 1:] = 1
    matrix[1:, 0] = 1
    for row in range(11):
        matrix[row + 1, 1:] = np.roll(circulant_row, row)
    return matrix


class ExtendedGolayCode(BlockCode):
    """The [24, 12, 8] extended Golay code."""

    def __init__(self):
        self._b = _build_b_matrix()
        self._b_transpose = self._b.T.copy()
        identity = np.eye(12, dtype=np.uint8)
        if not np.array_equal((self._b @ self._b_transpose) % 2, identity):
            raise AssertionError("Golay B matrix does not satisfy B·Bᵀ = I")

    @property
    def message_bits(self) -> int:
        return 12

    @property
    def codeword_bits(self) -> int:
        return 24

    @property
    def correctable_errors(self) -> int:
        return 3

    def encode(self, message: np.ndarray) -> np.ndarray:
        bits = self._check_message(message)
        parity = (bits @ self._b) % 2
        return np.concatenate([bits, parity]).astype(np.uint8)

    def decode(self, received: np.ndarray) -> np.ndarray:
        word = self._check_received(received)
        first, second = word[:12], word[12:]
        # Syndrome of H = [Bᵀ | I]: s = r1·B + r2.
        syndrome = ((first @ self._b) + second) % 2

        error = self._locate_error(syndrome.astype(np.uint8))
        corrected = (word ^ error) % 2
        return corrected[:12]

    def _locate_error(self, syndrome: np.ndarray) -> np.ndarray:
        weight = int(syndrome.sum())
        # Case (0, <=3): all errors in the parity half.
        if weight <= 3:
            return np.concatenate([np.zeros(12, dtype=np.uint8), syndrome])
        # Case (1, <=2): one error in the data half at position i.
        for index in range(12):
            candidate = syndrome ^ self._b[index]
            if int(candidate.sum()) <= 2:
                unit = np.zeros(12, dtype=np.uint8)
                unit[index] = 1
                return np.concatenate([unit, candidate])
        # Case (<=3, 0): all errors in the data half.
        data_error = (syndrome @ self._b_transpose) % 2
        if int(data_error.sum()) <= 3:
            return np.concatenate(
                [data_error.astype(np.uint8), np.zeros(12, dtype=np.uint8)]
            )
        # Case (<=2, 1): one error in the parity half at position i.
        for index in range(12):
            candidate = (data_error ^ self._b_transpose[index]) % 2
            if int(candidate.sum()) <= 2:
                unit = np.zeros(12, dtype=np.uint8)
                unit[index] = 1
                return np.concatenate([candidate.astype(np.uint8), unit])
        raise DecodingFailure("error weight exceeds 3; Golay decoding failed")
