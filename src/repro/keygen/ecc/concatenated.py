"""Code concatenation.

The classic PUF fuzzy-extractor construction: a strong *outer* code
(Golay, BCH) is concatenated with an *inner* repetition code.  The
inner code crushes the raw bit error rate (e.g. 15 % → well below 1 %
for 5 repetitions) and the outer code cleans up the residual errors —
together they reach the "up to 25 % bit error rate" regime the paper's
Section II-A.1 cites as the ECC design boundary.

Each outer codeword bit is encoded with the inner code; inner decoding
is per-bit and cannot fail (majority vote), so a concatenated decode
fails only when the outer decoder detects an uncorrectable pattern.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.keygen.ecc.base import BlockCode
from repro.keygen.ecc.repetition import RepetitionCode


class ConcatenatedCode(BlockCode):
    """Outer block code over an inner repetition code.

    Parameters
    ----------
    outer:
        Any block code.
    inner:
        A repetition code (``message_bits == 1``), applied to each
        outer codeword bit.
    """

    def __init__(self, outer: BlockCode, inner: RepetitionCode):
        if inner.message_bits != 1:
            raise ConfigurationError(
                "inner code must encode single bits (a repetition code)"
            )
        self._outer = outer
        self._inner = inner

    @property
    def outer(self) -> BlockCode:
        """The outer code."""
        return self._outer

    @property
    def inner(self) -> RepetitionCode:
        """The inner repetition code."""
        return self._inner

    @property
    def message_bits(self) -> int:
        return self._outer.message_bits

    @property
    def codeword_bits(self) -> int:
        return self._outer.codeword_bits * self._inner.codeword_bits

    @property
    def correctable_errors(self) -> int:
        """Guaranteed radius of the concatenation.

        Worst case: breaking one outer bit costs ``t_inner + 1`` raw
        errors, and ``t_outer + 1`` broken outer bits break the outer
        code, so any pattern of weight
        ``(t_outer + 1) * (t_inner + 1) - 1`` is always corrected.
        (Typical random-error performance is far better.)
        """
        inner_t = self._inner.correctable_errors
        outer_t = self._outer.correctable_errors
        return (outer_t + 1) * (inner_t + 1) - 1

    def encode(self, message: np.ndarray) -> np.ndarray:
        outer_word = self._outer.encode(self._check_message(message))
        return np.repeat(outer_word, self._inner.codeword_bits)

    def decode(self, received: np.ndarray) -> np.ndarray:
        word = self._check_received(received)
        groups = word.reshape(self._outer.codeword_bits, self._inner.codeword_bits)
        # Majority vote per outer bit (vectorized inner decode).
        votes = (groups.sum(axis=1) * 2 > self._inner.codeword_bits).astype(np.uint8)
        return self._outer.decode(votes)
