"""Repetition code.

The simplest PUF workhorse: each message bit is repeated ``n`` times
and decoded by majority vote.  An odd-length repetition code corrects
``(n - 1) / 2`` errors per bit — an ``n = 11`` repetition code already
handles the >25 % bit error rates the paper's ECC boundary mentions,
at a steep rate cost.  Usually used as the *inner* code of a
concatenation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.keygen.ecc.base import BlockCode


class RepetitionCode(BlockCode):
    """``[n, 1, n]`` repetition code with majority decoding.

    Parameters
    ----------
    repetitions:
        Codeword length; must be odd so majority votes cannot tie.
    """

    def __init__(self, repetitions: int):
        if repetitions < 1 or repetitions % 2 == 0:
            raise ConfigurationError(
                f"repetitions must be a positive odd number, got {repetitions}"
            )
        self._n = int(repetitions)

    @property
    def message_bits(self) -> int:
        return 1

    @property
    def codeword_bits(self) -> int:
        return self._n

    @property
    def correctable_errors(self) -> int:
        return (self._n - 1) // 2

    def encode(self, message: np.ndarray) -> np.ndarray:
        bits = self._check_message(message)
        return np.repeat(bits, self._n)

    def decode(self, received: np.ndarray) -> np.ndarray:
        word = self._check_received(received)
        majority = 1 if int(word.sum()) * 2 > self._n else 0
        return np.array([majority], dtype=np.uint8)
