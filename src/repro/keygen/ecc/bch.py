"""Binary BCH codes with Berlekamp–Massey decoding.

A BCH code of length ``n = 2^m - 1`` and designed distance
``2t + 1`` corrects any ``t`` bit errors.  The paper's ECC boundary —
"error correction codes can be designed to correct up to 25 % of bit
error rate" — is reached in practice by concatenating a code like this
with an inner repetition code; BCH(127, k, t) family members are the
standard outer codes of commercial PUF fuzzy extractors.

Implementation notes:

* the generator polynomial is the LCM of the minimal polynomials of
  ``alpha^1 .. alpha^2t`` (GF(2) polynomial bitmasks);
* encoding is systematic (message in the high-order positions);
* decoding computes 2t syndromes, runs Berlekamp–Massey for the error
  locator, Chien-searches its roots, flips the located bits and
  re-checks the syndromes — any inconsistency raises
  :class:`~repro.errors.DecodingFailure` rather than returning a
  silently miscorrected word.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import ConfigurationError, DecodingFailure
from repro.keygen.ecc.base import BlockCode
from repro.keygen.ecc.gf2m import GF2m


def _gf2_poly_degree(poly: int) -> int:
    return poly.bit_length() - 1


def _gf2_poly_mul(a: int, b: int) -> int:
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        b >>= 1
    return result


def _gf2_poly_mod(numerator: int, divisor: int) -> int:
    if divisor == 0:
        raise ConfigurationError("polynomial division by zero")
    divisor_degree = _gf2_poly_degree(divisor)
    while _gf2_poly_degree(numerator) >= divisor_degree and numerator:
        shift = _gf2_poly_degree(numerator) - divisor_degree
        numerator ^= divisor << shift
    return numerator


class BCHCode(BlockCode):
    """Primitive binary BCH code over GF(2^m).

    Parameters
    ----------
    m:
        Field degree; the code length is ``2^m - 1``.
    t:
        Designed error-correction capability.

    Examples
    --------
    >>> code = BCHCode(m=4, t=2)   # BCH(15, 7, 5)
    >>> (code.codeword_bits, code.message_bits)
    (15, 7)
    """

    def __init__(self, m: int, t: int):
        if t < 1:
            raise ConfigurationError(f"t must be >= 1, got {t}")
        self._field = GF2m(m)
        self._n = self._field.order
        self._t = int(t)

        # Generator polynomial: LCM of minimal polynomials of alpha^1..2t.
        generator = 1
        seen: List[int] = []
        for power in range(1, 2 * t + 1):
            minimal = self._field.minimal_polynomial(power)
            if minimal not in seen:
                seen.append(minimal)
                generator = _gf2_poly_mul(generator, minimal)
        self._generator = generator
        self._parity_bits = _gf2_poly_degree(generator)
        self._k = self._n - self._parity_bits
        if self._k <= 0:
            raise ConfigurationError(
                f"BCH(m={m}, t={t}) has no message bits (n={self._n}, "
                f"parity={self._parity_bits})"
            )

    @property
    def field(self) -> GF2m:
        """The underlying Galois field."""
        return self._field

    @property
    def generator_polynomial(self) -> int:
        """The generator polynomial as a GF(2) bitmask."""
        return self._generator

    @property
    def message_bits(self) -> int:
        return self._k

    @property
    def codeword_bits(self) -> int:
        return self._n

    @property
    def correctable_errors(self) -> int:
        return self._t

    # -- encoding ---------------------------------------------------------

    def encode(self, message: np.ndarray) -> np.ndarray:
        bits = self._check_message(message)
        message_poly = 0
        for index, bit in enumerate(bits):
            if bit:
                message_poly |= 1 << index
        shifted = message_poly << self._parity_bits
        remainder = _gf2_poly_mod(shifted, self._generator)
        codeword_poly = shifted | remainder
        codeword = np.zeros(self._n, dtype=np.uint8)
        for index in range(self._n):
            codeword[index] = (codeword_poly >> index) & 1
        return codeword

    # -- decoding ---------------------------------------------------------

    def decode(self, received: np.ndarray) -> np.ndarray:
        word = self._check_received(received).copy()
        syndromes = self._syndromes(word)
        if any(syndromes):
            locator = self._berlekamp_massey(syndromes)
            error_positions = self._chien_search(locator)
            for position in error_positions:
                word[position] ^= 1
            if any(self._syndromes(word)):
                raise DecodingFailure(
                    "syndromes remain non-zero after correction; error "
                    f"weight exceeds t={self._t}"
                )
        return word[self._parity_bits :]

    def _syndromes(self, word: np.ndarray) -> List[int]:
        field = self._field
        error_logs = np.flatnonzero(word)
        syndromes = []
        for power in range(1, 2 * self._t + 1):
            value = 0
            for position in error_logs:
                value ^= field.exp(int(position) * power)
            syndromes.append(value)
        return syndromes

    def _berlekamp_massey(self, syndromes: List[int]) -> List[int]:
        """Error-locator polynomial (lowest-degree coefficient first)."""
        field = self._field
        locator = [1]
        previous = [1]
        shift = 1
        previous_discrepancy = 1
        errors = 0
        for index, syndrome in enumerate(syndromes):
            discrepancy = syndrome
            for degree in range(1, errors + 1):
                if degree < len(locator):
                    discrepancy ^= field.multiply(locator[degree], syndromes[index - degree])
            if discrepancy == 0:
                shift += 1
            elif 2 * errors <= index:
                old_locator = list(locator)
                scale = field.multiply(discrepancy, field.inverse(previous_discrepancy))
                update = [0] * shift + [field.multiply(scale, c) for c in previous]
                locator = self._poly_add(locator, update)
                previous = old_locator
                previous_discrepancy = discrepancy
                errors = index + 1 - errors
                shift = 1
            else:
                scale = field.multiply(discrepancy, field.inverse(previous_discrepancy))
                update = [0] * shift + [field.multiply(scale, c) for c in previous]
                locator = self._poly_add(locator, update)
                shift += 1
        while locator and locator[-1] == 0:
            locator.pop()
        if len(locator) - 1 > self._t:
            raise DecodingFailure(
                f"error locator degree {len(locator) - 1} exceeds t={self._t}"
            )
        return locator

    def _chien_search(self, locator: List[int]) -> List[int]:
        """Error positions: i such that alpha^{-i} is a locator root."""
        field = self._field
        expected = len(locator) - 1
        if expected == 0:
            return []
        positions = []
        for position in range(self._n):
            point = field.exp(-position)
            if field.poly_eval(locator, point) == 0:
                positions.append(position)
        if len(positions) != expected:
            raise DecodingFailure(
                f"locator has {len(positions)} roots but degree {expected}; "
                "uncorrectable error pattern"
            )
        return positions

    @staticmethod
    def _poly_add(a: List[int], b: List[int]) -> List[int]:
        length = max(len(a), len(b))
        padded_a = a + [0] * (length - len(a))
        padded_b = b + [0] * (length - len(b))
        return [x ^ y for x, y in zip(padded_a, padded_b)]
