"""Arithmetic in the Galois fields GF(2^m).

Exp/log-table implementation over the standard primitive polynomials,
supporting the BCH encoder/decoder.  Elements are plain ints in
``[0, 2^m)``; 0 is the field zero and has no logarithm.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.errors import ConfigurationError

#: Standard primitive polynomials (including the x^m term), per degree.
PRIMITIVE_POLYNOMIALS: Dict[int, int] = {
    2: 0b111,
    3: 0b1011,
    4: 0b10011,
    5: 0b100101,
    6: 0b1000011,
    7: 0b10001001,
    8: 0b100011101,
    9: 0b1000010001,
    10: 0b10000001001,
}


class GF2m:
    """The field GF(2^m) with exp/log tables.

    Parameters
    ----------
    m:
        Field degree, 2..10.

    Examples
    --------
    >>> field = GF2m(4)
    >>> field.multiply(0b0110, 0b0011) == field.exp((field.log(0b0110) + field.log(0b0011)) % 15)
    True
    """

    def __init__(self, m: int):
        if m not in PRIMITIVE_POLYNOMIALS:
            raise ConfigurationError(
                f"m must be one of {sorted(PRIMITIVE_POLYNOMIALS)}, got {m}"
            )
        self._m = m
        self._size = 1 << m
        self._order = self._size - 1
        poly = PRIMITIVE_POLYNOMIALS[m]

        exp_table = np.zeros(2 * self._order, dtype=np.int64)
        log_table = np.zeros(self._size, dtype=np.int64)
        value = 1
        for power in range(self._order):
            exp_table[power] = value
            log_table[value] = power
            value <<= 1
            if value & self._size:
                value ^= poly
        if value != 1:
            raise ConfigurationError(
                f"polynomial 0x{poly:x} is not primitive for m={m}"
            )
        # Duplicate the table so exp(i + j) never needs a modulo.
        exp_table[self._order :] = exp_table[: self._order]
        self._exp = exp_table
        self._log = log_table

    @property
    def m(self) -> int:
        """Field degree."""
        return self._m

    @property
    def order(self) -> int:
        """Multiplicative group order ``2^m - 1``."""
        return self._order

    @property
    def size(self) -> int:
        """Number of field elements ``2^m``."""
        return self._size

    def exp(self, power: int) -> int:
        """``alpha ** power`` (power taken modulo the group order)."""
        return int(self._exp[power % self._order])

    def log(self, element: int) -> int:
        """Discrete logarithm base alpha; undefined (raises) for 0."""
        self._check_element(element)
        if element == 0:
            raise ConfigurationError("log(0) is undefined in GF(2^m)")
        return int(self._log[element])

    def multiply(self, a: int, b: int) -> int:
        """Field product."""
        self._check_element(a)
        self._check_element(b)
        if a == 0 or b == 0:
            return 0
        return int(self._exp[self._log[a] + self._log[b]])

    def inverse(self, element: int) -> int:
        """Multiplicative inverse; raises for 0."""
        self._check_element(element)
        if element == 0:
            raise ConfigurationError("0 has no inverse in GF(2^m)")
        return int(self._exp[self._order - self._log[element]])

    def power(self, element: int, exponent: int) -> int:
        """``element ** exponent`` (negative exponents allowed)."""
        self._check_element(element)
        if element == 0:
            if exponent <= 0:
                raise ConfigurationError("0 ** e undefined for e <= 0")
            return 0
        return int(self._exp[(self._log[element] * exponent) % self._order])

    def poly_eval(self, coefficients: List[int], point: int) -> int:
        """Evaluate a polynomial (lowest-degree coefficient first)."""
        result = 0
        for coefficient in reversed(coefficients):
            result = self.multiply(result, point) ^ coefficient
        return result

    def minimal_polynomial(self, element_log: int) -> int:
        """Minimal polynomial over GF(2) of ``alpha ** element_log``.

        Returned as a GF(2) bitmask polynomial (bit i = coefficient of
        x^i).  Built from the conjugacy class
        ``{alpha^(e*2^j)}`` — the product of ``(x - conjugate)`` has
        coefficients in GF(2).
        """
        # Collect the conjugacy class exponents.
        exponents = []
        current = element_log % self._order
        while current not in exponents:
            exponents.append(current)
            current = (current * 2) % self._order
        # poly(x) = prod (x + alpha^e), coefficients in GF(2^m).
        poly = [1]
        for exponent in exponents:
            root = self.exp(exponent)
            # Multiply poly by (x + root).
            shifted = [0] + poly
            scaled = [self.multiply(coefficient, root) for coefficient in poly] + [0]
            poly = [a ^ b for a, b in zip(shifted, scaled)]
        mask = 0
        for degree, coefficient in enumerate(poly):
            if coefficient not in (0, 1):
                raise ConfigurationError(
                    "minimal polynomial has a coefficient outside GF(2); "
                    "conjugacy-class construction is inconsistent"
                )
            mask |= coefficient << degree
        return mask

    def _check_element(self, element: int) -> None:
        if not 0 <= element < self._size:
            raise ConfigurationError(
                f"{element} is not an element of GF(2^{self._m})"
            )
