"""Error-correcting codes for PUF key generation.

All codes implement the :class:`~repro.keygen.ecc.base.BlockCode`
interface (``encode`` / ``decode`` on 0/1 numpy vectors) and are
bounded-distance decoders that raise
:class:`~repro.errors.DecodingFailure` instead of silently
miscorrecting when the error weight detectably exceeds their
capability.
"""

from repro.keygen.ecc.base import BlockCode
from repro.keygen.ecc.bch import BCHCode
from repro.keygen.ecc.concatenated import ConcatenatedCode
from repro.keygen.ecc.golay import ExtendedGolayCode
from repro.keygen.ecc.hamming import HammingCode
from repro.keygen.ecc.polar import PolarCode
from repro.keygen.ecc.reedmuller import ReedMullerCode
from repro.keygen.ecc.repetition import RepetitionCode

__all__ = [
    "BlockCode",
    "BCHCode",
    "ConcatenatedCode",
    "ExtendedGolayCode",
    "HammingCode",
    "PolarCode",
    "ReedMullerCode",
    "RepetitionCode",
]
