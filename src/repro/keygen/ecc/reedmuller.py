"""First-order Reed–Muller codes RM(1, m) with fast Hadamard decoding.

RM(1, m) is the ``[2^m, m + 1, 2^(m-1)]`` family — the workhorse of the
earliest SRAM-PUF fuzzy extractors (Guajardo et al., CHES 2007, the
paper's ref. [7], used exactly this construction): tiny dimension,
enormous minimum distance, and a maximum-likelihood decoder that costs
one fast Walsh–Hadamard transform.

A codeword is ``f(x) = a0 + a1 x1 + ... + am xm`` evaluated over all
``2^m`` points.  Decoding correlates the received word against all
affine functions at once via the FWHT and picks the strongest — true
ML, so the guaranteed radius ``2^(m-2) - 1`` understates its actual
random-error performance.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DecodingFailure
from repro.keygen.ecc.base import BlockCode


def fast_walsh_hadamard(values: np.ndarray) -> np.ndarray:
    """In-place-style FWHT; input length must be a power of two."""
    data = np.asarray(values, dtype=float).copy()
    n = data.size
    if n & (n - 1):
        raise ConfigurationError(f"FWHT length must be a power of two, got {n}")
    half = 1
    while half < n:
        for start in range(0, n, 2 * half):
            upper = data[start : start + half].copy()
            lower = data[start + half : start + 2 * half].copy()
            data[start : start + half] = upper + lower
            data[start + half : start + 2 * half] = upper - lower
        half *= 2
    return data


class ReedMullerCode(BlockCode):
    """The first-order Reed–Muller code RM(1, m).

    Parameters
    ----------
    m:
        Order parameter; the code is ``[2^m, m + 1, 2^(m-1)]``.

    Examples
    --------
    >>> code = ReedMullerCode(5)          # [32, 6, 16]
    >>> (code.codeword_bits, code.message_bits, code.correctable_errors)
    (32, 6, 7)
    """

    def __init__(self, m: int):
        if m < 2:
            raise ConfigurationError(f"m must be >= 2, got {m}")
        self._m = int(m)
        self._n = 1 << m
        # Evaluation points: x_j of point i is bit j of i.
        points = np.arange(self._n)
        self._monomials = (
            (points[np.newaxis, :] >> np.arange(m)[:, np.newaxis]) & 1
        ).astype(np.uint8)

    @property
    def m(self) -> int:
        """The order parameter."""
        return self._m

    @property
    def message_bits(self) -> int:
        return self._m + 1

    @property
    def codeword_bits(self) -> int:
        return self._n

    @property
    def correctable_errors(self) -> int:
        """Guaranteed radius ``2^(m-2) - 1`` (half the distance)."""
        return (1 << (self._m - 2)) - 1 if self._m >= 2 else 0

    def encode(self, message: np.ndarray) -> np.ndarray:
        bits = self._check_message(message)
        constant = bits[0]
        linear = (bits[1:, np.newaxis] & self._monomials).sum(axis=0) % 2
        return ((constant + linear) % 2).astype(np.uint8)

    def decode(self, received: np.ndarray) -> np.ndarray:
        word = self._check_received(received)
        # Correlate against all 2^m linear functions at once: the FWHT
        # of +-1 mapped bits gives <(-1)^r, (-1)^{a.x}> for every a.
        signs = 1.0 - 2.0 * word.astype(float)
        spectrum = fast_walsh_hadamard(signs)
        best = int(np.argmax(np.abs(spectrum)))
        magnitude = abs(spectrum[best])
        # A tie between distinct affine functions means the word sits
        # equidistant from two codewords: refuse rather than guess.
        competitors = np.abs(spectrum)
        competitors[best] = -np.inf
        if magnitude == np.max(competitors):
            raise DecodingFailure(
                "received word is equidistant from two RM(1, m) codewords"
            )
        constant = 1 if spectrum[best] < 0 else 0
        message = np.zeros(self._m + 1, dtype=np.uint8)
        message[0] = constant
        for bit_index in range(self._m):
            message[1 + bit_index] = (best >> bit_index) & 1
        return message
