"""Polar codes with successive-cancellation decoding.

The paper's ECC boundary ("error correction codes can be designed to
correct up to 25 % of bit error rate without reproduction failure")
cites Chen et al., "A Robust SRAM-PUF Key Generation Scheme Based on
Polar Codes" (GLOBECOM 2017) — reference [13].  This module implements
that ingredient: a binary polar code designed for a BSC with the PUF's
expected bit error probability, encoded with the standard butterfly
and decoded with successive cancellation (SC) in the log-likelihood
ratio domain.

Construction uses the Bhattacharyya-parameter heuristic: starting from
``z = 2 sqrt(p (1 - p))`` for the design BSC, the channel split
recursion ``z- = 2z - z^2`` (degraded) / ``z+ = z^2`` (upgraded) ranks
the N synthetic channels; the ``k`` most reliable carry data, the rest
are frozen to zero.

Unlike the bounded-distance decoders in this package, SC decoding has
no guaranteed correction radius — its strength is *statistical*
(vanishing error probability below capacity).  ``correctable_errors``
is therefore reported as 0; use :meth:`failure_rate_estimate` or the
``bench_ablation_polar`` harness to size a code for a target PUF error
rate, exactly as [13] does.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.keygen.ecc.base import BlockCode
from repro.rng import RandomState, as_generator


def bhattacharyya_parameters(n_levels: int, design_p: float) -> np.ndarray:
    """Bhattacharyya z-parameters of the ``2**n_levels`` split channels.

    Index order matches the SC decoding order used by this module
    (natural order, first half = degraded transforms).
    """
    if not 0.0 < design_p < 0.5:
        raise ConfigurationError(f"design_p must be in (0, 0.5), got {design_p}")
    if n_levels < 1:
        raise ConfigurationError(f"n_levels must be >= 1, got {n_levels}")
    def construct(z0: float, levels: int) -> List[float]:
        # Z_N = [Z_{N/2} over the degraded split, Z_{N/2} over the
        # upgraded split] — the first half of the u-indices goes into
        # the left (f-channel) sub-decoder, recursively.
        if levels == 0:
            return [z0]
        return construct(2.0 * z0 - z0 * z0, levels - 1) + construct(
            z0 * z0, levels - 1
        )

    return np.array(construct(2.0 * np.sqrt(design_p * (1.0 - design_p)), n_levels))


class PolarCode(BlockCode):
    """Binary polar code over a design BSC.

    Parameters
    ----------
    n_levels:
        Code length is ``2**n_levels``.
    message_bits:
        Number of information bits ``k``.
    design_p:
        Crossover probability of the BSC the code is designed (and
        decoded) for — use the PUF's expected worst-case bit error
        rate.

    Examples
    --------
    >>> code = PolarCode(n_levels=7, message_bits=64, design_p=0.05)
    >>> (code.codeword_bits, code.message_bits)
    (128, 64)
    """

    def __init__(self, n_levels: int, message_bits: int, design_p: float = 0.05):
        self._n = 1 << n_levels
        if not 0 < message_bits < self._n:
            raise ConfigurationError(
                f"message_bits must be in (0, {self._n}), got {message_bits}"
            )
        self._k = int(message_bits)
        self._design_p = float(design_p)
        z = bhattacharyya_parameters(n_levels, design_p)
        # The k most reliable (smallest z) synthetic channels carry data.
        order = np.argsort(z, kind="stable")
        data_positions = np.sort(order[: self._k])
        self._frozen = np.ones(self._n, dtype=bool)
        self._frozen[data_positions] = False
        self._data_positions = data_positions
        self._z = z

    @property
    def message_bits(self) -> int:
        return self._k

    @property
    def codeword_bits(self) -> int:
        return self._n

    @property
    def correctable_errors(self) -> int:
        """0 — SC decoding has no guaranteed radius (see module docs)."""
        return 0

    @property
    def design_p(self) -> float:
        """The BSC crossover probability the code was designed for."""
        return self._design_p

    @property
    def frozen_mask(self) -> np.ndarray:
        """Boolean mask of frozen synthetic-channel positions."""
        return self._frozen.copy()

    def bhattacharyya_bound(self) -> float:
        """Union (Bhattacharyya) bound on the block error probability.

        The sum of z-parameters over the information set — the design-
        time proxy [13] uses to pick code dimensions.
        """
        return float(self._z[self._data_positions].sum())

    # -- encoding ---------------------------------------------------------

    @staticmethod
    def _transform(u: np.ndarray) -> np.ndarray:
        """The polar butterfly ``x = u G_N`` (natural order, in place)."""
        x = u.copy()
        n = x.size
        half = 1
        while half < n:
            for start in range(0, n, 2 * half):
                x[start : start + half] ^= x[start + half : start + 2 * half]
            half *= 2
        return x

    def encode(self, message: np.ndarray) -> np.ndarray:
        bits = self._check_message(message)
        u = np.zeros(self._n, dtype=np.uint8)
        u[self._data_positions] = bits
        return self._transform(u)

    # -- decoding ---------------------------------------------------------

    def decode(self, received: np.ndarray) -> np.ndarray:
        word = self._check_received(received)
        # Channel LLR of a BSC(design_p): +llr0 for a received 0.
        llr0 = float(np.log((1.0 - self._design_p) / self._design_p))
        llrs = np.where(word == 0, llr0, -llr0).astype(float)
        u_hat, _x_hat = self._sc_decode(llrs, self._frozen)
        return u_hat[self._data_positions]

    def _sc_decode(
        self, llrs: np.ndarray, frozen: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Recursive SC: returns (u estimates, re-encoded x estimates)."""
        if llrs.size == 1:
            if frozen[0]:
                u = np.zeros(1, dtype=np.uint8)
            else:
                u = np.array([0 if llrs[0] >= 0 else 1], dtype=np.uint8)
            return u, u.copy()
        half = llrs.size // 2
        a, b = llrs[:half], llrs[half:]
        # f (check-node, min-sum): degraded channel for the left half.
        f = np.sign(a) * np.sign(b) * np.minimum(np.abs(a), np.abs(b))
        u_left, x_left = self._sc_decode(f, frozen[:half])
        # g (variable-node): upgraded channel given the left decisions.
        g = b + (1.0 - 2.0 * x_left.astype(float)) * a
        u_right, x_right = self._sc_decode(g, frozen[half:])
        return (
            np.concatenate([u_left, u_right]),
            np.concatenate([x_left ^ x_right, x_right]),
        )

    # -- design-time evaluation -------------------------------------------

    def failure_rate_estimate(
        self,
        channel_p: float = None,
        trials: int = 200,
        random_state: RandomState = None,
    ) -> float:
        """Monte-Carlo block error rate on a BSC.

        ``channel_p`` defaults to the design probability.  Used by the
        polar ablation bench to reproduce the sizing methodology of
        [13].
        """
        if trials < 1:
            raise ConfigurationError(f"trials must be >= 1, got {trials}")
        p = self._design_p if channel_p is None else float(channel_p)
        if not 0.0 <= p < 0.5:
            raise ConfigurationError(f"channel_p must be in [0, 0.5), got {p}")
        rng = as_generator(random_state, "polar-mc")
        failures = 0
        for _ in range(trials):
            message = rng.integers(0, 2, self._k, dtype=np.uint8)
            codeword = self.encode(message)
            noise = (rng.random(self._n) < p).astype(np.uint8)
            decoded = self.decode(codeword ^ noise)
            failures += not np.array_equal(decoded, message)
        return failures / trials
