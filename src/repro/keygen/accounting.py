"""Entropy accounting for the key-generation pipeline.

Paper Section II-A.1 states the security requirements: the PUF must
supply "sufficient entropy to prevent significant information leakage
on the generated key", with bias "within the boundary" (current
debiasing handles 25 %/75 %).  This module does the bookkeeping that
turns those sentences into numbers for a concrete pipeline:

* how much min-entropy the raw response carries (from its bias),
* what the debiaser retains,
* how much the code-offset helper data leaks (at most ``n - k`` bits
  per block for a linear code),
* and therefore how much residual entropy backs the derived key.

:func:`audit_pipeline` runs the whole budget and flags an unsafe
configuration instead of letting it enroll silently.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.keygen.ecc.base import BlockCode

#: The bias boundary the paper quotes for current debiasing schemes.
BIAS_BOUNDARY_LOW = 0.25
BIAS_BOUNDARY_HIGH = 0.75


def min_entropy_per_bit(bias: float) -> float:
    """Min-entropy of one response bit with one-probability ``bias``."""
    if not 0.0 <= bias <= 1.0:
        raise ConfigurationError(f"bias must be in [0, 1], got {bias}")
    probability = max(bias, 1.0 - bias)
    if probability >= 1.0:
        return 0.0
    return float(-np.log2(probability))


def bias_within_boundary(bias: float) -> bool:
    """Whether the bias sits inside the paper's 25 %/75 % boundary."""
    return BIAS_BOUNDARY_LOW <= bias <= BIAS_BOUNDARY_HIGH


def von_neumann_retention(bias: float) -> float:
    """Expected CVN output bits per input bit at the given bias."""
    if not 0.0 <= bias <= 1.0:
        raise ConfigurationError(f"bias must be in [0, 1], got {bias}")
    return float(bias * (1.0 - bias))


def helper_data_leakage_bits(code: BlockCode, blocks: int) -> int:
    """Upper bound on code-offset helper-data leakage.

    For a linear ``[n, k]`` code the syndrome-equivalent leakage is at
    most ``n - k`` bits per block (Dodis et al.); debiased, i.i.d.
    full-entropy inputs meet the bound with equality.
    """
    if blocks < 1:
        raise ConfigurationError(f"blocks must be >= 1, got {blocks}")
    return blocks * (code.codeword_bits - code.message_bits)


@dataclass(frozen=True)
class EntropyBudget:
    """The full entropy ledger of one pipeline configuration."""

    response_bits: int
    response_bias: float
    debiased_bits: float
    sketch_input_entropy_bits: float
    helper_leakage_bits: int
    residual_entropy_bits: float
    key_bits: int

    @property
    def is_safe(self) -> bool:
        """Whether the residual entropy covers the derived key."""
        return self.residual_entropy_bits >= self.key_bits

    @property
    def margin_bits(self) -> float:
        """Residual entropy beyond the key length (negative = unsafe)."""
        return self.residual_entropy_bits - self.key_bits

    def render(self) -> str:
        """Readable ledger, one line per stage."""
        lines = [
            f"raw response        : {self.response_bits} bits at "
            f"{100 * self.response_bias:.1f}% bias "
            f"({min_entropy_per_bit(self.response_bias):.3f} bits/bit)",
            f"after debiasing     : {self.debiased_bits:.0f} bits (~full entropy)",
            f"sketch input entropy: {self.sketch_input_entropy_bits:.0f} bits",
            f"helper-data leakage : {self.helper_leakage_bits} bits (n-k bound)",
            f"residual entropy    : {self.residual_entropy_bits:.0f} bits",
            f"derived key         : {self.key_bits} bits "
            f"({'SAFE' if self.is_safe else 'UNSAFE'}, margin "
            f"{self.margin_bits:+.0f} bits)",
        ]
        return "\n".join(lines)


def audit_pipeline(
    code: BlockCode,
    response_bits: int,
    response_bias: float,
    key_bits: int = 256,
    secret_bits: int = 128,
    debias: bool = True,
) -> EntropyBudget:
    """Account for every entropy gain and loss of a pipeline.

    Raises :class:`ConfigurationError` when the response cannot even
    feed the sketch; returns a (possibly unsafe) budget otherwise —
    callers decide whether to refuse enrollment on ``not is_safe``.
    """
    if response_bits < 2:
        raise ConfigurationError(f"response_bits must be >= 2, got {response_bits}")
    if key_bits < 1 or secret_bits < 1:
        raise ConfigurationError("key_bits and secret_bits must be positive")
    if not 0.0 < response_bias < 1.0:
        raise ConfigurationError(
            f"response_bias must be in (0, 1), got {response_bias}"
        )

    blocks = -(-secret_bits // code.message_bits)
    sketch_bits_needed = blocks * code.codeword_bits

    if debias:
        available = response_bits * von_neumann_retention(response_bias)
        per_bit_entropy = 1.0  # CVN output is (near) full entropy
    else:
        available = float(response_bits)
        per_bit_entropy = min_entropy_per_bit(response_bias)

    if available < sketch_bits_needed:
        raise ConfigurationError(
            f"pipeline needs {sketch_bits_needed} sketch input bits but the "
            f"response supplies only ~{available:.0f}"
        )

    input_entropy = sketch_bits_needed * per_bit_entropy
    leakage = helper_data_leakage_bits(code, blocks)
    residual = max(0.0, input_entropy - leakage)
    return EntropyBudget(
        response_bits=response_bits,
        response_bias=response_bias,
        debiased_bits=available if debias else float(response_bits),
        sketch_input_entropy_bits=input_entropy,
        helper_leakage_bits=leakage,
        residual_entropy_bits=residual,
        key_bits=key_bits,
    )
