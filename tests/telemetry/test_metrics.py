"""Tests for counters, gauges, histograms and the registry."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_negative_increment_rejected(self):
        with pytest.raises(ConfigurationError):
            Counter("c").inc(-1)


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.add(-3.5)
        assert gauge.value == 6.5


class TestHistogram:
    def test_bucket_assignment(self):
        hist = Histogram("h", buckets=[1.0, 10.0, 100.0])
        for value in (0.5, 5.0, 50.0, 500.0):
            hist.observe(value)
        assert hist.bucket_counts == [1, 1, 1, 1]  # last is overflow
        assert hist.count == 4
        assert hist.total == pytest.approx(555.5)
        assert hist.mean == pytest.approx(555.5 / 4)
        assert hist.min == 0.5
        assert hist.max == 500.0

    def test_boundary_lands_in_lower_bucket(self):
        hist = Histogram("h", buckets=[1.0, 10.0])
        hist.observe(1.0)
        assert hist.bucket_counts == [1, 0, 0]

    def test_empty_mean_is_nan(self):
        assert math.isnan(Histogram("h", buckets=[1.0]).mean)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=[10.0, 1.0])

    def test_no_buckets_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=[])


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("h") is registry.histogram("h")

    def test_type_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")
        with pytest.raises(ConfigurationError):
            registry.histogram("x")

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().counter("")

    def test_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("events").inc(3)
        registry.gauge("depth").set(2.5)
        registry.histogram("lat", buckets=[1.0]).observe(0.5)
        snap = registry.snapshot()
        assert snap["events"] == {"type": "counter", "value": 3}
        assert snap["depth"] == {"type": "gauge", "value": 2.5}
        assert snap["lat"]["type"] == "histogram"
        assert snap["lat"]["count"] == 1
        assert snap["lat"]["bucket_counts"] == [1, 0]

    def test_reset_zeroes_in_place(self):
        registry = MetricsRegistry()
        counter = registry.counter("events")
        counter.inc(5)
        registry.reset()
        assert counter.value == 0
        # Identity survives: the cached reference keeps counting into
        # the registered instrument.
        counter.inc()
        assert registry.counter("events").value == 1
        assert registry.counter("events") is counter

    def test_render_table(self):
        registry = MetricsRegistry()
        registry.counter("campaign.powerups").inc(16)
        registry.gauge("campaign.devices").set(16)
        rendered = registry.render_table()
        assert "campaign.powerups" in rendered
        assert "16" in rendered

    def test_contains_and_len(self):
        registry = MetricsRegistry()
        registry.counter("a")
        assert "a" in registry
        assert "b" not in registry
        assert len(registry) == 1
