"""Tests for phase attribution (PhaseProfiler and its runtime wiring)."""

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import (
    NULL_PHASE,
    PHASES,
    PhaseProfiler,
    get_profiler,
    install_profiler,
    profiling_enabled,
    reset_telemetry,
    set_profiling,
)


class FakeClock:
    """Deterministic clock: advances by a fixed step per call."""

    def __init__(self, step):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestPhaseProfiler:
    def test_disabled_records_nothing(self):
        profiler = PhaseProfiler(enabled=False)
        with profiler.phase("powerup"):
            pass
        assert profiler.snapshot() == {}
        assert profiler.phase("powerup") is NULL_PHASE

    def test_phase_accumulates_with_injected_clocks(self):
        wall, cpu = FakeClock(1.0), FakeClock(0.25)
        profiler = PhaseProfiler(enabled=True, clock=wall, cpu_clock=cpu)
        with profiler.phase("powerup"):
            pass
        with profiler.phase("powerup"):
            pass
        snap = profiler.snapshot()
        assert snap == {
            "powerup": {"wall_s": 2.0, "cpu_s": 0.5, "calls": 2}
        }

    def test_add_and_total_cpu(self):
        profiler = PhaseProfiler(enabled=True)
        profiler.add("aging", wall_s=1.0, cpu_s=0.5)
        profiler.add("aging", wall_s=2.0, cpu_s=1.5, calls=3)
        profiler.add("metrics", wall_s=0.5, cpu_s=0.5)
        snap = profiler.snapshot()
        assert snap["aging"] == {"wall_s": 3.0, "cpu_s": 2.0, "calls": 4}
        assert profiler.total_cpu_s() == pytest.approx(2.5)

    def test_add_rejects_empty_name(self):
        with pytest.raises(ConfigurationError):
            PhaseProfiler(enabled=True).add("", 1.0, 1.0)

    def test_merge_worker_deltas(self):
        profiler = PhaseProfiler(enabled=True)
        profiler.add("aging", 1.0, 1.0)
        profiler.merge(
            {
                "aging": {"wall_s": 2.0, "cpu_s": 2.0, "calls": 2},
                "noise_draw": {"wall_s": 0.5, "cpu_s": 0.5, "calls": 5},
            }
        )
        snap = profiler.snapshot()
        assert snap["aging"]["calls"] == 3
        assert snap["aging"]["cpu_s"] == pytest.approx(3.0)
        assert snap["noise_draw"]["calls"] == 5

    def test_take_drains(self):
        profiler = PhaseProfiler(enabled=True)
        profiler.add("monitor", 1.0, 1.0)
        taken = profiler.take()
        assert taken["monitor"]["calls"] == 1
        assert profiler.snapshot() == {}
        assert profiler.enabled  # draining does not disable

    def test_reset_preserves_enabled(self):
        profiler = PhaseProfiler(enabled=True)
        profiler.add("store_io", 1.0, 1.0)
        profiler.reset()
        assert profiler.snapshot() == {}
        assert profiler.enabled

    def test_exception_still_closes_phase(self):
        profiler = PhaseProfiler(enabled=True)
        with pytest.raises(ValueError):
            with profiler.phase("metrics"):
                raise ValueError("boom")
        assert profiler.snapshot()["metrics"]["calls"] == 1


class TestRenderTable:
    def test_sorted_by_cpu_with_total_row(self):
        profiler = PhaseProfiler(enabled=True)
        profiler.add("powerup", 1.0, 0.5)
        profiler.add("aging", 4.0, 3.0)
        profiler.add("metrics", 2.0, 1.5)
        table = profiler.render_table()
        lines = [line for line in table.splitlines() if line]
        body = [line.split()[0] for line in lines[2:-2]]
        assert body == ["aging", "metrics", "powerup"]
        assert "total" in lines[-1]
        assert "% cpu" in lines[0]

    def test_empty_table_message(self):
        assert "no phases recorded" in PhaseProfiler().render_table()


class TestRuntimeWiring:
    def test_phase_catalogue(self):
        assert PHASES == (
            "noise_draw",
            "powerup",
            "aging",
            "metrics",
            "monitor",
            "store_io",
        )

    def test_set_profiling_toggles_global(self):
        assert not profiling_enabled()
        set_profiling(True)
        try:
            assert profiling_enabled()
            assert get_profiler().enabled
        finally:
            set_profiling(False)

    def test_install_profiler_swaps_and_returns_previous(self):
        original = get_profiler()
        local = PhaseProfiler(enabled=True)
        previous = install_profiler(local)
        try:
            assert previous is original
            assert get_profiler() is local
            with get_profiler().phase("aging"):
                pass
            # The worker drain pattern: swap back, take the deltas.
            deltas = install_profiler(previous).take()
            assert deltas["aging"]["calls"] == 1
        finally:
            install_profiler(original)
        assert get_profiler() is original

    def test_reset_telemetry_clears_phases(self):
        set_profiling(True)
        try:
            get_profiler().add("powerup", 1.0, 1.0)
            reset_telemetry()
            assert get_profiler().snapshot() == {}
            # The enabled bit is configuration, not accumulated state.
            assert profiling_enabled()
        finally:
            set_profiling(False)
