"""The rollup merge algebra: exactness is the whole point.

The hierarchical observability layer only works because shard rollups
merge *exactly*: any grouping of the same observations — one worker,
two, four, or month-by-month windows — must finalize to bit-identical
statistics.  These tests pin that algebra down: associativity and
commutativity as properties, agreement with numpy on the moments, and
exact document round-trips.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec.plan import partition_boards, rollup_shard_of
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.rollup import (
    ROLLUP_STATS,
    UNIT_BOUNDS,
    WIDE_BOUNDS,
    RollupRegistry,
    RollupSummary,
    ShardRollupBuilder,
    combine_rollup_docs,
    evaluation_shard_docs,
    fold_rollup_docs,
)

values = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=32),
    min_size=1,
    max_size=40,
)


def summarize(observations) -> RollupSummary:
    summary = RollupSummary(UNIT_BOUNDS)
    summary.observe_many(observations)
    return summary


def finalized(summary: RollupSummary) -> tuple:
    return (
        summary.count,
        summary.mean,
        summary.m2,
        summary.variance,
        summary.std,
        summary.min,
        summary.max,
        summary.p50,
        summary.p99,
        tuple(summary.bin_counts),
    )


class TestMergeAlgebra:
    @given(values, values, values)
    @settings(max_examples=60, deadline=None)
    def test_associativity_is_exact(self, a, b, c):
        left = summarize(a)
        left.merge(summarize(b))
        left.merge(summarize(c))

        bc = summarize(b)
        bc.merge(summarize(c))
        right = summarize(a)
        right.merge(bc)

        assert finalized(left) == finalized(right)

    @given(values, values)
    @settings(max_examples=60, deadline=None)
    def test_commutativity_is_exact(self, a, b):
        ab = summarize(a)
        ab.merge(summarize(b))
        ba = summarize(b)
        ba.merge(summarize(a))
        assert finalized(ab) == finalized(ba)

    @given(values)
    @settings(max_examples=60, deadline=None)
    def test_any_grouping_matches_one_pass(self, observations):
        one_pass = summarize(observations)
        for split in (1, max(1, len(observations) // 2)):
            grouped = summarize(observations[:split])
            grouped.merge(summarize(observations[split:]))
            assert finalized(grouped) == finalized(one_pass)

    def test_worker_count_independence(self):
        """The serial ≡ 2-worker ≡ 4-worker identity at summary level."""
        rng = np.random.default_rng(11)
        observations = list(rng.random(64))

        def grouped(parts: int) -> RollupSummary:
            chunks = np.array_split(np.asarray(observations), parts)
            total = summarize(list(chunks[0]))
            for chunk in chunks[1:]:
                total.merge(summarize(list(chunk)))
            return total

        assert finalized(grouped(1)) == finalized(grouped(2)) == finalized(grouped(4))


class TestMoments:
    @given(values)
    @settings(max_examples=60, deadline=None)
    def test_mean_and_variance_agree_with_numpy(self, observations):
        summary = summarize(observations)
        data = np.asarray(observations, dtype=float)
        # Exact rational arithmetic can beat numpy's pairwise summation
        # by an ulp, so the comparison is tight-tolerance, not equality;
        # the equality guarantee is across merge groupings, not vs numpy.
        assert summary.mean == pytest.approx(float(np.mean(data)), abs=1e-12)
        assert summary.variance == pytest.approx(
            float(np.var(data)), rel=1e-9, abs=1e-12
        )

    def test_min_max_are_exact(self):
        summary = summarize([0.5, 0.125, 0.875, 0.25])
        assert summary.min == 0.125
        assert summary.max == 0.875

    def test_empty_summary_statistics_are_nan(self):
        summary = RollupSummary(UNIT_BOUNDS)
        assert summary.count == 0
        assert np.isnan(summary.mean)
        assert np.isnan(summary.p50)
        assert np.isnan(summary.p99)


class TestQuantileSketch:
    def test_quantiles_never_exceed_true_max(self):
        summary = summarize([0.1, 0.2, 0.3])
        assert summary.p99 <= summary.max

    def test_p50_brackets_the_median_bin(self):
        observations = [i / 100 for i in range(1, 101)]
        summary = summarize(observations)
        # Fixed 1/128 bins: the sketch answer is the bin upper bound
        # holding the rank-50 observation.
        assert abs(summary.p50 - 0.5) <= 1 / 128

    def test_wide_bounds_cover_resource_scales(self):
        summary = RollupSummary(WIDE_BOUNDS)
        summary.observe_many([0.001, 1.0, 90000.0])
        assert summary.count == 3
        assert summary.p99 == 90000.0  # overflow bucket answers with max

    def test_deterministic_binning_at_bound(self):
        summary = RollupSummary((0.5, 1.0))
        summary.observe(0.5)  # lands in the first bin (first bound >= value)
        assert summary.bin_counts[0] == 1


class TestDocRoundTrip:
    @given(values)
    @settings(max_examples=40, deadline=None)
    def test_round_trip_is_exact(self, observations):
        summary = summarize(observations)
        restored = RollupSummary.from_doc(summary.to_doc())
        assert finalized(restored) == finalized(summary)
        assert restored.sum == summary.sum
        assert restored.sumsq == summary.sumsq

    def test_doc_is_json_safe(self):
        import json

        doc = summarize([0.1, 0.9]).to_doc()
        assert json.loads(json.dumps(doc)) == doc


class TestShardPipeline:
    def test_rollup_shard_of_inverts_partition_boards(self):
        for fleet, shards in ((7, 3), (8, 4), (16, 8), (5, 8), (256, 8)):
            partition = partition_boards(range(fleet), shards)
            for index, boards in enumerate(partition):
                for board in boards:
                    assert rollup_shard_of(board, fleet, shards) == index

    def test_builder_matches_evaluation_docs(self):
        """Worker-side builder ≡ parent-side fallback, doc for doc."""

        class FakeEvaluation:
            board_ids = (0, 1, 2, 3)
            wchd = np.array([0.01, 0.02, 0.03, 0.04])
            fhw = np.array([0.6, 0.61, 0.62, 0.63])
            stable_ratio = np.array([0.9, 0.91, 0.92, 0.93])
            noise_entropy = np.array([0.03, 0.031, 0.032, 0.033])

        def shard_of(board):
            return rollup_shard_of(board, 4, 2)

        builder = ShardRollupBuilder(shard_of)
        evaluation = FakeEvaluation()
        for i, board in enumerate(evaluation.board_ids):
            builder.observe_board(
                board,
                {stat: float(getattr(evaluation, stat)[i]) for stat in ROLLUP_STATS},
            )
        assert builder.take() == evaluation_shard_docs(evaluation, shard_of)

    def test_combine_is_worker_count_independent(self):
        rng = np.random.default_rng(3)
        stats = [
            {stat: float(rng.random()) for stat in ROLLUP_STATS} for _ in range(8)
        ]

        def docs_for(boards):
            builder = ShardRollupBuilder(lambda b: rollup_shard_of(b, 8, 2))
            for board in boards:
                builder.observe_board(board, stats[board])
            return builder.take()

        two = combine_rollup_docs([docs_for(range(4)), docs_for(range(4, 8))])
        four = combine_rollup_docs(
            [docs_for(range(i, i + 2)) for i in range(0, 8, 2)]
        )
        one = combine_rollup_docs([docs_for(range(8))])
        assert one == two == four

    def test_fold_builds_fleet_scope_and_counters(self):
        builder = ShardRollupBuilder(lambda b: rollup_shard_of(b, 4, 2))
        for board in range(4):
            builder.observe_board(
                board, {stat: 0.1 * (board + 1) for stat in ROLLUP_STATS}
            )
        registry = RollupRegistry()
        metrics = MetricsRegistry()
        fold_rollup_docs(registry, builder.take(), metrics=metrics)

        names = registry.names()
        assert "rollup.wchd{scope=fleet}" in names
        assert "rollup.wchd{scope=shard,shard=0}" in names
        assert "rollup.wchd{scope=shard,shard=1}" in names
        fleet = registry.get("rollup.wchd{scope=fleet}")
        assert fleet.count == 4
        snapshot = metrics.snapshot()
        assert snapshot["rollup.updates"]["value"] == 1
        assert snapshot["rollup.observations"]["value"] == 4 * len(ROLLUP_STATS)
