"""Tests that the pipeline actually feeds the telemetry layer."""

import numpy as np
import pytest

from repro.analysis.campaign import LongTermCampaign
from repro.telemetry import get_metrics, get_tracer, reset_telemetry, set_tracing


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Zero global telemetry around each test (tracing back off after)."""
    reset_telemetry()
    yield
    set_tracing(False)
    reset_telemetry()


class TestCampaignInstrumentation:
    def test_powerup_accounting(self):
        devices, months, measurements = 2, 2, 60
        before = get_metrics().counter("campaign.powerups").value
        LongTermCampaign(
            device_count=devices,
            months=months,
            measurements=measurements,
            random_state=1,
        ).run()
        counted = get_metrics().counter("campaign.powerups").value - before
        # day-0 references + one block per snapshot per device
        assert counted == devices + (months + 1) * measurements * devices

    def test_progress_callback(self):
        seen = []
        LongTermCampaign(
            device_count=2, months=2, measurements=40, random_state=1
        ).run(progress=lambda done, total: seen.append((done, total)))
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_span_tree_shape(self):
        set_tracing(True)
        LongTermCampaign(
            device_count=2, months=1, measurements=40, random_state=1
        ).run()
        roots = get_tracer().roots
        campaign_span = roots[-1]
        assert campaign_span.name == "campaign.run"
        months = [s for s in campaign_span.children if s.name == "campaign.month"]
        assert [s.attributes["month"] for s in months] == [0, 1]
        assert [c.name for c in months[0].children] == [
            "campaign.measure",
            "campaign.age",
        ]
        # The last snapshot has no aging step after it.
        assert [c.name for c in months[-1].children] == ["campaign.measure"]

    def test_tracing_does_not_change_results(self):
        def run():
            return LongTermCampaign(
                device_count=2, months=2, measurements=50, random_state=9
            ).run()

        set_tracing(False)
        untraced = run()
        set_tracing(True)
        traced = run()
        for a, b in zip(untraced.snapshots, traced.snapshots):
            np.testing.assert_array_equal(a.wchd, b.wchd)
            np.testing.assert_array_equal(a.fhw, b.fhw)
            np.testing.assert_array_equal(a.bchd_pairs, b.bchd_pairs)


class TestHardwareInstrumentation:
    def test_scheduler_and_testbed_counters(self):
        from repro.hardware.testbed import Testbed

        events_before = get_metrics().counter("scheduler.events").value
        cycles_before = get_metrics().counter("testbed.cycles").value
        readouts_before = get_metrics().counter("testbed.readouts").value

        bed = Testbed(device_count=4, random_state=3)
        bed.run_cycles(2)

        assert get_metrics().counter("scheduler.events").value > events_before
        cycles = get_metrics().counter("testbed.cycles").value - cycles_before
        assert cycles >= 4  # both layers completed >= 2 cycles each
        readouts = get_metrics().counter("testbed.readouts").value - readouts_before
        assert readouts == len(bed.database)


class TestKeygenInstrumentation:
    def test_enroll_reconstruct_counters(self):
        from repro.keygen.keygen import SRAMKeyGenerator
        from repro.sram.chip import SRAMChip

        generator = SRAMKeyGenerator(SRAMChip(0, random_state=2))
        before_enroll = get_metrics().counter("keygen.enrollments").value
        before_rec = get_metrics().counter("keygen.reconstructions").value
        key, record = generator.enroll(random_state=2)
        rebuilt = generator.reconstruct(record)
        assert np.array_equal(key, rebuilt)
        assert get_metrics().counter("keygen.enrollments").value == before_enroll + 1
        assert get_metrics().counter("keygen.reconstructions").value == before_rec + 1
        # registered even though nothing failed
        assert "keygen.decode_failures" in get_metrics()


class TestTrngInstrumentation:
    def test_generate_counts_bits_and_checks(self):
        from repro.sram.chip import SRAMChip
        from repro.trng.trng import SRAMTRNG

        bits_before = get_metrics().counter("trng.output_bits").value
        checks_before = get_metrics().counter("trng.health_checks").value
        trng = SRAMTRNG(SRAMChip(1, random_state=4))
        trng.generate(128)
        assert get_metrics().counter("trng.output_bits").value == bits_before + 128
        assert get_metrics().counter("trng.health_checks").value == checks_before + 1
        assert get_metrics().counter("trng.powerups").value > 0
