"""Flight recorder: bounded ring, event ordering, atomic crash dumps."""

from __future__ import annotations

import json

from repro.telemetry.flight import (
    DEFAULT_CAPACITY,
    FlightRecorder,
    flight_record_path_for,
)


class TestRing:
    def test_records_in_order_with_sequence_numbers(self):
        recorder = FlightRecorder()
        recorder.record("month", month=0)
        recorder.record("alert", rule="r")
        events = recorder.events()
        assert [e["kind"] for e in events] == ["month", "alert"]
        assert [e["seq"] for e in events] == [0, 1]
        assert events[0]["month"] == 0

    def test_ring_is_bounded_and_counts_drops(self):
        recorder = FlightRecorder(capacity=4)
        for i in range(10):
            recorder.record("month", month=i)
        events = recorder.events()
        assert len(events) == 4
        assert [e["month"] for e in events] == [6, 7, 8, 9]
        assert recorder.dropped == 6
        assert recorder.recorded == 10

    def test_default_capacity(self):
        assert FlightRecorder().capacity == DEFAULT_CAPACITY

    def test_reset_clears_everything(self):
        recorder = FlightRecorder(capacity=2)
        for i in range(5):
            recorder.record("month", month=i)
        recorder.reset()
        assert recorder.events() == []
        assert recorder.recorded == 0
        assert recorder.dropped == 0


class TestDump:
    def test_dump_writes_parseable_json(self, tmp_path):
        recorder = FlightRecorder()
        recorder.record("month", month=3)
        recorder.record("crash", error="boom")
        path = str(tmp_path / "flight.json")
        recorder.dump(path, reason="boom")
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        assert doc["reason"] == "boom"
        assert doc["dropped"] == 0
        assert [e["kind"] for e in doc["events"]] == ["month", "crash"]

    def test_to_doc_round_trips_through_json(self):
        recorder = FlightRecorder()
        recorder.record("heartbeat", sequence=0)
        doc = recorder.to_doc(reason="test")
        assert json.loads(json.dumps(doc)) == doc


class TestPathConvention:
    def test_path_next_to_campaign_artifact(self):
        assert flight_record_path_for("campaign.json") == "campaign.flight.json"
        assert flight_record_path_for("x/run.json") == "x/run.flight.json"

    def test_non_json_target_gets_suffix(self):
        assert flight_record_path_for("campaign") == "campaign.flight.json"
