"""Canonical label encoding: ordering, validation, round-trips."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.telemetry.labels import canonical_labels, labeled_name, parse_labeled_name


class TestCanonicalLabels:
    def test_sorts_keys_and_stringifies_values(self):
        assert canonical_labels({"shard": 3, "board": "b1"}) == (
            ("board", "b1"),
            ("shard", "3"),
        )

    def test_insertion_order_is_irrelevant(self):
        a = canonical_labels({"x": 1, "y": 2})
        b = canonical_labels({"y": 2, "x": 1})
        assert a == b

    def test_empty_labels(self):
        assert canonical_labels({}) == ()
        assert canonical_labels(None) == ()

    @pytest.mark.parametrize("bad", ["", "has space", 'quo"te', "br{ace}"])
    def test_rejects_invalid_tokens(self, bad):
        with pytest.raises(ConfigurationError):
            canonical_labels({"k": bad})
        with pytest.raises(ConfigurationError):
            canonical_labels({bad: "v"})


class TestLabeledName:
    def test_pins_label_order(self):
        assert (
            labeled_name("campaign.powerups", {"shard": 1, "board": 2})
            == "campaign.powerups{board=2,shard=1}"
        )

    def test_no_labels_is_bare_name(self):
        assert labeled_name("campaign.powerups", {}) == "campaign.powerups"
        assert labeled_name("campaign.powerups", None) == "campaign.powerups"

    def test_rejects_braced_base(self):
        with pytest.raises(ConfigurationError):
            labeled_name("already{branded}", {"k": "v"})

    def test_rejects_empty_base(self):
        with pytest.raises(ConfigurationError):
            labeled_name("", {"k": "v"})


class TestParseLabeledName:
    def test_round_trip(self):
        name = labeled_name("rollup.wchd", {"scope": "shard", "shard": 3})
        base, labels = parse_labeled_name(name)
        assert base == "rollup.wchd"
        assert labels == {"scope": "shard", "shard": "3"}
        assert labeled_name(base, labels) == name

    def test_bare_name(self):
        assert parse_labeled_name("campaign.powerups") == (
            "campaign.powerups",
            {},
        )

    @pytest.mark.parametrize(
        "malformed", ["x{", "x{k}", "x{k=v", "x{=v}", "x{k=}"]
    )
    def test_rejects_malformed(self, malformed):
        with pytest.raises(ConfigurationError):
            parse_labeled_name(malformed)
