"""Tests for the tracing core (spans, tracer, rendering, export)."""

import json
import os

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import (
    NULL_SPAN,
    Span,
    TraceContext,
    Tracer,
    chrome_trace_events,
    graft_records,
    span_from_record,
    span_record,
)

GOLDEN = os.path.join(os.path.dirname(__file__), "golden_chrome_trace.json")


def _fixed_span(name, start, end, cpu, attributes=None, children=()):
    """A hand-built finished span with deterministic timings."""
    span = Span(name, attributes or {})
    span.start_wall, span.end_wall = start, end
    span.start_cpu, span.end_cpu = 0.0, cpu
    span.children = list(children)
    return span


def _fixed_forest():
    """A deterministic two-board forest shaped like a sharded campaign."""
    measure0 = _fixed_span("board.measure", 10.002, 10.004, 0.0015)
    board0 = _fixed_span(
        "worker.board", 10.001, 10.005, 0.003, {"board": 0}, [measure0]
    )
    measure1 = _fixed_span("board.measure", 10.005, 10.008, 0.0020)
    board1 = _fixed_span(
        "worker.board", 10.005, 10.009, 0.0035, {"board": 1}, [measure1]
    )
    shards = _fixed_span(
        "campaign.shards", 10.0005, 10.0095, 0.007, {"shards": 2}, [board0, board1]
    )
    root = _fixed_span(
        "campaign.run", 10.0, 10.01, 0.008, {"devices": 2}, [shards]
    )
    return [root]


class TestSpan:
    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            Span("")

    def test_annotate(self):
        span = Span("s")
        span.annotate("month", 4)
        assert span.attributes["month"] == 4

    def test_timing_monotonicity(self):
        tracer = Tracer(enabled=True)
        with tracer.span("work") as span:
            total = sum(range(10_000))
        assert total > 0
        assert span.finished
        assert span.end_wall >= span.start_wall
        assert span.end_cpu >= span.start_cpu
        assert span.wall_s >= 0.0
        assert span.cpu_s >= 0.0

    def test_to_dict_shape(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer", kind="demo"):
            with tracer.span("inner"):
                pass
        doc = tracer.roots[0].to_dict()
        assert doc["name"] == "outer"
        assert doc["attributes"] == {"kind": "demo"}
        assert [child["name"] for child in doc["children"]] == ["inner"]


class TestTracer:
    def test_nesting(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        (root,) = tracer.roots
        assert root.name == "a"
        assert [child.name for child in root.children] == ["b", "d"]
        assert [child.name for child in root.children[0].children] == ["c"]

    def test_child_wall_within_parent(self):
        tracer = Tracer(enabled=True)
        with tracer.span("parent"):
            with tracer.span("child"):
                sum(range(1000))
        parent = tracer.roots[0]
        child = parent.children[0]
        assert child.wall_s <= parent.wall_s
        assert child.start_wall >= parent.start_wall
        assert child.end_wall <= parent.end_wall

    def test_current_tracks_stack(self):
        tracer = Tracer(enabled=True)
        assert tracer.current is None
        with tracer.span("a") as a:
            assert tracer.current is a
            with tracer.span("b") as b:
                assert tracer.current is b
            assert tracer.current is a
        assert tracer.current is None

    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("invisible") as span:
            span.annotate("k", "v")  # no-op must accept annotate
        assert span is NULL_SPAN
        assert tracer.roots == []

    def test_exception_still_closes_span(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with tracer.span("failing"):
                raise ValueError("boom")
        assert tracer.current is None
        assert tracer.roots[0].finished

    def test_reset(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.roots == []
        assert tracer.current is None

    def test_render_tree_lists_spans_and_attributes(self):
        tracer = Tracer(enabled=True)
        with tracer.span("campaign.run", devices=2):
            with tracer.span("campaign.month", month=0):
                pass
        rendered = tracer.render_tree()
        assert "campaign.run [devices=2]" in rendered
        assert "  campaign.month [month=0]" in rendered
        assert "% parent" in rendered

    def test_render_tree_empty(self):
        assert "no spans recorded" in Tracer().render_tree()

    def test_export_json(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("root", seed=1):
            with tracer.span("leaf"):
                pass
        path = str(tmp_path / "trace.json")
        tracer.export_json(path)
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        assert doc["format"] == "repro-trace"
        assert doc["version"] == 2
        assert doc["trace_id"] is None
        assert doc["spans"][0]["name"] == "root"
        assert doc["spans"][0]["children"][0]["name"] == "leaf"
        assert doc["spans"][0]["wall_s"] >= 0.0

    def test_export_json_carries_trace_id(self, tmp_path):
        tracer = Tracer(enabled=True)
        tracer.trace_id = "0123456789abcdef"
        with tracer.span("root"):
            pass
        path = str(tmp_path / "trace.json")
        tracer.export_json(path)
        with open(path, "r", encoding="utf-8") as handle:
            assert json.load(handle)["trace_id"] == "0123456789abcdef"


class TestSpanIds:
    def test_assign_ids_preorder(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        with tracer.span("e"):
            pass
        tracer.assign_ids()
        a, e = tracer.roots
        b, d = a.children
        c = b.children[0]
        assert [s.span_id for s in (a, b, c, d, e)] == [1, 2, 3, 4, 5]
        assert a.parent_id is None and e.parent_id is None
        assert b.parent_id == 1 and d.parent_id == 1 and c.parent_id == 2

    def test_ids_depend_on_structure_not_timing(self):
        forest_a, forest_b = _fixed_forest(), _fixed_forest()
        for span in forest_b[0].children:  # perturb timings only
            span.end_wall += 0.5
        tracer_a, tracer_b = Tracer(enabled=True), Tracer(enabled=True)
        tracer_a._roots, tracer_b._roots = forest_a, forest_b
        tracer_a.assign_ids()
        tracer_b.assign_ids()

        def ids(span):
            return [(span.span_id, span.parent_id)] + [
                pair for child in span.children for pair in ids(child)
            ]

        assert ids(forest_a[0]) == ids(forest_b[0])

    def test_reassign_after_graft_is_consistent(self):
        tracer = Tracer(enabled=True)
        with tracer.span("parent") as parent:
            pass
        tracer.assign_ids()
        worker = Tracer(enabled=True)
        with worker.span("worker.board", board=0):
            pass
        records = [span_record(root, worker.roots[0].start_wall)
                   for root in worker.roots]
        graft_records(parent, records)
        tracer.assign_ids()
        assert parent.span_id == 1
        assert parent.children[0].span_id == 2
        assert parent.children[0].parent_id == 1


class TestSpanRecords:
    def test_record_roundtrip_preserves_tree(self):
        (root,) = _fixed_forest()
        record = span_record(root, epoch=root.start_wall)
        rebuilt = span_from_record(record, base_wall=100.0)
        assert rebuilt.name == root.name
        assert rebuilt.attributes == root.attributes
        assert rebuilt.start_wall == pytest.approx(100.0)
        assert rebuilt.wall_s == pytest.approx(root.wall_s)
        assert rebuilt.cpu_s == pytest.approx(root.cpu_s)
        shards = rebuilt.children[0]
        assert shards.name == "campaign.shards"
        # Relative offsets survive: the shards span started 0.5 ms in.
        assert shards.start_wall == pytest.approx(100.0005)
        assert [b.attributes["board"] for b in shards.children] == [0, 1]

    def test_record_is_plain_json(self):
        (root,) = _fixed_forest()
        record = span_record(root, epoch=root.start_wall)
        json.dumps(record)  # must not raise: pickle/JSON-safe by design

    def test_graft_rebases_onto_parent_clock(self):
        parent = _fixed_span("campaign.shards", 50.0, 51.0, 0.5)
        child_record = {
            "name": "worker.board",
            "attributes": {"board": 3},
            "start_s": 0.25,
            "wall_s": 0.5,
            "cpu_s": 0.4,
            "children": [],
        }
        graft_records(parent, [child_record])
        grafted = parent.children[0]
        assert grafted.start_wall == pytest.approx(50.25)
        assert grafted.end_wall == pytest.approx(50.75)
        assert grafted.finished


class TestTraceContext:
    def test_active_flags(self):
        assert not TraceContext().active
        assert TraceContext(spans=True).active
        assert TraceContext(phases=True).active

    def test_disabled_tracer_yields_no_context(self):
        assert Tracer(enabled=False).context() is None

    def test_enabled_tracer_context_carries_trace_id(self):
        tracer = Tracer(enabled=True)
        tracer.trace_id = "feedface00000000"
        context = tracer.context(phases=True)
        assert context.spans and context.phases
        assert context.trace_id == "feedface00000000"

    def test_phases_alone_still_yield_context(self):
        context = Tracer(enabled=False).context(phases=True)
        assert context is not None
        assert context.phases and not context.spans

    def test_context_pickles(self):
        import pickle

        context = TraceContext(trace_id="abc", spans=True, phases=True)
        assert pickle.loads(pickle.dumps(context)) == context


class TestChromeExport:
    def test_events_match_golden(self):
        tracer = Tracer(enabled=True)
        tracer.trace_id = "0123456789abcdef"
        tracer._roots = _fixed_forest()
        tracer.assign_ids()
        document = {
            "traceEvents": chrome_trace_events(tracer.roots),
            "displayTimeUnit": "ms",
            "otherData": {
                "format": "repro-trace-chrome",
                "trace_id": tracer.trace_id,
            },
        }
        with open(GOLDEN, "r", encoding="utf-8") as handle:
            assert document == json.load(handle)

    def test_board_attribute_opens_a_lane(self):
        events = chrome_trace_events(_fixed_forest())
        by_name = {}
        for event in events:
            by_name.setdefault(event["name"], []).append(event)
        # Non-board spans sit on tid 0; each board gets board + 1.
        assert [e["tid"] for e in by_name["campaign.run"]] == [0]
        assert [e["tid"] for e in by_name["campaign.shards"]] == [0]
        assert sorted(e["tid"] for e in by_name["worker.board"]) == [1, 2]
        # Descendants inherit the board lane.
        assert sorted(e["tid"] for e in by_name["board.measure"]) == [1, 2]

    def test_timestamps_relative_microseconds(self):
        events = chrome_trace_events(_fixed_forest())
        root = next(e for e in events if e["name"] == "campaign.run")
        assert root["ts"] == 0.0
        assert root["dur"] == pytest.approx(10_000.0)  # 10 ms
        assert root["ph"] == "X" and root["pid"] == 0

    def test_empty_forest_exports_no_events(self):
        assert chrome_trace_events([]) == []

    def test_export_chrome_file(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("root", seed=1):
            with tracer.span("leaf"):
                pass
        path = str(tmp_path / "trace.chrome.json")
        tracer.export_chrome(path)
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["format"] == "repro-trace-chrome"
        names = [event["name"] for event in doc["traceEvents"]]
        assert names == ["root", "leaf"]
        args = doc["traceEvents"][1]["args"]
        assert args["span_id"] == 2 and args["parent_id"] == 1
