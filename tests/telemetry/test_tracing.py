"""Tests for the tracing core (spans, tracer, rendering, export)."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import NULL_SPAN, Span, Tracer


class TestSpan:
    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            Span("")

    def test_annotate(self):
        span = Span("s")
        span.annotate("month", 4)
        assert span.attributes["month"] == 4

    def test_timing_monotonicity(self):
        tracer = Tracer(enabled=True)
        with tracer.span("work") as span:
            total = sum(range(10_000))
        assert total > 0
        assert span.finished
        assert span.end_wall >= span.start_wall
        assert span.end_cpu >= span.start_cpu
        assert span.wall_s >= 0.0
        assert span.cpu_s >= 0.0

    def test_to_dict_shape(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer", kind="demo"):
            with tracer.span("inner"):
                pass
        doc = tracer.roots[0].to_dict()
        assert doc["name"] == "outer"
        assert doc["attributes"] == {"kind": "demo"}
        assert [child["name"] for child in doc["children"]] == ["inner"]


class TestTracer:
    def test_nesting(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        (root,) = tracer.roots
        assert root.name == "a"
        assert [child.name for child in root.children] == ["b", "d"]
        assert [child.name for child in root.children[0].children] == ["c"]

    def test_child_wall_within_parent(self):
        tracer = Tracer(enabled=True)
        with tracer.span("parent"):
            with tracer.span("child"):
                sum(range(1000))
        parent = tracer.roots[0]
        child = parent.children[0]
        assert child.wall_s <= parent.wall_s
        assert child.start_wall >= parent.start_wall
        assert child.end_wall <= parent.end_wall

    def test_current_tracks_stack(self):
        tracer = Tracer(enabled=True)
        assert tracer.current is None
        with tracer.span("a") as a:
            assert tracer.current is a
            with tracer.span("b") as b:
                assert tracer.current is b
            assert tracer.current is a
        assert tracer.current is None

    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("invisible") as span:
            span.annotate("k", "v")  # no-op must accept annotate
        assert span is NULL_SPAN
        assert tracer.roots == []

    def test_exception_still_closes_span(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with tracer.span("failing"):
                raise ValueError("boom")
        assert tracer.current is None
        assert tracer.roots[0].finished

    def test_reset(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.roots == []
        assert tracer.current is None

    def test_render_tree_lists_spans_and_attributes(self):
        tracer = Tracer(enabled=True)
        with tracer.span("campaign.run", devices=2):
            with tracer.span("campaign.month", month=0):
                pass
        rendered = tracer.render_tree()
        assert "campaign.run [devices=2]" in rendered
        assert "  campaign.month [month=0]" in rendered
        assert "% parent" in rendered

    def test_render_tree_empty(self):
        assert "no spans recorded" in Tracer().render_tree()

    def test_export_json(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("root", seed=1):
            with tracer.span("leaf"):
                pass
        path = str(tmp_path / "trace.json")
        tracer.export_json(path)
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        assert doc["format"] == "repro-trace"
        assert doc["spans"][0]["name"] == "root"
        assert doc["spans"][0]["children"][0]["name"] == "leaf"
        assert doc["spans"][0]["wall_s"] >= 0.0
