"""Tests for run manifests and their persistence."""

import pytest

import repro
from repro.core.config import StudyConfig
from repro.errors import StorageError
from repro.io.jsonstore import load_manifest, save_manifest
from repro.telemetry import RunManifest, manifest_path_for


class TestRunManifest:
    def test_defaults_fill_environment(self):
        manifest = RunManifest()
        assert manifest.package_version == repro.__version__
        assert manifest.run_id
        assert manifest.created_at.endswith("Z")
        assert manifest.python_version

    def test_for_config_flattens_study_config(self):
        config = StudyConfig(device_count=4, months=6, seed=7)
        manifest = RunManifest.for_config(config, command="test")
        assert manifest.seed == 7
        assert manifest.config["device_count"] == 4
        assert manifest.config["months"] == 6
        # The profile dataclass flattens to its name.
        assert manifest.config["profile"] == "ATmega32u4"
        assert manifest.command == "test"

    def test_record_phase(self):
        manifest = RunManifest()
        manifest.record_phase("campaign", 1.25)
        assert manifest.phases == {"campaign": 1.25}

    def test_json_round_trip(self):
        manifest = RunManifest.for_config(StudyConfig(seed=3))
        manifest.record_phase("campaign", 0.5)
        manifest.metrics = {"campaign.powerups": {"type": "counter", "value": 10}}
        manifest.summaries = {"WCHD": {"start_avg": 0.025}}
        clone = RunManifest.from_json_dict(manifest.to_json_dict())
        assert clone.to_json_dict() == manifest.to_json_dict()

    def test_version_mismatch_rejected(self):
        doc = RunManifest().to_json_dict()
        doc["manifest_version"] = 999
        with pytest.raises(StorageError):
            RunManifest.from_json_dict(doc)

    def test_malformed_document_rejected(self):
        with pytest.raises(StorageError):
            RunManifest.from_json_dict({"manifest_version": 1})


class TestManifestStore:
    def test_round_trip_through_jsonstore(self, tmp_path):
        manifest = RunManifest.for_config(StudyConfig(seed=11), command="round-trip")
        manifest.record_phase("campaign", 2.0)
        path = str(tmp_path / "run.manifest.json")
        save_manifest(manifest, path)
        loaded = load_manifest(path)
        assert loaded.to_json_dict() == manifest.to_json_dict()

    def test_load_missing_file_raises_storage_error(self, tmp_path):
        with pytest.raises(StorageError):
            load_manifest(str(tmp_path / "absent.json"))


class TestManifestPath:
    def test_json_suffix_replaced(self):
        assert manifest_path_for("campaign.json") == "campaign.manifest.json"

    def test_other_suffix_appended(self):
        assert manifest_path_for("campaign.dat") == "campaign.dat.manifest.json"


class TestAssessmentManifest:
    def test_assessment_result_carries_manifest(self):
        from repro import LongTermAssessment

        config = StudyConfig(device_count=2, months=1, measurements=50, seed=5)
        result = LongTermAssessment(config).run()
        manifest = result.manifest
        assert manifest is not None
        assert manifest.seed == 5
        assert set(manifest.phases) == {"campaign", "report"}
        assert all(wall >= 0.0 for wall in manifest.phases.values())
        assert manifest.metrics["campaign.powerups"]["value"] > 0
        assert "WCHD" in manifest.summaries

    def test_save_campaign_writes_manifest_sibling(self, tmp_path):
        from repro import LongTermAssessment
        from repro.io.resultstore import load_campaign, save_campaign

        config = StudyConfig(device_count=2, months=1, measurements=50, seed=5)
        result = LongTermAssessment(config).run()
        path = str(tmp_path / "campaign.json")
        save_campaign(result.campaign, path, manifest=result.manifest)
        assert load_campaign(path).months == 1
        loaded = load_manifest(manifest_path_for(path))
        assert loaded.run_id == result.manifest.run_id
