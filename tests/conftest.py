"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rng import SeedHierarchy
from repro.sram.chip import SRAMChip
from repro.sram.profiles import ATMEGA32U4, DeviceProfile


@pytest.fixture
def seeds() -> SeedHierarchy:
    """A deterministic seed hierarchy."""
    return SeedHierarchy(12345)


@pytest.fixture
def small_profile() -> DeviceProfile:
    """An ATmega-like profile shrunk to 64 bytes for fast tests."""
    return ATMEGA32U4.with_overrides(sram_bytes=64, read_bytes=32)


@pytest.fixture
def chip(seeds) -> SRAMChip:
    """A full-size deterministic chip."""
    return SRAMChip(0, random_state=seeds)


@pytest.fixture
def small_chip(small_profile, seeds) -> SRAMChip:
    """A small deterministic chip for per-measurement tests."""
    return SRAMChip(0, small_profile, random_state=seeds)


@pytest.fixture
def rng() -> np.random.Generator:
    """A plain seeded generator for test-local randomness."""
    return np.random.default_rng(999)
