"""Documentation coverage: every public item carries a docstring.

The library's contract includes doc comments on every public module,
class, function and method; this meta-test enforces it so the contract
cannot silently rot.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _public_modules():
    modules = [repro]
    for info in pkgutil.walk_packages(repro.__path__, "repro."):
        modules.append(importlib.import_module(info.name))
    return modules


MODULES = _public_modules()


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module.__name__} lacks a module docstring"
    )


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-export; documented at its definition site
        if not (member.__doc__ and member.__doc__.strip()):
            undocumented.append(name)
            continue
        if inspect.isclass(member):
            for method_name, method in vars(member).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                if method.__doc__ and method.__doc__.strip():
                    continue
                # An override inherits its contract: documented when
                # any base class documents the same method.
                inherited = any(
                    getattr(base, method_name, None) is not None
                    and getattr(getattr(base, method_name), "__doc__", None)
                    for base in member.__mro__[1:]
                )
                if not inherited:
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, (
        f"{module.__name__} has undocumented public items: {undocumented}"
    )
