"""Failure injection: the library fails loudly on degenerate inputs.

Every subsystem has explicit failure semantics; these tests inject the
failures — a dead noise source, an impostor device, a stuck entropy
stream, out-of-margin aging — and check that the declared exception
(never a silently wrong result) comes out.
"""

import numpy as np
import pytest

from repro.errors import (
    EntropyExhausted,
    HealthTestFailure,
    ReconstructionFailure,
)
from repro.keygen.ecc import ExtendedGolayCode
from repro.keygen.helper_data import CodeOffsetSketch
from repro.keygen.keygen import SRAMKeyGenerator
from repro.rng import SeedHierarchy
from repro.sram.chip import SRAMChip
from repro.sram.profiles import ATMEGA32U4
from repro.trng.health import HealthMonitor
from repro.trng.trng import SRAMTRNG


def frozen_chip(seed: int = 1) -> SRAMChip:
    """A device whose cells never flip (noise amplitude ~ 0)."""
    profile = ATMEGA32U4.with_overrides(
        noise_sigma_v=1e-12, chip_mean_sigma_v=0.0,
        sram_bytes=256, read_bytes=256,
    )
    return SRAMChip(0, profile, random_state=seed)


class TestDeadNoiseSource:
    def test_unstable_mask_trng_exhausts(self):
        trng = SRAMTRNG(frozen_chip(), strategy="unstable-mask",
                        claimed_entropy_per_bit=0.5)
        with pytest.raises(EntropyExhausted):
            trng.generate(64)

    def test_health_monitor_trips_on_constant_raw_stream(self):
        """A broken harvester producing all-zeros must trip the
        repetition-count test at any honest entropy claim."""
        monitor = HealthMonitor(min_entropy_per_bit=0.5)
        with pytest.raises(HealthTestFailure):
            monitor.check(np.zeros(4096, dtype=np.uint8))

    def test_reference_xor_of_frozen_device_trips_health(self):
        """End to end: a frozen device's reference-XOR stream is all
        zeros and the TRNG's own health tests reject it."""
        trng = SRAMTRNG(frozen_chip(), claimed_entropy_per_bit=0.5,
                        max_power_ups=10_000)
        with pytest.raises(HealthTestFailure):
            trng.generate(16)


class TestWrongDevice:
    def test_impostor_cannot_reconstruct(self, seeds):
        victim = SRAMChip(0, random_state=seeds)
        generator = SRAMKeyGenerator(victim, key_bits=128, secret_bits=48)
        key, record = generator.enroll(random_state=1)

        impostor_chip = SRAMChip(99, random_state=SeedHierarchy(777))
        impostor = SRAMKeyGenerator(impostor_chip, key_bits=128, secret_bits=48)
        try:
            recovered = impostor.reconstruct(record)
            assert not np.array_equal(recovered, key)
        except ReconstructionFailure:
            pass  # detection is equally acceptable

    def test_sketch_with_garbage_helper_fails(self, rng):
        sketch = CodeOffsetSketch(ExtendedGolayCode())
        response = rng.integers(0, 2, 240, dtype=np.uint8)
        secret, helper = sketch.enroll(response, secret_bits=48, random_state=2)
        from dataclasses import replace

        vandalised = replace(
            helper, offset=rng.integers(0, 2, helper.offset.size, dtype=np.uint8)
        )
        try:
            recovered = sketch.reconstruct(response, vandalised, secret_bits=48)
            assert not np.array_equal(recovered, secret)
        except ReconstructionFailure:
            pass


class TestExtremeAging:
    def test_century_of_aging_eventually_defeats_weak_code(self, seeds):
        """Aging far beyond the study's window must eventually break a
        margin-free code — the failure is *detected*, not silent."""
        from repro.keygen.ecc import HammingCode

        chip = SRAMChip(0, random_state=seeds)
        generator = SRAMKeyGenerator(
            chip, code=HammingCode(3), debias=False, key_bits=64, secret_bits=64
        )
        key, record = generator.enroll(random_state=3)
        chip.age_months(1200.0, steps=40)  # a century
        failures = sum(
            not generator.reconstruction_succeeds(record, key) for _ in range(10)
        )
        assert failures > 0

    def test_extreme_aging_keeps_probabilities_valid(self, seeds):
        chip = SRAMChip(0, random_state=seeds)
        chip.age_months(1200.0, steps=40)
        probs = chip.window_one_probabilities()
        assert probs.min() >= 0.0 and probs.max() <= 1.0
        counts = chip.read_window_ones_counts(100)
        assert counts.min() >= 0 and counts.max() <= 100


class TestCorruptedCampaignData:
    def test_loaded_campaign_with_tampered_snapshot_count_rejected(self, tmp_path):
        from repro.analysis.campaign import LongTermCampaign
        from repro.errors import ConfigurationError, StorageError
        from repro.io.resultstore import campaign_to_dict, campaign_from_dict

        result = LongTermCampaign(
            device_count=2, months=2, measurements=50, random_state=4
        ).run()
        doc = campaign_to_dict(result)
        doc["snapshots"] = doc["snapshots"][:-1]  # drop the last month
        with pytest.raises((StorageError, ConfigurationError)):
            campaign_from_dict(doc)
