"""Statistical-vs-measurement fidelity equivalence.

DESIGN.md §2 claims the Binomial sufficient-statistic path is exact in
distribution for every metric the paper evaluates.  These tests verify
the claim empirically on a small device where full measurement-level
simulation is cheap.
"""

import numpy as np
import pytest

from repro.metrics.entropy import noise_min_entropy_from_counts
from repro.metrics.hamming import (
    fractional_hamming_weight_from_counts,
    within_class_hd_from_counts,
)
from repro.metrics.stability import stable_cell_ratio_from_counts
from repro.rng import SeedHierarchy
from repro.sram.chip import SRAMChip
from repro.sram.powerup import sample_measurement_block
from repro.sram.profiles import ATMEGA32U4


@pytest.fixture(scope="module")
def fidelity_samples():
    """Many paired samples of both fidelities on identical devices."""
    profile = ATMEGA32U4.with_overrides(sram_bytes=256, read_bytes=256)
    measurements = 200
    rows = []
    for trial in range(40):
        seeds = SeedHierarchy(1000 + trial)
        chip_stat = SRAMChip(0, profile, random_state=seeds)
        chip_meas = SRAMChip(0, profile, random_state=SeedHierarchy(1000 + trial))
        reference = chip_stat.read_startup()
        chip_meas.read_startup()  # consume the same reference draw
        stat = sample_measurement_block(chip_stat, measurements, statistical=True)
        meas = sample_measurement_block(chip_meas, measurements, statistical=False)
        rows.append((reference, stat, meas, measurements))
    return rows


class TestFidelityEquivalence:
    def test_wchd_distributions_match(self, fidelity_samples):
        stat_values, meas_values = [], []
        for reference, stat, meas, n in fidelity_samples:
            stat_values.append(within_class_hd_from_counts(stat.ones_counts, n, reference))
            meas_values.append(within_class_hd_from_counts(meas.ones_counts, n, reference))
        assert np.mean(stat_values) == pytest.approx(np.mean(meas_values), abs=0.004)

    def test_fhw_distributions_match(self, fidelity_samples):
        stat_values = [
            fractional_hamming_weight_from_counts(s.ones_counts, n)
            for _, s, _, n in fidelity_samples
        ]
        meas_values = [
            fractional_hamming_weight_from_counts(m.ones_counts, n)
            for _, _, m, n in fidelity_samples
        ]
        assert np.mean(stat_values) == pytest.approx(np.mean(meas_values), abs=0.01)

    def test_stable_ratio_distributions_match(self, fidelity_samples):
        stat_values = [
            stable_cell_ratio_from_counts(s.ones_counts, n)
            for _, s, _, n in fidelity_samples
        ]
        meas_values = [
            stable_cell_ratio_from_counts(m.ones_counts, n)
            for _, _, m, n in fidelity_samples
        ]
        assert np.mean(stat_values) == pytest.approx(np.mean(meas_values), abs=0.01)

    def test_noise_entropy_distributions_match(self, fidelity_samples):
        stat_values = [
            noise_min_entropy_from_counts(s.ones_counts, n)
            for _, s, _, n in fidelity_samples
        ]
        meas_values = [
            noise_min_entropy_from_counts(m.ones_counts, n)
            for _, _, m, n in fidelity_samples
        ]
        assert np.mean(stat_values) == pytest.approx(np.mean(meas_values), abs=0.005)
