"""Cross-subsystem integration tests.

These wire subsystems together the way a downstream user would:
testbed -> database -> metrics, testbed boards -> campaign, keygen and
TRNG riding on one aging device, accelerated vs nominal comparison.
"""

import numpy as np
import pytest

from repro.analysis.accelerated import AcceleratedAgingStudy
from repro.analysis.campaign import LongTermCampaign
from repro.analysis.monthly import evaluate_month
from repro.hardware.testbed import Testbed
from repro.keygen.keygen import SRAMKeyGenerator
from repro.metrics.hamming import within_class_hd
from repro.rng import SeedHierarchy
from repro.sram.chip import SRAMChip
from repro.trng.trng import SRAMTRNG


class TestTestbedToMetrics:
    def test_database_records_support_wchd_analysis(self, small_profile):
        """Records collected by the simulated testbed feed the same
        metrics pipeline the paper applies to its JSON store."""
        bed = Testbed(device_count=2, profile=small_profile, random_state=31)
        bed.run_seconds(120.0)
        records = bed.database.for_board(0)
        assert len(records) >= 15
        reference = records[0].bits
        block = np.stack([record.bits for record in records[1:]])
        wchd = within_class_hd(block, reference)
        assert 0.0 <= wchd < 0.10

    def test_testbed_boards_feed_monthly_evaluation(self, small_profile):
        bed = Testbed(device_count=4, profile=small_profile, random_state=32)
        bed.run_seconds(20.0)
        chips = [slave.chip for slave in bed.slaves]
        references = {chip.chip_id: chip.read_startup() for chip in chips}
        snapshot = evaluate_month(chips, references, month=0, measurements=100)
        assert snapshot.wchd.shape == (4,)


class TestApplicationsOnAgingSilicon:
    def test_keygen_and_trng_share_a_device(self, seeds):
        chip = SRAMChip(0, random_state=seeds)
        generator = SRAMKeyGenerator(chip, key_bits=128, secret_bits=48)
        key, record = generator.enroll(random_state=1)
        trng = SRAMTRNG(chip)
        random_bits = trng.generate(256)
        assert random_bits.size == 256
        np.testing.assert_array_equal(generator.reconstruct(record), key)

    def test_key_survives_but_trng_improves_with_age(self, seeds):
        """The paper's two conclusions on one device: keys stay
        reconstructible while harvested noise density rises."""
        chip = SRAMChip(3, random_state=seeds)
        generator = SRAMKeyGenerator(chip, key_bits=128, secret_bits=48)
        key, record = generator.enroll(random_state=2)

        from repro.trng.harvester import NoiseHarvester

        fresh_noise = NoiseHarvester(chip).harvest(100_000).mean()
        chip.age_months(24.0, steps=12)
        aged_noise = NoiseHarvester(chip).harvest(100_000).mean()

        assert generator.reconstruction_succeeds(record, key)
        assert aged_noise > fresh_noise


class TestAcceleratedVsNominal:
    def test_paper_conclusion_accelerated_overestimates(self):
        """Section IV-D: the accelerated monthly WCHD rate exceeds the
        nominal one — the paper's central comparison."""
        nominal = LongTermCampaign(
            device_count=4, months=12, measurements=400, random_state=33
        ).run()
        from repro.metrics.summary import geometric_monthly_change

        nominal_rate = geometric_monthly_change(
            float(nominal.start.wchd.mean()), float(nominal.end.wchd.mean()), 12
        )
        accelerated = AcceleratedAgingStudy(
            device_count=4, measurements=400, random_state=34
        ).run(equivalent_months=12, checkpoints=3)
        assert accelerated.monthly_rate > nominal_rate


class TestDeterministicPipeline:
    def test_identical_seeds_identical_everything(self):
        seeds_a, seeds_b = SeedHierarchy(99), SeedHierarchy(99)
        chip_a = SRAMChip(0, random_state=seeds_a)
        chip_b = SRAMChip(0, random_state=seeds_b)
        key_a, _ = SRAMKeyGenerator(chip_a, secret_bits=48).enroll(random_state=5)
        key_b, _ = SRAMKeyGenerator(chip_b, secret_bits=48).enroll(random_state=5)
        np.testing.assert_array_equal(key_a, key_b)
