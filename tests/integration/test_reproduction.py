"""The headline reproduction test: Table I from a full-scale campaign.

This is the library's acceptance test — a 16-device, 24-month
assessment at statistical fidelity (a few seconds) whose summary table
must land on the paper's published values within tight tolerances.
"""

import pytest

from repro.core.assessment import AssessmentResult, LongTermAssessment
from repro.core.config import StudyConfig
from repro.core.paper import PAPER


@pytest.fixture(scope="module")
def result() -> AssessmentResult:
    return LongTermAssessment(StudyConfig(seed=1)).run()


class TestTableOneAverages:
    def test_wchd_start(self, result):
        assert result.table["WCHD"].start_avg == pytest.approx(
            PAPER.wchd.start_avg, rel=0.05
        )

    def test_wchd_end(self, result):
        assert result.table["WCHD"].end_avg == pytest.approx(
            PAPER.wchd.end_avg, rel=0.06
        )

    def test_wchd_monthly_rate(self, result):
        assert result.table["WCHD"].monthly_change_avg == pytest.approx(
            PAPER.nominal_monthly_wchd_rate, abs=0.002
        )

    def test_hamming_weight_flat(self, result):
        row = result.table["HW"]
        assert row.start_avg == pytest.approx(PAPER.hamming_weight.start_avg, abs=0.01)
        assert abs(row.end_avg - row.start_avg) < 0.002

    def test_stable_cells(self, result):
        row = result.table["Ratio of Stable Cells"]
        assert row.start_avg == pytest.approx(PAPER.stable_cells.start_avg, abs=0.01)
        assert row.end_avg == pytest.approx(PAPER.stable_cells.end_avg, abs=0.015)
        assert row.end_avg < row.start_avg

    def test_noise_entropy(self, result):
        row = result.table["Noise entropy"]
        assert row.start_avg == pytest.approx(PAPER.noise_entropy.start_avg, rel=0.06)
        assert row.end_avg == pytest.approx(PAPER.noise_entropy.end_avg, rel=0.06)

    def test_bchd_flat_near_paper(self, result):
        row = result.table["BCHD"]
        assert row.start_avg == pytest.approx(PAPER.bchd.start_avg, abs=0.01)
        assert abs(row.end_avg - row.start_avg) < 0.005

    def test_puf_entropy(self, result):
        row = result.table["PUF entropy"]
        assert row.start_avg == pytest.approx(PAPER.puf_entropy.start_avg, abs=0.02)


class TestTableOneWorstCases:
    def test_wchd_worst(self, result):
        row = result.table["WCHD"]
        assert row.start_worst == pytest.approx(PAPER.wchd.start_worst, rel=0.08)
        assert row.end_worst == pytest.approx(PAPER.wchd.end_worst, rel=0.08)

    def test_noise_entropy_worst(self, result):
        row = result.table["Noise entropy"]
        assert row.start_worst == pytest.approx(
            PAPER.noise_entropy.start_worst, rel=0.10
        )

    def test_bchd_worst(self, result):
        row = result.table["BCHD"]
        assert row.start_worst == pytest.approx(PAPER.bchd.start_worst, abs=0.02)


class TestHeadlineClaims:
    def test_reliability_worsens_within_bounds(self, result):
        """WCHD grows ~19 % but stays far below the 25 % ECC boundary."""
        row = result.table["WCHD"]
        assert 0.10 < row.relative_change_avg < 0.30
        assert row.end_worst < 0.25

    def test_randomness_improves(self, result):
        row = result.table["Noise entropy"]
        assert row.relative_change_avg > 0.10

    def test_uniqueness_unaffected(self, result):
        for name in ("BCHD", "PUF entropy"):
            row = result.table[name]
            change = abs(row.end_avg - row.start_avg) / row.start_avg
            assert change < 0.01

    def test_every_comparison_cell_within_10_percent(self, result):
        for row in result.compare_with_paper():
            assert abs(row.relative_error) < 0.10, (
                f"{row.metric}/{row.column}: paper {row.paper_value:.4f} "
                f"vs measured {row.measured_value:.4f}"
            )
