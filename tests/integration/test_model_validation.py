"""Analytic-model-vs-simulator validation across the parameter space.

The analytic :class:`~repro.analysis.reliability.CellReliabilityModel`
and the Monte-Carlo simulator implement the same physics through
entirely different code paths (quadrature vs sampling); agreement
across *random* profiles is therefore a strong cross-check of both.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.reliability import CellReliabilityModel
from repro.metrics.entropy import noise_min_entropy_from_counts
from repro.metrics.hamming import (
    fractional_hamming_weight_from_counts,
    within_class_hd_from_counts,
)
from repro.metrics.stability import stable_cell_ratio_from_counts
from repro.sram.chip import SRAMChip
from repro.sram.profiles import ATMEGA32U4


def random_profile(mean_sigmas: float, sigma_sigmas: float):
    return ATMEGA32U4.with_overrides(
        skew_mean_v=mean_sigmas * ATMEGA32U4.noise_sigma_v,
        skew_sigma_v=sigma_sigmas * ATMEGA32U4.noise_sigma_v,
        chip_mean_sigma_v=0.0,
        sram_bytes=2048,
        read_bytes=2048,
    )


class TestModelAgainstSimulator:
    @settings(max_examples=15, deadline=None)
    @given(
        st.floats(-4.0, 4.0),
        st.floats(5.0, 25.0),
        st.integers(0, 2**16),
    )
    def test_bias_and_error_rate_agree(self, mean, sigma, seed):
        profile = random_profile(mean, sigma)
        model = CellReliabilityModel(profile)
        chip = SRAMChip(0, profile, random_state=seed)
        reference = chip.read_startup()
        counts = chip.read_window_ones_counts(400)

        empirical_bias = fractional_hamming_weight_from_counts(counts, 400)
        assert empirical_bias == pytest.approx(model.expected_bias(), abs=0.03)

        empirical_wchd = within_class_hd_from_counts(counts, 400, reference)
        assert empirical_wchd == pytest.approx(
            model.expected_error_rate(), abs=0.012
        )

    @settings(max_examples=10, deadline=None)
    @given(st.floats(-2.0, 2.0), st.floats(6.0, 20.0), st.integers(0, 2**16))
    def test_stability_and_entropy_agree(self, mean, sigma, seed):
        profile = random_profile(mean, sigma)
        model = CellReliabilityModel(profile)
        chip = SRAMChip(0, profile, random_state=seed)
        counts = chip.read_window_ones_counts(500)

        empirical_stable = stable_cell_ratio_from_counts(counts, 500)
        assert empirical_stable == pytest.approx(
            model.expected_stable_ratio(500), abs=0.03
        )

        empirical_entropy = noise_min_entropy_from_counts(counts, 500)
        assert empirical_entropy == pytest.approx(
            model.expected_noise_entropy(), abs=0.02
        )

    @settings(max_examples=8, deadline=None)
    @given(st.floats(250.0, 400.0), st.integers(0, 2**16))
    def test_temperature_dependence_agrees(self, temperature, seed):
        model = CellReliabilityModel(ATMEGA32U4)
        profile = ATMEGA32U4.with_overrides(
            chip_mean_sigma_v=0.0, sram_bytes=2048, read_bytes=2048
        )
        chip = SRAMChip(0, profile, random_state=seed)
        counts = chip.read_window_ones_counts(400, temperature_k=temperature)
        empirical = fractional_hamming_weight_from_counts(counts, 400)
        assert empirical == pytest.approx(
            CellReliabilityModel(profile).expected_bias(temperature), abs=0.03
        )
