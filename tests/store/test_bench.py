"""Tests for the perf-regression ledger (repro.store.bench)."""

import json

import pytest

from repro.errors import ConfigurationError, StorageError
from repro.store.bench import (
    BENCH_VERSION,
    BenchLedger,
    git_revision,
    higher_is_better,
    host_fingerprint,
    render_comparison,
)


@pytest.fixture
def ledger(tmp_path):
    return BenchLedger(str(tmp_path / "bench_ledger.jsonl"))


def _seed(ledger, *metric_dicts, name="kernel", host="h1"):
    """Append one run per metrics dict, with increasing fake revisions."""
    for index, metrics in enumerate(metric_dicts):
        ledger.record(
            name,
            metrics,
            host=host,
            git_rev=f"rev{index}",
            created_at=f"2026-08-0{index + 1}T00:00:00Z",
        )


class TestDirectionHeuristic:
    @pytest.mark.parametrize(
        "metric", ["months_per_s", "blocks_per_s", "throughput", "cache_hits",
                   "decode_ops", "sample_rate"]
    )
    def test_throughput_shaped_metrics_improve_upward(self, metric):
        assert higher_is_better(metric)

    @pytest.mark.parametrize("metric", ["wall_s", "cpu_s", "rss_kb", "latency"])
    def test_cost_shaped_metrics_improve_downward(self, metric):
        assert not higher_is_better(metric)


class TestIdentity:
    def test_host_fingerprint_stable_hex(self):
        fingerprint = host_fingerprint()
        assert fingerprint == host_fingerprint()
        assert len(fingerprint) == 12
        int(fingerprint, 16)

    def test_git_revision_in_this_repo(self):
        rev = git_revision()
        assert rev == "unknown" or len(rev) == 40

    def test_git_revision_outside_a_checkout(self, tmp_path):
        assert git_revision(cwd=str(tmp_path)) == "unknown"


class TestRecord:
    def test_record_writes_sorted_jsonl(self, ledger):
        ledger.record("k", {"wall_s": 1.5}, host="h", git_rev="r", created_at="t")
        with open(ledger.path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        assert len(lines) == 1
        document = json.loads(lines[0])
        assert document["bench_version"] == BENCH_VERSION
        assert document["metrics"] == {"wall_s": 1.5}
        assert list(document) == sorted(document)

    def test_record_is_append_only(self, ledger):
        _seed(ledger, {"wall_s": 1.0}, {"wall_s": 2.0})
        with open(ledger.path, "r", encoding="utf-8") as handle:
            assert len(handle.read().splitlines()) == 2

    def test_empty_name_rejected(self, ledger):
        with pytest.raises(ConfigurationError):
            ledger.record("", {"wall_s": 1.0})

    def test_empty_metrics_rejected(self, ledger):
        with pytest.raises(ConfigurationError):
            ledger.record("k", {})

    def test_non_numeric_metric_rejected(self, ledger):
        with pytest.raises(ConfigurationError, match="not numeric"):
            ledger.record("k", {"wall_s": "fast"})

    def test_defaults_fill_identity_fields(self, ledger):
        document = ledger.record("k", {"wall_s": 1.0})
        assert document["host"] == host_fingerprint()
        assert document["git_rev"] == git_revision()
        assert document["created_at"]


class TestRecords:
    def test_missing_ledger_reads_empty(self, ledger):
        assert ledger.records() == []
        assert ledger.names() == []

    def test_filter_by_name_and_host(self, ledger):
        _seed(ledger, {"wall_s": 1.0}, name="a", host="h1")
        _seed(ledger, {"wall_s": 2.0}, name="b", host="h1")
        _seed(ledger, {"wall_s": 3.0}, name="a", host="h2")
        assert len(ledger.records(name="a")) == 2
        assert len(ledger.records(name="a", host="h1")) == 1
        assert ledger.names() == ["a", "b"]

    def test_malformed_line_raises(self, ledger, tmp_path):
        ledger.record("k", {"wall_s": 1.0})
        with open(ledger.path, "a", encoding="utf-8") as handle:
            handle.write('{"not": "a bench line"}\n')
        with pytest.raises(StorageError, match="not a bench ledger line"):
            ledger.records()


class TestCompare:
    def test_regression_in_time_metric(self, ledger):
        _seed(ledger, {"wall_s": 1.0}, {"wall_s": 1.5})
        comparison = ledger.compare("kernel", threshold=0.10, host="h1")
        assert comparison["regressions"] == ["wall_s"]
        assert comparison["metrics"]["wall_s"]["change"] == pytest.approx(0.5)

    def test_regression_in_throughput_metric(self, ledger):
        _seed(ledger, {"ops_per_s": 100.0}, {"ops_per_s": 80.0})
        comparison = ledger.compare("kernel", threshold=0.10, host="h1")
        assert comparison["regressions"] == ["ops_per_s"]

    def test_improvement_is_not_a_regression(self, ledger):
        _seed(ledger, {"wall_s": 1.5, "ops_per_s": 80.0},
              {"wall_s": 1.0, "ops_per_s": 100.0})
        comparison = ledger.compare("kernel", threshold=0.10, host="h1")
        assert comparison["regressions"] == []

    def test_within_threshold_passes(self, ledger):
        _seed(ledger, {"wall_s": 1.0}, {"wall_s": 1.05})
        comparison = ledger.compare("kernel", threshold=0.10, host="h1")
        assert comparison["regressions"] == []

    def test_newest_two_runs_compared(self, ledger):
        _seed(ledger, {"wall_s": 9.0}, {"wall_s": 1.0}, {"wall_s": 1.01})
        comparison = ledger.compare("kernel", threshold=0.10, host="h1")
        assert comparison["baseline"]["git_rev"] == "rev1"
        assert comparison["candidate"]["git_rev"] == "rev2"
        assert comparison["regressions"] == []

    def test_cross_host_runs_ignored(self, ledger):
        _seed(ledger, {"wall_s": 1.0}, {"wall_s": 1.01})
        _seed(ledger, {"wall_s": 99.0}, host="noisy-host")
        comparison = ledger.compare("kernel", threshold=0.10, host="h1")
        assert comparison["regressions"] == []

    def test_fewer_than_two_runs_raises(self, ledger):
        _seed(ledger, {"wall_s": 1.0})
        with pytest.raises(StorageError, match="need at least 2"):
            ledger.compare("kernel", host="h1")

    def test_negative_threshold_rejected(self, ledger):
        with pytest.raises(ConfigurationError):
            ledger.compare("kernel", threshold=-0.1)

    def test_zero_baseline_counts_as_regression_when_grown(self, ledger):
        _seed(ledger, {"rss_kb": 0.0}, {"rss_kb": 10.0})
        comparison = ledger.compare("kernel", threshold=0.10, host="h1")
        assert comparison["regressions"] == ["rss_kb"]

    def test_metric_missing_from_baseline_skipped(self, ledger):
        _seed(ledger, {"wall_s": 1.0}, {"wall_s": 1.0, "cpu_s": 9.0})
        comparison = ledger.compare("kernel", threshold=0.10, host="h1")
        assert "cpu_s" not in comparison["metrics"]


class TestRenderComparison:
    def test_table_marks_regressions(self, ledger):
        _seed(ledger, {"wall_s": 1.0, "ops_per_s": 100.0},
              {"wall_s": 2.0, "ops_per_s": 99.0})
        text = render_comparison(ledger.compare("kernel", host="h1"))
        assert "REGRESSED" in text
        assert "regressions: wall_s" in text
        assert "rev0" in text and "rev1" in text

    def test_table_reports_clean_pass(self, ledger):
        _seed(ledger, {"wall_s": 1.0}, {"wall_s": 1.0})
        text = render_comparison(ledger.compare("kernel", host="h1"))
        assert "no regressions" in text
