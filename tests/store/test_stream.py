"""Streaming campaign artifacts: byte identity and torn-stream safety.

The format's contract: however a stream was produced — at once from a
finished result, incrementally month by month, or replayed by a resumed
run — the bytes on disk are identical, and a stream whose writing run
died (no end trailer) refuses to load as a campaign result.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.campaign import LongTermCampaign
from repro.errors import CampaignInterrupted, StorageError
from repro.io.resultstore import load_campaign, save_campaign
from repro.store import ArtifactStore
from repro.store.stream import (
    CampaignStreamWriter,
    is_stream_header,
    load_campaign_stream_doc,
    write_campaign_stream,
)
from repro.telemetry import reset_telemetry

from tests.exec.conftest import assert_campaigns_identical

PARAMS = dict(device_count=3, months=4, measurements=60, temperature_walk_k=1.0)
SEED = 5


def make_campaign(max_workers: int = 1, **overrides) -> LongTermCampaign:
    params = dict(PARAMS)
    params.update(overrides)
    return LongTermCampaign(max_workers=max_workers, random_state=SEED, **params)


def read_bytes(path) -> bytes:
    with open(path, "rb") as handle:
        return handle.read()


@pytest.fixture(scope="module")
def result():
    reset_telemetry()
    return make_campaign().run()


class TestStreamRoundtrip:
    def test_stream_loads_equal_to_legacy_artifact(self, result, tmp_path):
        legacy = tmp_path / "campaign.json"
        streamed = tmp_path / "campaign.stream.json"
        save_campaign(result, str(legacy))
        write_campaign_stream(result, str(streamed))
        assert_campaigns_identical(load_campaign(str(legacy)), load_campaign(str(streamed)))

    def test_save_campaign_stream_flag_writes_the_stream_format(self, result, tmp_path):
        via_flag = tmp_path / "via_flag.json"
        via_writer = tmp_path / "via_writer.json"
        save_campaign(result, str(via_flag), stream=True)
        write_campaign_stream(result, str(via_writer))
        assert read_bytes(via_flag) == read_bytes(via_writer)
        with open(via_flag, "r", encoding="utf-8") as fh:
            assert is_stream_header(json.loads(fh.readline()))

    def test_incremental_bytes_match_at_once_bytes(self, result, tmp_path):
        at_once = tmp_path / "at_once.json"
        incremental = tmp_path / "incremental.json"
        write_campaign_stream(result, str(at_once))
        writer = CampaignStreamWriter(str(incremental))
        writer.begin(
            result.profile_name,
            result.months,
            result.measurements,
            result.board_ids,
            result.references,
        )
        for snapshot in result.snapshots:
            writer.append_snapshot(snapshot)
        writer.finalize()
        assert read_bytes(incremental) == read_bytes(at_once)

    def test_folded_doc_matches_legacy_document(self, result, tmp_path):
        legacy = tmp_path / "campaign.json"
        streamed = tmp_path / "campaign.stream.json"
        save_campaign(result, str(legacy))
        write_campaign_stream(result, str(streamed))
        with open(legacy, "r", encoding="utf-8") as fh:
            assert load_campaign_stream_doc(str(streamed)) == json.load(fh)


class TestLiveStreaming:
    def test_campaign_run_streams_byte_identical_to_at_once(self, tmp_path):
        live = tmp_path / "live.json"
        writer = CampaignStreamWriter(str(live))
        result = make_campaign().run(
            checkpoint_dir=str(tmp_path / "ckpt"), stream=writer
        )
        at_once = tmp_path / "at_once.json"
        write_campaign_stream(result, str(at_once))
        assert read_bytes(live) == read_bytes(at_once)

    def test_aborted_run_leaves_a_torn_stream(self, tmp_path):
        live = tmp_path / "live.json"
        with pytest.raises(CampaignInterrupted):
            make_campaign().run(
                checkpoint_dir=str(tmp_path / "ckpt"),
                abort_after_month=2,
                stream=CampaignStreamWriter(str(live)),
            )
        with pytest.raises(StorageError, match="torn stream"):
            load_campaign(str(live))

    def test_resumed_stream_bytes_match_straight_run(self, tmp_path):
        straight = tmp_path / "straight.json"
        make_campaign().run(
            checkpoint_dir=str(tmp_path / "ckpt-straight"),
            stream=CampaignStreamWriter(str(straight)),
        )
        live = tmp_path / "live.json"
        ckpt = tmp_path / "ckpt"
        reset_telemetry()
        with pytest.raises(CampaignInterrupted):
            make_campaign().run(
                checkpoint_dir=str(ckpt),
                abort_after_month=2,
                stream=CampaignStreamWriter(str(live)),
            )
        reset_telemetry()
        LongTermCampaign.resume(str(ckpt), stream=CampaignStreamWriter(str(live)))
        assert read_bytes(live) == read_bytes(straight)


class TestTornAndMalformedStreams:
    def _streamed(self, result, tmp_path):
        path = tmp_path / "campaign.stream.json"
        write_campaign_stream(result, str(path))
        return path

    def test_missing_end_trailer_refuses_to_load(self, result, tmp_path):
        path = self._streamed(result, tmp_path)
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"".join(lines[:-1]))
        with pytest.raises(StorageError, match="no end trailer"):
            load_campaign_stream_doc(str(path))

    def test_snapshot_count_mismatch_rejected(self, result, tmp_path):
        path = self._streamed(result, tmp_path)
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"".join(lines[:-2] + lines[-1:]))  # drop one snapshot
        with pytest.raises(StorageError, match="promises"):
            load_campaign_stream_doc(str(path))

    def test_empty_stream_rejected(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_bytes(b"")
        with pytest.raises(StorageError, match="empty campaign stream"):
            load_campaign_stream_doc(str(path))

    def test_non_header_first_record_rejected(self, tmp_path):
        path = tmp_path / "odd.json"
        path.write_text(json.dumps({"kind": "snapshot"}) + "\n")
        with pytest.raises(StorageError, match="not a stream header"):
            load_campaign_stream_doc(str(path))

    def test_writer_misuse_raises(self, result, tmp_path):
        writer = CampaignStreamWriter(str(tmp_path / "s.json"))
        with pytest.raises(StorageError, match="before begin"):
            writer.append_snapshot(result.snapshots[0])
        with pytest.raises(StorageError, match="before begin"):
            writer.finalize()
        writer.begin(
            result.profile_name,
            result.months,
            result.measurements,
            result.board_ids,
            result.references,
        )
        writer.finalize()
        with pytest.raises(StorageError, match="already finalized"):
            writer.finalize()
        with pytest.raises(StorageError, match="after finalize"):
            writer.append_snapshot(result.snapshots[0])


class TestInspection:
    def test_inspect_classifies_stream_artifacts(self, result, tmp_path):
        write_campaign_stream(result, str(tmp_path / "campaign.stream.json"))
        report = ArtifactStore(str(tmp_path)).integrity_report()
        entry = {e["name"]: e for e in report["files"]}["campaign.stream.json"]
        assert entry["kind"] == "campaign-stream"
        assert entry["status"] == "ok"
        assert entry["detail"] == f"{len(result.snapshots)} snapshots, finalized"

    def test_inspect_flags_torn_streams(self, result, tmp_path):
        path = tmp_path / "campaign.stream.json"
        write_campaign_stream(result, str(path))
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"".join(lines[:-1]))
        report = ArtifactStore(str(tmp_path)).integrity_report()
        entry = {e["name"]: e for e in report["files"]}["campaign.stream.json"]
        assert entry["status"] == "error"
        assert "torn stream" in entry["detail"]
        assert report["ok"] is False
