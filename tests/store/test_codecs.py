"""Tests for the store codec layer."""

import json

import numpy as np
import pytest

from repro.errors import StorageError
from repro.io.bitutil import bits_to_hex, random_bits
from repro.store.codecs import (
    JsonCodec,
    JsonLinesCodec,
    decode_float64_array,
    encode_float64_array,
    pack_bits_hex,
    restore_rng_state,
    rng_state_doc,
    unpack_bits_hex,
)


class TestJsonCodec:
    def test_compact_bytes_match_json_dumps(self):
        doc = {"b": 1, "a": [1, 2, {"c": None}]}
        assert JsonCodec().encode(doc) == json.dumps(doc).encode()

    def test_indent_and_sort_options_pin_the_bytes(self):
        doc = {"b": 1, "a": 2}
        assert (
            JsonCodec(indent=2, sort_keys=True).encode(doc)
            == json.dumps(doc, indent=2, sort_keys=True).encode()
        )

    def test_roundtrip(self):
        doc = {"months": 24, "refs": {"0": "ab"}}
        codec = JsonCodec()
        assert codec.decode(codec.encode(doc)) == doc

    def test_unserialisable_raises(self):
        with pytest.raises(StorageError, match="serialisable"):
            JsonCodec().encode({"bad": object()})

    def test_invalid_bytes_raise(self):
        with pytest.raises(StorageError, match="invalid JSON"):
            JsonCodec().decode(b"{nope")


class TestJsonLinesCodec:
    def test_encode_line_has_no_newline(self):
        line = JsonLinesCodec().encode_line({"a": 1})
        assert "\n" not in line
        assert json.loads(line) == {"a": 1}

    def test_stream_roundtrip(self):
        codec = JsonLinesCodec(sort_keys=True)
        docs = [{"b": i, "a": -i} for i in range(3)]
        data = codec.encode(docs)
        assert list(codec.decode_lines(data)) == docs

    def test_bad_line_reports_source_and_number(self):
        codec = JsonLinesCodec()
        with pytest.raises(StorageError, match=r"alerts\.jsonl:2"):
            list(codec.decode_lines(b'{"ok": 1}\n{broken\n', source="alerts.jsonl"))

    def test_blank_lines_skipped(self):
        codec = JsonLinesCodec()
        assert list(codec.decode_lines(b'\n{"a": 1}\n\n')) == [{"a": 1}]


class TestBitPacking:
    def test_matches_io_bitutil_hex(self):
        bits = random_bits(256, random_state=3)
        assert pack_bits_hex(bits) == bits_to_hex(bits)

    def test_roundtrip_exact(self):
        bits = random_bits(1024, random_state=9)
        hexed = pack_bits_hex(bits)
        restored = unpack_bits_hex(hexed, bits.size)
        assert restored.dtype == np.uint8
        np.testing.assert_array_equal(restored, bits)

    def test_rejects_non_byte_aligned(self):
        with pytest.raises(StorageError, match="multiple of 8"):
            pack_bits_hex(np.ones(7, dtype=np.uint8))

    def test_rejects_non_binary(self):
        with pytest.raises(StorageError, match="0 and 1"):
            pack_bits_hex(np.full(8, 2, dtype=np.uint8))

    def test_unpack_rejects_overlong_request(self):
        with pytest.raises(StorageError, match="requested"):
            unpack_bits_hex("ff", 16)

    def test_unpack_rejects_bad_hex(self):
        with pytest.raises(StorageError, match="hex"):
            unpack_bits_hex("zz", 8)


class TestFloat64Codec:
    def test_roundtrip_is_exact_bitwise(self):
        values = np.array(
            [0.1, -0.0, np.pi, 1e-308, np.nan, np.inf, -np.inf], dtype=np.float64
        )
        restored = decode_float64_array(encode_float64_array(values))
        assert restored.dtype == np.dtype("<f8")
        # Bitwise equality, which also pins NaN payloads and -0.0.
        np.testing.assert_array_equal(
            values.view(np.uint64), restored.view(np.uint64)
        )

    def test_rejects_2d(self):
        with pytest.raises(StorageError, match="1-D"):
            encode_float64_array(np.zeros((2, 2)))

    def test_rejects_bad_base64(self):
        with pytest.raises(StorageError, match="base64"):
            decode_float64_array("!not base64!")

    def test_rejects_truncated_payload(self):
        import base64

        payload = base64.b64encode(b"1234567").decode()  # 7 bytes, not /8
        with pytest.raises(StorageError, match="multiple of 8"):
            decode_float64_array(payload)


class TestRngStateCodec:
    def test_state_survives_json_roundtrip_exactly(self):
        gen = np.random.default_rng(42)
        gen.random(17)  # advance off the seed position
        doc = json.loads(json.dumps(rng_state_doc(gen)))
        expected = gen.random(8)

        clone = np.random.default_rng(0)
        restore_rng_state(clone, doc)
        np.testing.assert_array_equal(clone.random(8), expected)

    def test_malformed_state_raises(self):
        with pytest.raises(StorageError, match="RNG state"):
            restore_rng_state(np.random.default_rng(0), {"bit_generator": "PCG64"})
