"""Tests for versioned schemas and the migration dispatch table."""

import pytest

from repro.errors import StorageError
from repro.store.schema import (
    _MIGRATIONS,
    SCHEMAS,
    current_version,
    document_version,
    migrate,
    register_migration,
    schema_field,
)


class TestVersionDetection:
    def test_known_kinds_have_field_and_version(self):
        for kind in ("campaign", "manifest", "checkpoint", "trace"):
            assert isinstance(schema_field(kind), str)
            assert current_version(kind) >= 1

    def test_unknown_kind_raises(self):
        with pytest.raises(StorageError, match="unknown document kind"):
            schema_field("telegram")
        with pytest.raises(StorageError, match="unknown document kind"):
            current_version("telegram")

    def test_missing_field_is_version_zero(self):
        assert document_version("campaign", {"months": 3}) == 0

    def test_non_integer_version_rejected(self):
        with pytest.raises(StorageError, match="non-integer"):
            document_version("campaign", {"format_version": "1"})

    def test_bool_version_rejected(self):
        with pytest.raises(StorageError, match="non-integer"):
            document_version("campaign", {"format_version": True})


class TestMigrate:
    def test_current_version_passes_through_uncopied(self):
        doc = {"manifest_version": current_version("manifest")}
        assert migrate("manifest", doc) is doc

    def test_newer_than_library_raises(self):
        doc = {"manifest_version": current_version("manifest") + 1}
        with pytest.raises(StorageError, match="upgrade repro"):
            migrate("manifest", doc)

    def test_old_document_without_path_raises(self):
        # No trace v0 migration is registered: traces carried their
        # version field from day one.
        with pytest.raises(StorageError, match="no migration registered"):
            migrate("trace", {"spans": []})

    def test_non_dict_rejected(self):
        with pytest.raises(StorageError, match="JSON object"):
            migrate("campaign", ["not", "a", "dict"])

    def test_duplicate_registration_rejected(self):
        with pytest.raises(StorageError, match="duplicate migration"):
            register_migration("campaign", 0)(lambda doc: doc)

    def test_registration_for_unknown_kind_rejected(self):
        with pytest.raises(StorageError, match="unknown document kind"):
            register_migration("telegram", 0)

    def test_migration_must_advance_exactly_one_version(self):
        @register_migration("trace", 0)
        def bad(doc):
            doc["version"] = 5  # skips ahead
            return doc

        try:
            with pytest.raises(StorageError, match="expected v1"):
                migrate("trace", {"spans": []})
        finally:
            _MIGRATIONS.pop(("trace", 0))


class TestCampaignV0Migration:
    def v0_doc(self):
        return {
            "profile_name": "atmega32u4",
            "months": 1,
            "measurements": 10,
            "board_ids": [0, 1],
            "references": {"0": "ab" * 4, "1": "cd" * 4},
            "snapshots": [],
        }

    def test_stamps_version_and_infers_reference_bits(self):
        migrated = migrate("campaign", self.v0_doc())
        assert migrated["format_version"] == 1
        assert migrated["reference_bits"] == {"0": 32, "1": 32}

    def test_original_document_not_mutated(self):
        doc = self.v0_doc()
        migrate("campaign", doc)
        assert "format_version" not in doc
        assert "reference_bits" not in doc

    def test_v0_without_references_rejected(self):
        with pytest.raises(StorageError, match="references"):
            migrate("campaign", {"months": 1})

    def test_schemas_table_is_the_dispatch_source(self):
        # The CLI's store inspect recognises kinds by these fields; a
        # rename would silently break classification.
        assert SCHEMAS["campaign"]["field"] == "format_version"
        assert SCHEMAS["checkpoint"]["field"] == "checkpoint_version"
        assert SCHEMAS["campaign-stream"]["field"] == "stream_version"


class TestManifestV0Migration:
    def test_stamps_version_and_defaults_descriptors(self):
        migrated = migrate(
            "manifest", {"run_id": "abc", "created_at": "2020-01-01T00:00:00Z"}
        )
        assert migrated["manifest_version"] == current_version("manifest")
        for descriptor in ("package_version", "python_version", "platform"):
            assert migrated[descriptor] == "unknown"

    def test_present_descriptors_kept(self):
        migrated = migrate(
            "manifest",
            {"run_id": "abc", "created_at": "t", "platform": "Linux-x86_64"},
        )
        assert migrated["platform"] == "Linux-x86_64"
        assert migrated["package_version"] == "unknown"

    def test_missing_run_identity_refused(self):
        with pytest.raises(StorageError, match="pre-versioning manifest lacks"):
            migrate("manifest", {"run_id": "abc"})
        with pytest.raises(StorageError, match="pre-versioning manifest lacks"):
            migrate("manifest", {"created_at": "t"})


class TestCheckpointV1Migration:
    def test_v1_becomes_current_keyframe(self):
        migrated = migrate("checkpoint", {"checkpoint_version": 1, "config": {}})
        assert migrated["checkpoint_version"] == current_version("checkpoint")
        assert migrated["kind"] == "keyframe"


class TestCheckpointV2Migration:
    def test_v2_keyframe_gains_null_population(self):
        migrated = migrate(
            "checkpoint",
            {"checkpoint_version": 2, "kind": "keyframe", "config": {"months": 3}},
        )
        assert migrated["checkpoint_version"] == current_version("checkpoint")
        assert migrated["config"] == {"months": 3, "population": None}

    def test_v2_delta_only_gains_the_stamp(self):
        migrated = migrate(
            "checkpoint", {"checkpoint_version": 2, "kind": "delta"}
        )
        assert migrated["checkpoint_version"] == current_version("checkpoint")
        assert "config" not in migrated

    def test_v3_population_config_passes_through(self):
        doc = {
            "checkpoint_version": 3,
            "kind": "keyframe",
            "config": {"population": {"name": "mix", "members": []}},
        }
        migrated = migrate("checkpoint", doc)
        assert migrated["config"] == doc["config"]
        assert migrated["checkpoint_version"] == current_version("checkpoint")


class TestCheckpointV3Migration:
    def test_v3_gains_campaign_scope(self):
        migrated = migrate(
            "checkpoint", {"checkpoint_version": 3, "kind": "keyframe"}
        )
        assert migrated["checkpoint_version"] == current_version("checkpoint")
        assert migrated["scope"] == "campaign"

    def test_v4_shard_scope_passes_through(self):
        doc = {
            "checkpoint_version": 4,
            "kind": "keyframe",
            "scope": "shard",
        }
        assert migrate("checkpoint", doc) is doc
