"""Kernel-swap resume: checkpoints are kernel-neutral.

The kernel is an execution knob of the *process*, not part of the
stored study (``_checkpoint_config`` never records it).  So a campaign
checkpointed under one kernel must resume under the other — in either
direction, at any worker count — and continue **byte-identically**:
the same CampaignResult, the same saved artifact, the same re-written
checkpoint files as a run that never switched (or never stopped).
"""

from __future__ import annotations

import pytest

from repro.analysis.campaign import LongTermCampaign
from repro.errors import CampaignInterrupted
from repro.io.resultstore import save_campaign
from repro.telemetry import get_metrics, reset_telemetry

from tests.exec.conftest import assert_campaigns_identical, worker_counts

#: Small statistical campaign with the temperature walk exercised.
SMALL = dict(device_count=4, months=3, measurements=120, temperature_walk_k=1.5)
SEED = 7

SWAPS = [("scalar", "vector"), ("vector", "scalar")]
SWAP_IDS = ["scalar-to-vector", "vector-to-scalar"]


def make_campaign(kernel: str, max_workers: int = 1) -> LongTermCampaign:
    return LongTermCampaign(
        max_workers=max_workers, random_state=SEED, kernel=kernel, **SMALL
    )


def interrupted_checkpoints(kernel: str, checkpoint_dir: str, month: int = 1) -> None:
    reset_telemetry()
    with pytest.raises(CampaignInterrupted):
        make_campaign(kernel).run(
            checkpoint_dir=checkpoint_dir, abort_after_month=month
        )


class TestKernelSwapResume:
    @pytest.mark.parametrize("first,second", SWAPS, ids=SWAP_IDS)
    def test_swapped_resume_matches_uninterrupted_run(self, tmp_path, first, second):
        reset_telemetry()
        baseline = make_campaign("scalar").run()
        baseline_metrics = get_metrics().snapshot()

        checkpoint_dir = str(tmp_path / "ckpt")
        interrupted_checkpoints(first, checkpoint_dir)
        reset_telemetry()
        resumed = LongTermCampaign.resume(checkpoint_dir, kernel=second)
        assert_campaigns_identical(baseline, resumed)
        assert get_metrics().snapshot() == baseline_metrics

    @pytest.mark.parametrize("first,second", SWAPS, ids=SWAP_IDS)
    def test_swapped_resume_artifact_byte_identical(self, tmp_path, first, second):
        reset_telemetry()
        straight = tmp_path / "straight.json"
        save_campaign(make_campaign("scalar").run(), str(straight))

        checkpoint_dir = str(tmp_path / "ckpt")
        interrupted_checkpoints(first, checkpoint_dir)
        reset_telemetry()
        resumed = tmp_path / "resumed.json"
        save_campaign(
            LongTermCampaign.resume(checkpoint_dir, kernel=second), str(resumed)
        )
        assert straight.read_bytes() == resumed.read_bytes()

    @pytest.mark.parametrize("first,second", SWAPS, ids=SWAP_IDS)
    def test_swapped_resume_rewrites_identical_checkpoints(
        self, tmp_path, first, second
    ):
        """The continued chain matches an uninterrupted *scalar* chain."""
        straight_dir = tmp_path / "straight"
        reset_telemetry()
        make_campaign("scalar").run(checkpoint_dir=str(straight_dir))

        swapped_dir = tmp_path / "swapped"
        interrupted_checkpoints(first, str(swapped_dir))
        reset_telemetry()
        LongTermCampaign.resume(str(swapped_dir), kernel=second)

        straight = {p.name: p.read_bytes() for p in sorted(straight_dir.glob("*.json"))}
        swapped = {p.name: p.read_bytes() for p in sorted(swapped_dir.glob("*.json"))}
        assert straight, "straight run produced no checkpoints"
        assert straight == swapped

    def test_swap_to_vector_under_sharded_executor(self, tmp_path):
        """Scalar checkpoint, vector resume at every worker count."""
        reset_telemetry()
        baseline = make_campaign("scalar").run()
        for workers in worker_counts():
            checkpoint_dir = str(tmp_path / f"ckpt-w{workers}")
            interrupted_checkpoints("scalar", checkpoint_dir)
            reset_telemetry()
            resumed = LongTermCampaign.resume(
                checkpoint_dir, kernel="vector", max_workers=workers
            )
            assert_campaigns_identical(baseline, resumed)

    def test_swap_after_late_abort(self, tmp_path):
        """Only the final month is left; the vector kernel finishes it."""
        reset_telemetry()
        baseline = make_campaign("scalar").run()
        checkpoint_dir = str(tmp_path / "ckpt")
        interrupted_checkpoints("scalar", checkpoint_dir, month=SMALL["months"] - 1)
        reset_telemetry()
        resumed = LongTermCampaign.resume(checkpoint_dir, kernel="vector")
        assert_campaigns_identical(baseline, resumed)
