"""Tests for the atomic write primitives, including crash injection."""

import os

import pytest

from repro.errors import StorageError
from repro.store.atomic import (
    TMP_SUFFIX,
    append_line,
    append_lines,
    atomic_write_bytes,
    atomic_write_text,
    find_stray_tmp_files,
    truncate_file,
)


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        path = str(tmp_path / "doc.json")
        atomic_write_bytes(path, b"payload")
        with open(path, "rb") as handle:
            assert handle.read() == b"payload"

    def test_replaces_existing(self, tmp_path):
        path = str(tmp_path / "doc.json")
        atomic_write_bytes(path, b"old")
        atomic_write_bytes(path, b"new")
        with open(path, "rb") as handle:
            assert handle.read() == b"new"

    def test_no_tmp_left_after_success(self, tmp_path):
        path = str(tmp_path / "doc.json")
        atomic_write_text(path, "hello")
        assert find_stray_tmp_files(str(tmp_path)) == []

    def test_text_is_utf8(self, tmp_path):
        path = str(tmp_path / "doc.txt")
        atomic_write_text(path, "héllo")
        with open(path, "rb") as handle:
            assert handle.read() == "héllo".encode("utf-8")


class TestCrashInjection:
    """Kill the writer between staging and rename; the old file survives."""

    def test_previous_artifact_intact_on_rename_failure(self, tmp_path, monkeypatch):
        path = str(tmp_path / "doc.json")
        atomic_write_bytes(path, b"previous version")

        def exploding_replace(src, dst):
            raise OSError("injected crash between tmp write and rename")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(StorageError, match="atomic write"):
            atomic_write_bytes(path, b"half-finished new version")
        monkeypatch.undo()

        with open(path, "rb") as handle:
            assert handle.read() == b"previous version"

    def test_stray_tmp_left_as_evidence(self, tmp_path, monkeypatch):
        path = str(tmp_path / "doc.json")

        def exploding_replace(src, dst):
            raise OSError("injected crash")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(StorageError):
            atomic_write_bytes(path, b"never lands")
        monkeypatch.undo()

        strays = find_stray_tmp_files(str(tmp_path))
        assert strays == [path + TMP_SUFFIX]
        # The staged payload is fully present in the stray.
        with open(strays[0], "rb") as handle:
            assert handle.read() == b"never lands"

    def test_open_failure_is_storage_error(self, tmp_path):
        missing_dir = str(tmp_path / "nope" / "doc.json")
        with pytest.raises(StorageError):
            atomic_write_bytes(missing_dir, b"data")


class TestAppend:
    def test_append_line_adds_newline(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        append_line(path, '{"a": 1}')
        append_line(path, '{"a": 2}')
        with open(path) as handle:
            assert handle.read() == '{"a": 1}\n{"a": 2}\n'

    def test_append_line_rejects_embedded_newline(self, tmp_path):
        with pytest.raises(StorageError, match="newline"):
            append_line(str(tmp_path / "log.jsonl"), "two\nlines")

    def test_append_lines_batches(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        append_lines(path, ["one", "two", "three"])
        with open(path) as handle:
            assert handle.read() == "one\ntwo\nthree\n"

    def test_append_lines_validates_before_writing(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        with pytest.raises(StorageError, match="newline"):
            append_lines(path, ["fine", "bad\nline"])
        assert not os.path.exists(path)


class TestTruncateAndStrays:
    def test_truncate_creates_empty(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        truncate_file(path)
        assert os.path.getsize(path) == 0

    def test_truncate_empties_existing(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        append_line(path, "data")
        truncate_file(path)
        assert os.path.getsize(path) == 0

    def test_find_strays_recursive_and_sorted(self, tmp_path):
        (tmp_path / "sub").mkdir()
        (tmp_path / "b.json.tmp").write_bytes(b"")
        (tmp_path / "sub" / "a.json.tmp").write_bytes(b"")
        (tmp_path / "real.json").write_bytes(b"{}")
        strays = find_stray_tmp_files(str(tmp_path))
        assert strays == sorted(strays)
        assert {os.path.basename(s) for s in strays} == {"a.json.tmp", "b.json.tmp"}
