"""Kill-and-resume equivalence: the checkpoint layer's headline gate.

Every test here demands *byte* identity, not statistical closeness:
a campaign interrupted after any month and resumed — in the serial
path or under the sharded executor at any worker count — must produce
the same CampaignResult, the same saved artifact, the same alert log
and the same telemetry snapshot as the run that was never interrupted.
"""

from __future__ import annotations

import pytest

from repro.analysis.campaign import LongTermCampaign
from repro.errors import CampaignInterrupted, ConfigurationError, StorageError
from repro.io.resultstore import save_campaign
from repro.monitor.defaults import default_ruleset
from repro.monitor.hub import MonitorHub
from repro.store.artifact import ArtifactStore
from repro.telemetry import get_metrics, reset_telemetry

from tests.exec.conftest import assert_campaigns_identical, worker_counts

#: Small statistical campaign with the temperature walk exercised.
SMALL = dict(device_count=4, months=3, measurements=120, temperature_walk_k=1.5)
SEED = 7

#: The accelerated fleet that deterministically trips one alert.
MONITORED = dict(device_count=16, months=6, measurements=150, aging_acceleration=14.0)
MONITOR_SEED = 0


def make_campaign(max_workers: int = 1, **overrides) -> LongTermCampaign:
    params = dict(SMALL)
    params.update(overrides)
    return LongTermCampaign(max_workers=max_workers, random_state=SEED, **params)


def read_bytes(path: str) -> bytes:
    with open(path, "rb") as handle:
        return handle.read()


class TestCheckpointedRun:
    def test_fresh_checkpointed_run_matches_plain_run(self, tmp_path):
        baseline = make_campaign().run()
        baseline_metrics = get_metrics().snapshot()
        reset_telemetry()
        checkpointed = make_campaign().run(checkpoint_dir=str(tmp_path / "ckpt"))
        assert_campaigns_identical(baseline, checkpointed)
        assert get_metrics().snapshot() == baseline_metrics

    def test_writes_one_checkpoint_per_snapshot(self, tmp_path):
        checkpoint_dir = tmp_path / "ckpt"
        make_campaign().run(checkpoint_dir=str(checkpoint_dir))
        names = sorted(p.name for p in checkpoint_dir.glob("month-*.json"))
        assert names == [f"month-{m:04d}.json" for m in range(SMALL["months"] + 1)]

    def test_fresh_run_clears_stale_checkpoints(self, tmp_path):
        checkpoint_dir = tmp_path / "ckpt"
        make_campaign(months=5).run(checkpoint_dir=str(checkpoint_dir))
        reset_telemetry()
        make_campaign().run(checkpoint_dir=str(checkpoint_dir))
        months = sorted(int(p.stem[-4:]) for p in checkpoint_dir.glob("month-*.json"))
        assert months == list(range(SMALL["months"] + 1))

    def test_abort_raises_campaign_interrupted(self, tmp_path):
        checkpoint_dir = str(tmp_path / "ckpt")
        with pytest.raises(CampaignInterrupted) as excinfo:
            make_campaign().run(checkpoint_dir=checkpoint_dir, abort_after_month=1)
        assert excinfo.value.month == 1
        assert excinfo.value.checkpoint_dir == checkpoint_dir
        # Months 0 and 1 were checkpointed before the interrupt fired.
        assert (tmp_path / "ckpt" / "month-0001.json").exists()
        assert not (tmp_path / "ckpt" / "month-0002.json").exists()

    def test_abort_requires_checkpoint_dir(self):
        with pytest.raises(ConfigurationError, match="checkpoint_dir"):
            make_campaign().run(abort_after_month=1)

    def test_checkpoint_dir_incompatible_with_prebuilt_chips(self):
        from repro.sram.chip import SRAMChip

        chips = [SRAMChip(i, random_state=1) for i in range(SMALL["device_count"])]
        with pytest.raises(ConfigurationError):
            make_campaign().run(chips=chips, checkpoint_dir="/tmp/nope")


class TestKillAndResume:
    def test_resume_matches_uninterrupted_at_every_worker_count(self, tmp_path):
        baseline = make_campaign().run()
        baseline_metrics = get_metrics().snapshot()
        for workers in worker_counts():
            reset_telemetry()
            checkpoint_dir = str(tmp_path / f"ckpt-w{workers}")
            with pytest.raises(CampaignInterrupted):
                make_campaign(max_workers=workers).run(
                    checkpoint_dir=checkpoint_dir, abort_after_month=1
                )
            reset_telemetry()
            resumed = LongTermCampaign.resume(checkpoint_dir, max_workers=workers)
            assert_campaigns_identical(baseline, resumed)
            assert get_metrics().snapshot() == baseline_metrics, f"workers={workers}"

    def test_saved_artifacts_byte_identical_after_resume(self, tmp_path):
        baseline = make_campaign().run()
        straight = str(tmp_path / "straight.json")
        save_campaign(baseline, straight)

        reset_telemetry()
        checkpoint_dir = str(tmp_path / "ckpt")
        with pytest.raises(CampaignInterrupted):
            make_campaign().run(checkpoint_dir=checkpoint_dir, abort_after_month=0)
        reset_telemetry()
        resumed_path = str(tmp_path / "resumed.json")
        save_campaign(LongTermCampaign.resume(checkpoint_dir), resumed_path)
        assert read_bytes(straight) == read_bytes(resumed_path)

    def test_checkpoint_files_byte_identical_across_worker_counts(self, tmp_path):
        reference = None
        for workers in worker_counts():
            reset_telemetry()
            checkpoint_dir = tmp_path / f"ckpt-w{workers}"
            make_campaign(max_workers=workers).run(checkpoint_dir=str(checkpoint_dir))
            contents = {
                p.name: p.read_bytes()
                for p in sorted(checkpoint_dir.glob("month-*.json"))
            }
            assert contents, "run produced no checkpoints"
            if reference is None:
                reference = contents
            else:
                assert contents == reference, f"workers={workers}"

    def test_resumed_checkpoints_byte_identical_to_straight_run(self, tmp_path):
        straight_dir = tmp_path / "straight"
        make_campaign().run(checkpoint_dir=str(straight_dir))
        reset_telemetry()
        resumed_dir = tmp_path / "resumed"
        with pytest.raises(CampaignInterrupted):
            make_campaign().run(checkpoint_dir=str(resumed_dir), abort_after_month=1)
        reset_telemetry()
        LongTermCampaign.resume(str(resumed_dir))
        straight = {p.name: p.read_bytes() for p in sorted(straight_dir.glob("*.json"))}
        resumed = {p.name: p.read_bytes() for p in sorted(resumed_dir.glob("*.json"))}
        assert straight == resumed

    def test_resume_falls_back_past_truncated_checkpoint(self, tmp_path):
        """A kill *during* the checkpoint write resumes one month back."""
        baseline = make_campaign().run()
        reset_telemetry()
        checkpoint_dir = str(tmp_path / "ckpt")
        with pytest.raises(CampaignInterrupted):
            make_campaign().run(checkpoint_dir=checkpoint_dir, abort_after_month=2)
        store = ArtifactStore(checkpoint_dir)
        torn = store.read_bytes("month-0002.json")[:128]
        with open(store.path("month-0002.json"), "wb") as handle:
            handle.write(torn)

        reset_telemetry()
        resumed = LongTermCampaign.resume(checkpoint_dir)
        assert_campaigns_identical(baseline, resumed)

    def test_resume_with_no_usable_checkpoint_raises(self, tmp_path):
        checkpoint_dir = tmp_path / "ckpt"
        checkpoint_dir.mkdir()
        (checkpoint_dir / "month-0000.json").write_text("{torn")
        with pytest.raises(StorageError, match="no usable checkpoint"):
            LongTermCampaign.resume(str(checkpoint_dir))

    def test_resume_missing_dir_raises(self, tmp_path):
        with pytest.raises(StorageError):
            LongTermCampaign.resume(str(tmp_path / "never-created"))


class TestMonitoredResume:
    def _campaign(self, max_workers: int = 1) -> LongTermCampaign:
        return LongTermCampaign(
            max_workers=max_workers, random_state=MONITOR_SEED, **MONITORED
        )

    def test_alert_log_and_artifact_byte_identical(self, tmp_path):
        """Serial kill at month 2, resume under the sharded executor."""
        straight_log = str(tmp_path / "straight.alerts.jsonl")
        hub = MonitorHub(default_ruleset(), alert_log=straight_log)
        result = self._campaign().run(monitor=hub)
        assert hub.alert_count > 0, "scenario must actually alert"
        straight_metrics = get_metrics().snapshot()
        straight_artifact = str(tmp_path / "straight.json")
        save_campaign(result, straight_artifact, alerts=hub.alerts)

        reset_telemetry()
        resumed_log = str(tmp_path / "resumed.alerts.jsonl")
        checkpoint_dir = str(tmp_path / "ckpt")
        hub = MonitorHub(default_ruleset(), alert_log=resumed_log)
        with pytest.raises(CampaignInterrupted):
            self._campaign().run(
                monitor=hub, checkpoint_dir=checkpoint_dir, abort_after_month=2
            )

        reset_telemetry()
        hub = MonitorHub(default_ruleset(), alert_log=resumed_log)
        resumed = LongTermCampaign.resume(
            checkpoint_dir, monitor=hub, max_workers=2
        )
        resumed_artifact = str(tmp_path / "resumed.json")
        save_campaign(resumed, resumed_artifact, alerts=hub.alerts)

        assert read_bytes(resumed_log) == read_bytes(straight_log)
        assert read_bytes(resumed_artifact) == read_bytes(straight_artifact)
        assert get_metrics().snapshot() == straight_metrics


class TestAssessmentResume:
    def test_assessment_api_roundtrip(self, tmp_path):
        from repro.core.assessment import LongTermAssessment
        from repro.core.config import StudyConfig

        config = StudyConfig(
            device_count=3, months=2, measurements=80, seed=SEED
        )
        baseline = LongTermAssessment(config).run()
        reset_telemetry()
        checkpoint_dir = str(tmp_path / "ckpt")
        with pytest.raises(CampaignInterrupted):
            LongTermAssessment(config).run(
                checkpoint_dir=checkpoint_dir, abort_after_month=0
            )
        reset_telemetry()
        resumed = LongTermAssessment(config).run(
            checkpoint_dir=checkpoint_dir, resume=True
        )
        assert_campaigns_identical(baseline.campaign, resumed.campaign)
        assert resumed.table.summaries.keys() == baseline.table.summaries.keys()

    def test_resume_without_checkpoint_dir_rejected(self):
        from repro.core.assessment import LongTermAssessment
        from repro.core.config import StudyConfig

        with pytest.raises(ConfigurationError, match="checkpoint_dir"):
            LongTermAssessment(StudyConfig(device_count=2, months=1)).run(resume=True)
