"""Shared fixtures for the artifact-store suite."""

from __future__ import annotations

import pytest

from repro.telemetry import reset_telemetry


@pytest.fixture(autouse=True)
def clean_registry():
    """Isolate every test's metrics so counter assertions are exact."""
    reset_telemetry()
    yield
    reset_telemetry()
