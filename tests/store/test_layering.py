"""Architectural gates: write funnelling and import layering.

Two invariants the refactor promised:

* no module outside ``repro.store`` opens an artifact path for
  writing — every persisted byte goes through the store's atomic
  protocol;
* ``repro.store`` sits below the rest of the library: importing it
  must not drag ``repro.io``/``analysis``/``monitor``/``telemetry`` in.
"""

import ast
import os
import re

import repro

SRC_ROOT = os.path.dirname(os.path.abspath(repro.__file__))

#: open() with a write/append mode, however the arguments are spelled.
WRITE_OPEN_RE = re.compile(r"""\bopen\([^)]*["'](?:w|a|wb|ab|w\+|a\+|r\+)["']""")


def test_only_the_store_opens_files_for_writing():
    offenders = []
    for dirpath, _dirs, files in os.walk(SRC_ROOT):
        for filename in files:
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            relative = os.path.relpath(path, SRC_ROOT)
            if relative.startswith("store" + os.sep):
                continue
            with open(path, encoding="utf-8") as handle:
                for line_number, line in enumerate(handle, start=1):
                    if WRITE_OPEN_RE.search(line):
                        offenders.append(f"{relative}:{line_number}: {line.strip()}")
    assert not offenders, (
        "artifact writes must go through repro.store.ArtifactStore:\n"
        + "\n".join(offenders)
    )


UPPER_LAYERS = (
    "repro.io",
    "repro.analysis",
    "repro.monitor",
    "repro.telemetry",
    "repro.exec",
    "repro.sram",
    "repro.core",
)


def _module_level_imports(path):
    """Module names imported at module scope (function bodies excluded)."""
    with open(path, encoding="utf-8") as handle:
        tree = ast.parse(handle.read(), filename=path)
    names = []
    for node in tree.body:
        if isinstance(node, ast.Import):
            names.extend(alias.name for alias in node.names)
        elif isinstance(node, ast.ImportFrom) and node.module:
            names.append(node.module)
    return names


def test_store_has_no_module_level_upper_layer_imports():
    store_dir = os.path.join(SRC_ROOT, "store")
    offenders = []
    for filename in sorted(os.listdir(store_dir)):
        if not filename.endswith(".py"):
            continue
        path = os.path.join(store_dir, filename)
        for module in _module_level_imports(path):
            if module.startswith(UPPER_LAYERS):
                offenders.append(f"store/{filename} imports {module}")
    assert not offenders, (
        "repro.store must sit below the rest of the library; "
        "lazy-import inside functions instead:\n" + "\n".join(offenders)
    )
