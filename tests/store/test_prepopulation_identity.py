"""The ``population=None`` escape hatch is byte-identical to pre-refactor.

``tests/store/fixtures/prepopulation_hashes.json`` pins the artifact
bytes, checkpoint bytes and deterministic run ids of the golden
16-board study as produced *before* the population layer existed;
``fixtures/ckpt_prepopulation/`` holds the actual pre-refactor (schema
v2) checkpoint files.  A homogeneous campaign must keep reproducing
those exact bytes — across worker counts and kernels, when
checkpointing (downlevel v2 writes), and when resuming from the old
files through the v2 -> v3 migration.
"""

import glob
import hashlib
import json
import os
import shutil

import pytest

from repro.analysis.campaign import LongTermCampaign
from repro.core.config import StudyConfig
from repro.io.resultstore import save_campaign
from repro.telemetry.manifest import run_id_for_config

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
CHECKPOINT_FIXTURE = os.path.join(FIXTURES, "ckpt_prepopulation")

with open(os.path.join(FIXTURES, "prepopulation_hashes.json")) as _handle:
    GOLDEN = json.load(_handle)

#: The golden study: ``repro run`` defaults at 16 boards, 6 months,
#: 60 measurements, seed 1 (see the fixture manifest's note).
GOLDEN_KWARGS = dict(device_count=16, months=6, measurements=60, random_state=1)


def sha256_of(path: str) -> str:
    with open(path, "rb") as handle:
        return hashlib.sha256(handle.read()).hexdigest()


def artifact_sha(result, directory) -> str:
    path = os.path.join(str(directory), "artifact.json")
    save_campaign(result, path)
    return sha256_of(path)


def checkpoint_shas(directory: str):
    return {
        os.path.basename(path): sha256_of(path)
        for path in sorted(glob.glob(os.path.join(directory, "month-*.json")))
    }


class TestGoldenArtifact:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("kernel", ["scalar", "vector"])
    def test_population_none_matches_prerefactor_bytes(
        self, workers, kernel, tmp_path
    ):
        campaign = LongTermCampaign(
            max_workers=workers, kernel=kernel, **GOLDEN_KWARGS
        )
        result = campaign.run()
        assert artifact_sha(result, tmp_path) == GOLDEN["artifact_sha256"]

    def test_run_ids_unchanged(self):
        assert (
            run_id_for_config(StudyConfig()) == GOLDEN["run_id_default_config"]
        )
        assert (
            run_id_for_config(
                StudyConfig(device_count=16, months=6, measurements=60, seed=1)
            )
            == GOLDEN["run_id_16x6x60_seed1"]
        )


class TestGoldenCheckpoints:
    def test_homogeneous_checkpoints_stay_v2_bytes(self, tmp_path):
        campaign = LongTermCampaign(keyframe_every=2, **GOLDEN_KWARGS)
        result = campaign.run(checkpoint_dir=str(tmp_path))
        assert checkpoint_shas(str(tmp_path)) == GOLDEN["checkpoint_sha256"]
        assert (
            artifact_sha(result, tmp_path / "out") == GOLDEN["artifact_sha256"]
        )

    def test_fixture_files_are_schema_v2(self):
        for path in sorted(glob.glob(os.path.join(CHECKPOINT_FIXTURE, "*.json"))):
            with open(path) as handle:
                doc = json.load(handle)
            assert doc["checkpoint_version"] == 2
            assert "population" not in doc.get("config", {})

    def test_resume_from_prerefactor_checkpoint(self, tmp_path):
        """Old v2 files resume through the migration, bytes unchanged."""
        workdir = str(tmp_path / "ck")
        shutil.copytree(CHECKPOINT_FIXTURE, workdir)
        # Drop the tail so the resume actually re-simulates months 5-6
        # (month-0004 is a keyframe at keyframe_every=2).
        os.remove(os.path.join(workdir, "month-0005.json"))
        os.remove(os.path.join(workdir, "month-0006.json"))
        result = LongTermCampaign.resume(workdir)
        assert checkpoint_shas(workdir) == GOLDEN["checkpoint_sha256"]
        assert (
            artifact_sha(result, tmp_path / "out") == GOLDEN["artifact_sha256"]
        )
