"""Tests for ArtifactStore: atomic writes, hygiene, integrity reports."""

import json
import os

import pytest

from repro.errors import StorageError
from repro.store.artifact import ArtifactStore, dump_json_text


class TestLocate:
    def test_returns_store_and_member_name(self, tmp_path):
        store, name = ArtifactStore.locate(str(tmp_path / "out" / "campaign.json"))
        assert name == "campaign.json"
        assert store.root == str(tmp_path / "out")
        assert os.path.isdir(store.root)

    def test_root_path_rejected(self):
        with pytest.raises(StorageError, match="does not name a file"):
            ArtifactStore.locate(os.sep)

    def test_create_false_requires_existing_dir(self, tmp_path):
        with pytest.raises(StorageError, match="does not exist"):
            ArtifactStore(str(tmp_path / "missing"), create=False)


class TestReadWrite:
    def test_json_roundtrip_and_bytes(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        doc = {"b": 2, "a": [1, None]}
        store.write_json("doc.json", doc)
        assert store.read_json("doc.json") == doc
        assert store.read_text("doc.json") == dump_json_text(doc)

    def test_jsonl_roundtrip(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        docs = [{"i": i} for i in range(3)]
        store.write_jsonl("stream.jsonl", docs)
        assert store.read_jsonl("stream.jsonl") == docs

    def test_append_jsonl_accumulates(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.append_jsonl("log.jsonl", {"n": 1})
        store.append_jsonl_batch("log.jsonl", [{"n": 2}, {"n": 3}])
        assert store.read_jsonl("log.jsonl") == [{"n": 1}, {"n": 2}, {"n": 3}]

    def test_nested_member_creates_parents(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.write_text("sub/dir/file.txt", "deep")
        assert store.read_text("sub/dir/file.txt") == "deep"

    def test_read_missing_raises(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        with pytest.raises(StorageError, match="cannot read"):
            store.read_bytes("ghost.json")

    def test_remove_missing_is_noop(self, tmp_path):
        ArtifactStore(str(tmp_path)).remove("ghost.json")

    def test_truncate(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.append_jsonl("log.jsonl", {"n": 1})
        store.truncate("log.jsonl")
        assert store.read_bytes("log.jsonl") == b""


class TestHygiene:
    def test_entries_sorted_and_tmp_excluded(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.write_text("b.json", "{}")
        store.write_text("a.json", "{}")
        (tmp_path / "c.json.tmp").write_bytes(b"stray")
        assert store.entries() == ["a.json", "b.json"]

    def test_stray_detection_and_cleanup(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        (tmp_path / "dead.json.tmp").write_bytes(b"stray")
        assert store.stray_tmp_files() == ["dead.json.tmp"]
        assert store.clean_stray_tmp_files() == ["dead.json.tmp"]
        assert store.stray_tmp_files() == []

    def test_crash_between_stage_and_rename(self, tmp_path, monkeypatch):
        """The satellite fault-injection scenario at store level."""
        store = ArtifactStore(str(tmp_path))
        store.write_json("campaign.json", {"format_version": 1, "months": 3})

        def exploding_replace(src, dst):
            raise OSError("injected crash")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(StorageError):
            store.write_json("campaign.json", {"format_version": 1, "months": 99})
        monkeypatch.undo()

        # Previous artifact intact, stray detected, then cleaned.
        assert store.read_json("campaign.json")["months"] == 3
        assert store.stray_tmp_files() == ["campaign.json.tmp"]
        report = store.integrity_report()
        assert report["ok"] is False
        assert report["stray_tmp_files"] == ["campaign.json.tmp"]
        store.clean_stray_tmp_files()
        assert store.integrity_report()["ok"] is True


class TestClassifyAndIntegrity:
    def test_classification_conventions(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        assert store.classify("month-0007.json") == "checkpoint"
        assert store.classify("campaign.manifest.json") == "manifest"
        assert store.classify("campaign.alerts.jsonl") == "alert-log"
        assert store.classify("campaign.heartbeat.jsonl") == "heartbeat"
        assert store.classify("metrics.jsonl") == "jsonl"
        assert store.classify("metrics.prom") == "prometheus"
        assert store.classify("campaign.json") == "json"
        assert store.classify("README") == "file"

    def test_report_detects_versions(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.write_json("campaign.json", {"format_version": 1})
        store.write_json(
            "trace.json", {"format": "repro-trace", "version": 1, "spans": []}
        )
        report = store.integrity_report()
        by_name = {entry["name"]: entry for entry in report["files"]}
        assert by_name["campaign.json"]["kind"] == "campaign"
        assert by_name["campaign.json"]["version"] == 1
        assert by_name["trace.json"]["kind"] == "trace"
        assert report["ok"] is True

    def test_report_flags_corrupt_file(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        (tmp_path / "broken.json").write_text("{torn write")
        report = store.integrity_report()
        (entry,) = report["files"]
        assert entry["status"] == "error"
        assert report["ok"] is False


class TestDumpJsonText:
    def test_matches_store_bytes(self, tmp_path):
        doc = {"z": 1, "a": 2}
        store = ArtifactStore(str(tmp_path))
        store.write_json("doc.json", doc, indent=2, sort_keys=True)
        assert store.read_text("doc.json") == dump_json_text(
            doc, indent=2, sort_keys=True
        )
        assert dump_json_text(doc) == json.dumps(doc)
