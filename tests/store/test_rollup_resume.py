"""Kill-and-resume byte identity with hierarchical rollups enabled.

The rollup layer rides the monitored checkpoint pipeline: summaries
are rebuilt during replay from the stored per-board results rather
than restored from counter deltas (``rollup.*`` counters are excluded
from checkpoints, like ``monitor.*``).  These tests prove the split is
airtight — a killed-and-resumed monitored campaign with rollups and
hierarchical rules on produces byte-identical artifacts, alert logs,
rollup documents and metric snapshots to the uninterrupted run.
"""

from __future__ import annotations

import pytest

from repro.analysis.campaign import LongTermCampaign
from repro.errors import CampaignInterrupted
from repro.io.resultstore import save_campaign
from repro.monitor.defaults import default_ruleset, hierarchical_ruleset
from repro.monitor.hub import MonitorHub
from repro.store.checkpoint import EXCLUDED_COUNTER_PREFIXES
from repro.telemetry import get_metrics, get_rollups, reset_telemetry

from tests.exec.conftest import assert_campaigns_identical

#: Small monitored campaign; 2 rollup shards over 4 boards.
CONFIG = dict(
    device_count=4,
    months=3,
    measurements=120,
    temperature_walk_k=1.5,
    rollup_shards=2,
)
SEED = 7


def make_campaign(max_workers: int = 1) -> LongTermCampaign:
    return LongTermCampaign(max_workers=max_workers, random_state=SEED, **CONFIG)


def make_hub(log_path: str) -> MonitorHub:
    return MonitorHub(
        default_ruleset() + hierarchical_ruleset(), alert_log=log_path
    )


def read_bytes(path: str) -> bytes:
    with open(path, "rb") as handle:
        return handle.read()


def rollup_docs() -> dict:
    rollups = get_rollups()
    return {
        name: rollups.get(name).to_doc()
        for name in rollups.names()
        if not name.startswith("rollup.worker")
    }


def metric_snapshot() -> dict:
    return {
        name: doc
        for name, doc in get_metrics().snapshot().items()
        if not name.startswith("rollup.worker")
    }


class TestRollupResume:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_kill_and_resume_is_byte_identical(self, tmp_path, workers):
        straight_log = str(tmp_path / "straight.alerts.jsonl")
        baseline = make_campaign().run(monitor=make_hub(straight_log))
        baseline_docs = rollup_docs()
        baseline_metrics = metric_snapshot()
        straight_path = str(tmp_path / "straight.json")
        save_campaign(baseline, straight_path)

        reset_telemetry()
        checkpoint_dir = str(tmp_path / f"ckpt-w{workers}")
        killed_log = str(tmp_path / f"killed-w{workers}.alerts.jsonl")
        with pytest.raises(CampaignInterrupted):
            make_campaign(max_workers=workers).run(
                monitor=make_hub(killed_log),
                checkpoint_dir=checkpoint_dir,
                abort_after_month=1,
            )

        reset_telemetry()
        resumed_log = str(tmp_path / f"resumed-w{workers}.alerts.jsonl")
        resumed = LongTermCampaign.resume(
            checkpoint_dir,
            monitor=make_hub(resumed_log),
            max_workers=workers,
        )
        assert_campaigns_identical(baseline, resumed)
        assert rollup_docs() == baseline_docs, "rollup rebuild diverged"
        assert metric_snapshot() == baseline_metrics

        resumed_path = str(tmp_path / f"resumed-w{workers}.json")
        save_campaign(resumed, resumed_path)
        assert read_bytes(straight_path) == read_bytes(resumed_path)
        assert read_bytes(straight_log) == read_bytes(resumed_log)

    def test_rollup_counters_stay_out_of_checkpoints(self, tmp_path):
        assert "rollup." in EXCLUDED_COUNTER_PREFIXES
        assert "monitor." in EXCLUDED_COUNTER_PREFIXES
        checkpoint_dir = str(tmp_path / "ckpt")
        make_campaign().run(
            monitor=make_hub(str(tmp_path / "alerts.jsonl")),
            checkpoint_dir=checkpoint_dir,
        )
        import glob
        import json

        files = sorted(glob.glob(f"{checkpoint_dir}/month-*.json"))
        assert len(files) == CONFIG["months"] + 1
        for path in files:
            with open(path, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
            for deltas in doc.get("counter_deltas", []):
                for name in deltas:
                    assert not name.startswith("rollup."), name
                    assert not name.startswith("monitor."), name

    def test_labeled_powerups_survive_resume(self, tmp_path):
        """Per-shard labeled counters restore exactly from deltas."""
        make_campaign().run(monitor=make_hub(str(tmp_path / "a.jsonl")))
        baseline = {
            name: doc
            for name, doc in get_metrics().snapshot().items()
            if name.startswith("campaign.powerups{")
        }
        assert baseline, "expected labeled per-shard powerup counters"

        reset_telemetry()
        checkpoint_dir = str(tmp_path / "ckpt")
        with pytest.raises(CampaignInterrupted):
            make_campaign().run(
                monitor=make_hub(str(tmp_path / "b.jsonl")),
                checkpoint_dir=checkpoint_dir,
                abort_after_month=1,
            )
        reset_telemetry()
        LongTermCampaign.resume(
            checkpoint_dir, monitor=make_hub(str(tmp_path / "c.jsonl"))
        )
        resumed = {
            name: doc
            for name, doc in get_metrics().snapshot().items()
            if name.startswith("campaign.powerups{")
        }
        assert resumed == baseline
