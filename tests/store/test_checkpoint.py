"""Tests for checkpoint documents, the checkpointer and delta recording."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.sram.chip import SRAMChip
from repro.sram.profiles import ATMEGA32U4
from repro.store.artifact import ArtifactStore
from repro.store.checkpoint import (
    CampaignCheckpointer,
    CounterDeltaRecorder,
    board_state_doc,
    checkpoint_name,
    fold_counter_deltas,
    list_checkpoints,
    load_latest_checkpoint,
    restore_chip,
)
from repro.telemetry import get_metrics


class TestCheckpointName:
    def test_zero_padded(self):
        assert checkpoint_name(0) == "month-0000.json"
        assert checkpoint_name(23) == "month-0023.json"

    def test_range_enforced(self):
        with pytest.raises(StorageError):
            checkpoint_name(-1)
        with pytest.raises(StorageError):
            checkpoint_name(10000)


class TestBoardState:
    def test_restored_chip_draws_identically(self):
        chip = SRAMChip(3, ATMEGA32U4, random_state=11)
        chip.read_startup(count=5)  # advance off the fresh state
        doc = board_state_doc(chip)
        expected = chip.read_startup(count=4)

        clone = restore_chip(3, ATMEGA32U4, doc)
        np.testing.assert_array_equal(clone.read_startup(count=4), expected)

    def test_state_doc_is_json_native(self):
        import json

        chip = SRAMChip(0, ATMEGA32U4, random_state=1)
        doc = json.loads(json.dumps(board_state_doc(chip)))
        clone = restore_chip(0, ATMEGA32U4, doc)
        np.testing.assert_array_equal(
            clone.read_startup(count=2), chip.read_startup(count=2)
        )

    def test_missing_field_raises(self):
        chip = SRAMChip(0, ATMEGA32U4, random_state=1)
        doc = board_state_doc(chip)
        del doc["skew_b64"]
        with pytest.raises(StorageError, match="missing field"):
            restore_chip(0, ATMEGA32U4, doc)


class TestCounterDeltaRecorder:
    def test_records_deltas_since_baseline(self):
        metrics = get_metrics()
        metrics.counter("campaign.powerups").inc(5)
        recorder = CounterDeltaRecorder(metrics)
        metrics.counter("campaign.powerups").inc(3)
        assert recorder.take() == {"campaign.powerups": 3}

    def test_zero_deltas_omitted(self):
        metrics = get_metrics()
        metrics.counter("campaign.powerups").inc()
        recorder = CounterDeltaRecorder(metrics)
        assert recorder.take() == {}

    def test_monitor_counters_excluded(self):
        metrics = get_metrics()
        recorder = CounterDeltaRecorder(metrics)
        metrics.counter("monitor.alerts").inc(4)
        metrics.counter("campaign.powerups").inc(1)
        assert recorder.take() == {"campaign.powerups": 1}

    def test_take_advances_baseline(self):
        metrics = get_metrics()
        recorder = CounterDeltaRecorder(metrics)
        metrics.counter("c").inc(2)
        assert recorder.take() == {"c": 2}
        assert recorder.take() == {}

    def test_fold_reapplies_deltas(self):
        metrics = get_metrics()
        fold_counter_deltas(metrics, {"campaign.powerups": 7, "campaign.aging": 2})
        assert metrics.counter("campaign.powerups").value == 7
        assert metrics.counter("campaign.aging").value == 2


def _save_minimal_checkpoint(checkpoint_dir, month=0, config=None):
    from repro.analysis.monthly import evaluate_month

    chips = [SRAMChip(i, ATMEGA32U4, random_state=5 + i) for i in range(2)]
    references = {chip.chip_id: chip.read_startup() for chip in chips}
    snapshots = [
        evaluate_month(chips, references, month=m, measurements=20)
        for m in range(month + 1)
    ]
    checkpointer = CampaignCheckpointer(
        checkpoint_dir, config or {"root_seed": 1, "months": 3}
    )
    checkpointer.save(
        month,
        temperature=298.15,
        temp_rng_state=None,
        references=references,
        boards={chip.chip_id: board_state_doc(chip) for chip in chips},
        snapshots=snapshots,
        counter_deltas=[{"campaign.powerups": 20}] * (month + 1),
        pending_deltas={"campaign.aging_steps": 2},
    )
    return checkpointer, references


class TestCheckpointerRoundtrip:
    def test_save_then_load(self, tmp_path):
        checkpoint_dir = str(tmp_path / "ckpt")
        _, references = _save_minimal_checkpoint(checkpoint_dir, month=1)
        state = load_latest_checkpoint(checkpoint_dir)
        assert state.completed_month == 1
        assert state.config["months"] == 3
        assert set(state.references) == set(references)
        for board, bits in references.items():
            np.testing.assert_array_equal(state.references[board], bits)
        assert len(state.snapshots) == 2
        assert state.pending_deltas == {"campaign.aging_steps": 2}
        assert state.source == "month-0001.json"

    def test_list_checkpoints_ascending(self, tmp_path):
        checkpoint_dir = str(tmp_path / "ckpt")
        _save_minimal_checkpoint(checkpoint_dir, month=1)
        _save_minimal_checkpoint(checkpoint_dir, month=0)
        assert [month for month, _ in list_checkpoints(checkpoint_dir)] == [0, 1]

    def test_reset_removes_checkpoints(self, tmp_path):
        checkpoint_dir = str(tmp_path / "ckpt")
        checkpointer, _ = _save_minimal_checkpoint(checkpoint_dir)
        checkpointer.reset()
        assert list_checkpoints(checkpoint_dir) == []

    def test_empty_dir_raises(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(StorageError, match="no checkpoints"):
            load_latest_checkpoint(str(tmp_path / "empty"))


class TestTruncatedCheckpointFallback:
    """The satellite: a torn newest checkpoint falls back one month."""

    def test_truncated_newest_falls_back_to_previous(self, tmp_path, caplog):
        checkpoint_dir = str(tmp_path / "ckpt")
        _save_minimal_checkpoint(checkpoint_dir, month=0)
        store = ArtifactStore(checkpoint_dir)
        # Simulate a kill mid-append of month 1: half a JSON document.
        complete = store.read_text("month-0000.json")
        with open(store.path("month-0001.json"), "w") as handle:
            handle.write(complete[: len(complete) // 2])

        import logging

        with caplog.at_level(logging.WARNING, logger="repro.store.checkpoint"):
            state = load_latest_checkpoint(checkpoint_dir)
        assert state.completed_month == 0
        assert any("month-0001.json" in record.message for record in caplog.records)

    def test_all_corrupt_raises_with_clear_error(self, tmp_path):
        checkpoint_dir = str(tmp_path / "ckpt")
        store = ArtifactStore(checkpoint_dir)
        store.write_text("month-0000.json", "{torn")
        with pytest.raises(StorageError, match="no usable checkpoint"):
            load_latest_checkpoint(checkpoint_dir)

    def test_filename_month_mismatch_skipped(self, tmp_path):
        checkpoint_dir = str(tmp_path / "ckpt")
        _save_minimal_checkpoint(checkpoint_dir, month=0)
        store = ArtifactStore(checkpoint_dir)
        doc = store.read_json("month-0000.json")
        store.write_json("month-0005.json", doc, sort_keys=True)  # lies about month
        state = load_latest_checkpoint(checkpoint_dir)
        assert state.completed_month == 0
        assert state.source == "month-0000.json"

    def test_incomplete_snapshot_list_rejected(self, tmp_path):
        checkpoint_dir = str(tmp_path / "ckpt")
        _save_minimal_checkpoint(checkpoint_dir, month=0)
        store = ArtifactStore(checkpoint_dir)
        doc = store.read_json("month-0000.json")
        doc["snapshots"] = []
        store.write_json("month-0000.json", doc, sort_keys=True)
        with pytest.raises(StorageError, match="expected 1"):
            load_latest_checkpoint(checkpoint_dir)
