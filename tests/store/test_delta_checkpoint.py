"""Delta checkpoints: keyframe cadence, chain integrity and compaction.

The headline gates of the v2 checkpoint format:

* a keyframe every ``keyframe_every`` months, results-only deltas in
  between, with the directory shrinking accordingly;
* kill-and-resume byte identity preserved — resume loads the newest
  keyframe and deterministically re-executes the delta months,
  re-writing byte-identical files;
* ``compact_checkpoints`` prunes only months that resume can
  reconstruct;
* v1 (cumulative) checkpoint directories resume transparently through
  the schema migration.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis.campaign import LongTermCampaign
from repro.errors import CampaignInterrupted, ConfigurationError, StorageError
from repro.store.checkpoint import (
    CampaignCheckpointer,
    DEFAULT_KEYFRAME_EVERY,
    checkpoint_chain_report,
    checkpoint_name,
    compact_checkpoints,
    list_checkpoints,
    load_latest_checkpoint,
    parse_checkpoint_doc,
    parse_delta_doc,
)
from repro.telemetry import reset_telemetry

from tests.exec.conftest import assert_campaigns_identical, worker_counts

#: Small walk-enabled campaign spanning several keyframe intervals.
PARAMS = dict(
    device_count=3, months=8, measurements=60, temperature_walk_k=1.0,
    keyframe_every=3,
)
SEED = 11


def make_campaign(max_workers: int = 1, **overrides) -> LongTermCampaign:
    params = dict(PARAMS)
    params.update(overrides)
    return LongTermCampaign(max_workers=max_workers, random_state=SEED, **params)


def read_doc(checkpoint_dir, name: str) -> dict:
    with open(os.path.join(str(checkpoint_dir), name), "r", encoding="utf-8") as fh:
        return json.load(fh)


def kinds_on_disk(checkpoint_dir) -> dict:
    return {
        month: read_doc(checkpoint_dir, name)["kind"]
        for month, name in list_checkpoints(str(checkpoint_dir))
    }


def read_bytes(path) -> bytes:
    with open(path, "rb") as handle:
        return handle.read()


class TestKeyframeCadence:
    def test_keyframes_every_k_months_deltas_between(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        make_campaign(keyframe_every=2, months=5).run(checkpoint_dir=str(ckpt))
        assert kinds_on_disk(ckpt) == {
            0: "keyframe", 1: "delta", 2: "keyframe",
            3: "delta", 4: "keyframe", 5: "delta",
        }

    def test_keyframe_every_one_writes_only_keyframes(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        make_campaign(keyframe_every=1, months=3).run(checkpoint_dir=str(ckpt))
        assert set(kinds_on_disk(ckpt).values()) == {"keyframe"}

    def test_directory_shrinks_at_least_3x_with_default_cadence(self, tmp_path):
        sizes = {}
        for cadence in (1, DEFAULT_KEYFRAME_EVERY):
            reset_telemetry()
            ckpt = tmp_path / f"k{cadence}"
            make_campaign(
                device_count=2, months=12, measurements=40,
                keyframe_every=cadence,
            ).run(checkpoint_dir=str(ckpt))
            sizes[cadence] = sum(
                os.path.getsize(ckpt / name)
                for _, name in list_checkpoints(str(ckpt))
            )
        assert sizes[1] / sizes[DEFAULT_KEYFRAME_EVERY] >= 3.0

    def test_standalone_save_without_base_is_a_keyframe(self, tmp_path):
        # A month-1 save with no month-0 on disk must fall back to a
        # keyframe, or it could never be resumed from.
        ckpt = tmp_path / "ckpt"
        checkpointer = CampaignCheckpointer(
            str(ckpt), {"keyframe_every": 5}
        )
        straight = tmp_path / "straight"
        make_campaign(keyframe_every=5, months=2).run(checkpoint_dir=str(straight))
        doc = read_doc(straight, checkpoint_name(1))
        assert doc["kind"] == "delta"
        # Replaying the same save into an empty directory flips it.
        state = load_latest_checkpoint(str(straight))
        checkpointer.save(
            state.completed_month, state.temperature, state.temp_rng_state,
            state.references, state.boards, state.snapshots,
            state.counter_deltas, state.pending_deltas,
        )
        saved = read_doc(ckpt, checkpoint_name(state.completed_month))
        assert saved["kind"] == "keyframe"

    def test_invalid_keyframe_every_rejected(self, tmp_path):
        with pytest.raises(StorageError, match="keyframe_every"):
            CampaignCheckpointer(str(tmp_path), {"keyframe_every": 0})
        with pytest.raises(StorageError, match="keyframe_every"):
            CampaignCheckpointer(str(tmp_path), {"keyframe_every": "6"})
        with pytest.raises(ConfigurationError, match="keyframe_every"):
            make_campaign(keyframe_every=0)


class TestDeltaDocuments:
    def _delta_doc(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        make_campaign(months=2, keyframe_every=3).run(checkpoint_dir=str(ckpt))
        return read_doc(ckpt, checkpoint_name(1))

    def test_parse_checkpoint_doc_rejects_deltas(self, tmp_path):
        doc = self._delta_doc(tmp_path)
        with pytest.raises(StorageError, match="cannot restore a campaign by itself"):
            parse_checkpoint_doc(doc, source="month-0001.json")

    def test_parse_delta_doc_roundtrip(self, tmp_path):
        record = parse_delta_doc(self._delta_doc(tmp_path), source="month-0001.json")
        assert record.completed_month == 1
        assert record.base_month == 0
        assert record.snapshot.month == 1

    def test_delta_with_wrong_base_month_rejected(self, tmp_path):
        doc = self._delta_doc(tmp_path)
        doc["base_month"] = 5
        with pytest.raises(StorageError, match="bases on month 5"):
            parse_delta_doc(doc)

    def test_delta_with_wrong_snapshot_month_rejected(self, tmp_path):
        doc = self._delta_doc(tmp_path)
        doc["snapshot"]["month"] = 2
        with pytest.raises(StorageError, match="month-2 snapshot"):
            parse_delta_doc(doc)

    def test_unknown_kind_rejected(self, tmp_path):
        doc = self._delta_doc(tmp_path)
        doc["kind"] = "mystery"
        with pytest.raises(StorageError, match="unknown kind"):
            parse_checkpoint_doc(doc)


class TestLoadLatestWithDeltas:
    def test_resume_point_is_newest_keyframe(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        make_campaign().run(checkpoint_dir=str(ckpt))
        # months=8, K=3: keyframes at 0, 3, 6; deltas at 7 and 8 are
        # skipped in favour of the month-6 keyframe.
        state = load_latest_checkpoint(str(ckpt))
        assert state.completed_month == 6
        assert state.source == checkpoint_name(6)

    def test_directory_of_only_deltas_raises(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        make_campaign().run(checkpoint_dir=str(ckpt))
        for month, name in list_checkpoints(str(ckpt)):
            if read_doc(ckpt, name)["kind"] == "keyframe":
                os.remove(ckpt / name)
        with pytest.raises(StorageError, match="no keyframe"):
            load_latest_checkpoint(str(ckpt))


class TestKillAndResumeUnderDeltas:
    def test_resume_mid_keyframe_interval_matches_straight(self, tmp_path):
        # Abort after month 4 — a delta month (K=3: keyframes 0, 3, 6)
        # — so resume must rewind to the month-3 keyframe and re-run
        # months 4.. deterministically.
        baseline = make_campaign().run()
        straight_dir = tmp_path / "straight"
        reset_telemetry()
        make_campaign().run(checkpoint_dir=str(straight_dir))
        for workers in worker_counts():
            ckpt = tmp_path / f"broken-{workers}"
            reset_telemetry()
            with pytest.raises(CampaignInterrupted):
                make_campaign().run(
                    checkpoint_dir=str(ckpt), abort_after_month=4
                )
            assert kinds_on_disk(ckpt)[4] == "delta"
            reset_telemetry()
            resumed = LongTermCampaign.resume(str(ckpt), max_workers=workers)
            assert_campaigns_identical(baseline, resumed)
            # Every checkpoint file — the re-executed delta months
            # included — is byte-identical to the uninterrupted run's.
            assert [n for _, n in list_checkpoints(str(ckpt))] == [
                n for _, n in list_checkpoints(str(straight_dir))
            ]
            for _, name in list_checkpoints(str(ckpt)):
                assert read_bytes(ckpt / name) == read_bytes(straight_dir / name)

    def test_resume_right_after_keyframe(self, tmp_path):
        baseline = make_campaign().run()
        ckpt = tmp_path / "ckpt"
        reset_telemetry()
        with pytest.raises(CampaignInterrupted):
            make_campaign().run(checkpoint_dir=str(ckpt), abort_after_month=3)
        assert kinds_on_disk(ckpt)[3] == "keyframe"
        reset_telemetry()
        resumed = LongTermCampaign.resume(str(ckpt))
        assert_campaigns_identical(baseline, resumed)


class TestCompaction:
    def test_compact_prunes_reconstructible_months(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        make_campaign().run(checkpoint_dir=str(ckpt))
        removed = compact_checkpoints(str(ckpt), keep_keyframes=1)
        # Newest keyframe is month 6; everything before it goes.
        assert removed == [checkpoint_name(m) for m in range(6)]
        assert [m for m, _ in list_checkpoints(str(ckpt))] == [6, 7, 8]

    def test_resume_after_compaction_matches_baseline(self, tmp_path):
        baseline = make_campaign().run()
        ckpt = tmp_path / "ckpt"
        reset_telemetry()
        with pytest.raises(CampaignInterrupted):
            make_campaign().run(checkpoint_dir=str(ckpt), abort_after_month=7)
        compact_checkpoints(str(ckpt))
        reset_telemetry()
        resumed = LongTermCampaign.resume(str(ckpt))
        assert_campaigns_identical(baseline, resumed)

    def test_keep_keyframes_retains_older_keyframes(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        make_campaign().run(checkpoint_dir=str(ckpt))
        removed = compact_checkpoints(str(ckpt), keep_keyframes=2)
        # Oldest kept keyframe is month 3; months 0-2 go.
        assert removed == [checkpoint_name(m) for m in range(3)]

    def test_compact_refuses_directory_without_keyframe(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        make_campaign().run(checkpoint_dir=str(ckpt))
        for month, name in list_checkpoints(str(ckpt)):
            if read_doc(ckpt, name)["kind"] == "keyframe":
                os.remove(ckpt / name)
        with pytest.raises(StorageError, match="no parseable keyframe"):
            compact_checkpoints(str(ckpt))

    def test_keep_keyframes_must_be_positive(self, tmp_path):
        with pytest.raises(StorageError, match="keep_keyframes"):
            compact_checkpoints(str(tmp_path), keep_keyframes=0)


class TestChainReport:
    def test_healthy_directory_reports_ok(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        make_campaign().run(checkpoint_dir=str(ckpt))
        report = checkpoint_chain_report(str(ckpt))
        assert report["ok"] is True
        assert report["resume_month"] == 6
        kinds = {e["month"]: e["kind"] for e in report["entries"]}
        assert kinds == kinds_on_disk(ckpt)
        assert all(e["status"] == "ok" for e in report["entries"])

    def test_broken_chain_is_flagged(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        make_campaign().run(checkpoint_dir=str(ckpt))
        os.remove(ckpt / checkpoint_name(3))  # delta month 4 bases on it
        report = checkpoint_chain_report(str(ckpt))
        assert report["ok"] is False
        broken = {e["month"]: e for e in report["entries"]}[4]
        assert broken["status"] == "error"
        assert "broken chain" in broken["detail"]

    def test_corrupt_rng_state_is_flagged(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        make_campaign(months=2).run(checkpoint_dir=str(ckpt))
        doc = read_doc(ckpt, checkpoint_name(0))
        first_board = next(iter(doc["boards"]))
        doc["boards"][first_board]["rng_state"] = {"not": "a bit generator"}
        (ckpt / checkpoint_name(0)).write_text(json.dumps(doc, sort_keys=True))
        report = checkpoint_chain_report(str(ckpt))
        assert report["ok"] is False
        entry = {e["month"]: e for e in report["entries"]}[0]
        assert "rng_state" in entry["detail"]


class TestV1Migration:
    def _downgrade_to_v1(self, ckpt) -> None:
        """Rewrite a K=1 directory as pre-delta v1 cumulative files."""
        for _, name in list_checkpoints(str(ckpt)):
            doc = read_doc(ckpt, name)
            assert doc["kind"] == "keyframe"
            del doc["kind"]
            doc["checkpoint_version"] = 1
            doc["config"].pop("keyframe_every", None)
            (ckpt / name).write_text(json.dumps(doc, sort_keys=True))

    def test_v1_directory_resumes_transparently(self, tmp_path):
        baseline = make_campaign(keyframe_every=1).run()
        ckpt = tmp_path / "ckpt"
        reset_telemetry()
        with pytest.raises(CampaignInterrupted):
            make_campaign(keyframe_every=1).run(
                checkpoint_dir=str(ckpt), abort_after_month=4
            )
        self._downgrade_to_v1(ckpt)
        reset_telemetry()
        resumed = LongTermCampaign.resume(str(ckpt))
        assert_campaigns_identical(baseline, resumed)

    def test_v1_files_load_as_keyframes(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        make_campaign(keyframe_every=1, months=2).run(checkpoint_dir=str(ckpt))
        self._downgrade_to_v1(ckpt)
        state = load_latest_checkpoint(str(ckpt))
        assert state.completed_month == 2
        report = checkpoint_chain_report(str(ckpt))
        assert report["ok"] is True
