"""Sharded persistence: layout, merge-on-read and resume byte-identity.

The tentpole contract of :mod:`repro.store.shardstore`: a campaign
whose window workers persist per-shard streams and keyframe chains
produces — after ``merge_sharded_campaign`` — exactly the bytes the
single-writer monolithic path saves, and resumes from its shard
chains (including torn and compacted ones) byte-identically to an
uninterrupted run.  The hypothesis suite at the bottom drives shard
counts {1, 2, 3, 7} x both kernels through kill-and-resume
mid-keyframe-interval with a single torn shard.
"""

from __future__ import annotations

import glob
import os
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.campaign import LongTermCampaign
from repro.errors import CampaignInterrupted, ConfigurationError, StorageError
from repro.exec.pool import WindowPool
from repro.exec.windows import clear_window_cache
from repro.io.resultstore import load_campaign, save_campaign
from repro.sram.profiles import ATMEGA32U4
from repro.store.artifact import ArtifactStore
from repro.store.checkpoint import (
    build_shard_keyframe_doc,
    load_latest_shard_keyframe,
    parse_checkpoint_doc,
    parse_shard_checkpoint_doc,
)
from repro.store.shardstore import (
    PARENT_LOG_NAME,
    SHARD_MANIFEST_NAME,
    SHARD_STREAM_NAME,
    is_sharded_checkpoint,
    load_shard_manifest,
    merge_sharded_campaign,
    read_shard_stream,
    shard_root,
)
from repro.telemetry import reset_telemetry

from tests.exec.conftest import assert_campaigns_identical

#: Small statistical campaign; fast enough to run many times per test.
SMALL = dict(device_count=4, months=3, measurements=80)
SEED = 11


def make_campaign(shard_store: bool = True, **overrides) -> LongTermCampaign:
    params = dict(SMALL)
    params.update(overrides)
    return LongTermCampaign(shard_store=shard_store, random_state=SEED, **params)


def read_bytes(path: str) -> bytes:
    with open(path, "rb") as handle:
        return handle.read()


class InlineWindowPool(WindowPool):
    """A WindowPool that runs its specs in-process, serially.

    ``WindowPool.adopt`` passes instances through untouched, so this
    injects an arbitrary *shard count* (``max_workers`` drives the
    board partition) without paying worker-process start-up — the
    hypothesis ladder below runs dozens of campaigns per test.
    """

    def run_tasks(self, fn, specs):
        return [fn(spec) for spec in specs]


class TestShardedLayout:
    def test_fresh_run_writes_manifest_log_and_shard_dirs(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        make_campaign().run(
            checkpoint_dir=ckpt, executor=InlineWindowPool(2)
        )
        assert is_sharded_checkpoint(ckpt)
        assert os.path.isfile(os.path.join(ckpt, PARENT_LOG_NAME))
        manifest = load_shard_manifest(ckpt)
        assert manifest.board_ids == [0, 1, 2, 3]
        assert len(manifest.shard_boards) == 2
        for index in range(2):
            shard_dir = shard_root(ckpt, index)
            assert os.path.isfile(os.path.join(shard_dir, SHARD_STREAM_NAME))
            # chain: months 0..3, one file each
            chain = sorted(glob.glob(os.path.join(shard_dir, "month-*.json")))
            assert len(chain) == SMALL["months"] + 1
            header, references, rows = read_shard_stream(shard_dir)
            assert sorted(references) == list(manifest.shard_boards[index])
            assert sorted(rows) == list(range(SMALL["months"] + 1))
        # the monolithic chain is absent: no month files at the root
        assert glob.glob(os.path.join(ckpt, "month-*.json")) == []

    def test_shard_store_requires_checkpoint_dir(self):
        with pytest.raises(ConfigurationError, match="checkpoint_dir"):
            make_campaign().run()

    def test_fresh_sharded_run_clears_monolithic_residue(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        make_campaign(shard_store=False).run(checkpoint_dir=ckpt)
        assert glob.glob(os.path.join(ckpt, "month-*.json"))
        make_campaign().run(checkpoint_dir=ckpt, executor=InlineWindowPool(2))
        assert glob.glob(os.path.join(ckpt, "month-*.json")) == []
        assert is_sharded_checkpoint(ckpt)

    def test_fresh_monolithic_run_clears_sharded_residue(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        make_campaign().run(checkpoint_dir=ckpt, executor=InlineWindowPool(2))
        make_campaign(shard_store=False).run(checkpoint_dir=ckpt)
        assert not is_sharded_checkpoint(ckpt)
        assert not os.path.isdir(os.path.join(ckpt, "shards"))


class TestMergeOnRead:
    def test_merge_matches_monolithic_artifact_bytes(self, tmp_path):
        baseline = make_campaign(shard_store=False).run()
        reset_telemetry()
        ckpt = str(tmp_path / "ckpt")
        sharded = make_campaign().run(
            checkpoint_dir=ckpt, executor=InlineWindowPool(2)
        )
        assert_campaigns_identical(baseline, sharded)
        merged = merge_sharded_campaign(ckpt)
        assert_campaigns_identical(baseline, merged)
        save_campaign(baseline, str(tmp_path / "mono.json"))
        save_campaign(merged, str(tmp_path / "merged.json"))
        assert read_bytes(str(tmp_path / "mono.json")) == read_bytes(
            str(tmp_path / "merged.json")
        )

    def test_load_campaign_reads_sharded_directory(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        result = make_campaign().run(
            checkpoint_dir=ckpt, executor=InlineWindowPool(3)
        )
        assert_campaigns_identical(result, load_campaign(ckpt))

    def test_load_campaign_rejects_plain_directory(self, tmp_path):
        with pytest.raises(StorageError, match="without a campaign manifest"):
            load_campaign(str(tmp_path))

    def test_merge_of_incomplete_campaign_refused(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        with pytest.raises(CampaignInterrupted):
            make_campaign().run(
                checkpoint_dir=ckpt,
                executor=InlineWindowPool(2),
                abort_after_month=1,
            )
        with pytest.raises(StorageError, match="resume the campaign"):
            merge_sharded_campaign(ckpt)


class TestShardedResume:
    def test_kill_and_resume_matches_uninterrupted(self, tmp_path):
        baseline = make_campaign(shard_store=False).run()
        reset_telemetry()
        ckpt = str(tmp_path / "ckpt")
        with pytest.raises(CampaignInterrupted):
            make_campaign().run(
                checkpoint_dir=ckpt,
                executor=InlineWindowPool(2),
                abort_after_month=1,
            )
        clear_window_cache()  # cold path: restore from shard keyframes
        resumed = LongTermCampaign.resume(ckpt, executor=InlineWindowPool(2))
        assert_campaigns_identical(baseline, resumed)
        assert_campaigns_identical(baseline, merge_sharded_campaign(ckpt))

    def test_resume_of_complete_campaign_is_a_no_op_replay(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        result = make_campaign().run(
            checkpoint_dir=ckpt, executor=InlineWindowPool(2)
        )
        clear_window_cache()
        resumed = LongTermCampaign.resume(ckpt, executor=InlineWindowPool(2))
        assert_campaigns_identical(result, resumed)

    def test_resume_after_compaction(self, tmp_path):
        """The chain scan honours compacted chains (keyframe + tail only)."""
        from repro.store.checkpoint import compact_checkpoints

        baseline = make_campaign(shard_store=False, months=5).run()
        reset_telemetry()
        ckpt = str(tmp_path / "ckpt")
        with pytest.raises(CampaignInterrupted):
            make_campaign(months=5, keyframe_every=2).run(
                checkpoint_dir=ckpt,
                executor=InlineWindowPool(2),
                abort_after_month=3,
            )
        for index in range(2):
            removed = compact_checkpoints(shard_root(ckpt, index))
            assert removed  # months before the kept keyframe pruned
        clear_window_cache()
        resumed = LongTermCampaign.resume(ckpt, executor=InlineWindowPool(2))
        assert_campaigns_identical(baseline, resumed)


class TestShardCheckpointDocs:
    STATE = {
        "rng_state": {"bit_generator": "PCG64", "state": {"state": 1, "inc": 2}},
        "skew_b64": "AAAA",
        "age_seconds": 0.0,
        "power_up_count": 3,
    }

    def test_keyframe_doc_round_trip(self):
        doc = build_shard_keyframe_doc(2, 5, {7: self.STATE, 9: self.STATE})
        state = parse_shard_checkpoint_doc(doc, source="test")
        assert state.shard_index == 2
        assert state.completed_month == 5
        assert state.board_ids == [7, 9]

    def test_campaign_parser_rejects_shard_scope(self):
        doc = build_shard_keyframe_doc(0, 1, {0: self.STATE})
        with pytest.raises(StorageError, match="scope"):
            parse_checkpoint_doc(doc, source="test")

    def test_load_latest_shard_keyframe_honours_max_month(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        for month in (0, 2, 4):
            store.write_json(
                f"month-{month:04d}.json",
                build_shard_keyframe_doc(0, month, {0: self.STATE}),
                sort_keys=True,
            )
        assert load_latest_shard_keyframe(str(tmp_path)).completed_month == 4
        assert (
            load_latest_shard_keyframe(str(tmp_path), max_month=3).completed_month
            == 2
        )


class TestShardIntegrity:
    def test_integrity_report_rolls_up_per_shard(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        make_campaign().run(checkpoint_dir=ckpt, executor=InlineWindowPool(2))
        store = ArtifactStore(ckpt, create=False)
        report = store.integrity_report()
        assert report["ok"]
        shard_dirs = [entry["dir"] for entry in report["shards"]]
        assert shard_dirs == [
            os.path.join("shards", "shard-0000"),
            os.path.join("shards", "shard-0001"),
        ]
        assert all(entry["ok"] for entry in report["shards"])
        kinds = {entry["kind"] for entry in report["files"]}
        assert "shard-stream" in kinds and "shard-manifest" in kinds

    def test_stray_tmp_in_shard_dir_flagged_and_swept(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        make_campaign().run(checkpoint_dir=ckpt, executor=InlineWindowPool(2))
        stray = os.path.join(shard_root(ckpt, 1), "month-0009.json.tmp")
        with open(stray, "w", encoding="utf-8") as handle:
            handle.write("{")
        store = ArtifactStore(ckpt, create=False)
        report = store.integrity_report()
        assert not report["ok"]
        flagged = {entry["dir"]: entry for entry in report["shards"]}
        assert not flagged[os.path.join("shards", "shard-0001")]["ok"]
        assert flagged[os.path.join("shards", "shard-0000")]["ok"]
        removed = store.clean_stray_tmp_files()
        assert removed == [
            os.path.join("shards", "shard-0001", "month-0009.json.tmp")
        ]
        assert store.integrity_report()["ok"]


def _tear_shard(checkpoint_dir: str, shard_index: int) -> None:
    """Simulate a crash inside one shard: torn stream + lost chain tail."""
    shard_dir = shard_root(checkpoint_dir, shard_index)
    stream = os.path.join(shard_dir, SHARD_STREAM_NAME)
    payload = read_bytes(stream)
    with open(stream, "wb") as handle:
        handle.write(payload[: max(0, len(payload) - 25)])
    chain = sorted(glob.glob(os.path.join(shard_dir, "month-*.json")))
    if len(chain) > 1:
        os.remove(chain[-1])


#: One randomized sharding scenario for the property suite.
shard_scenarios = st.fixed_dictionaries(
    {
        "workers": st.sampled_from((1, 2, 3, 7)),
        "kernel": st.sampled_from(("scalar", "vector")),
        "boards": st.integers(6, 8),
        "months": st.integers(4, 6),
        "keyframe_every": st.sampled_from((2, 3)),
        "abort_after": st.integers(1, 3),
        "torn_shard": st.integers(0, 6),
        "seed": st.integers(0, 2**32 - 1),
    }
)

#: Tiny device so each drawn campaign takes milliseconds, not seconds.
PROP_PROFILE = ATMEGA32U4.with_overrides(
    name="atmega32u4-shardprop", sram_bytes=16, read_bytes=8
)


class TestShardStoreProperties:
    @settings(max_examples=10, deadline=None)
    @given(shard_scenarios)
    def test_merge_and_torn_resume_byte_identity(self, cfg):
        """Sharded-run, merged and torn-resumed artifacts are one artifact.

        Every drawn scenario runs the study three ways — monolithic
        baseline, sharded straight through, sharded killed
        mid-keyframe-interval with one shard additionally torn and then
        resumed — and demands the exact same campaign result (and
        stream contents via merge) from all of them.
        """
        params = dict(
            device_count=cfg["boards"],
            months=cfg["months"],
            measurements=30,
            profile=PROP_PROFILE,
            keyframe_every=cfg["keyframe_every"],
            kernel=cfg["kernel"],
        )
        reset_telemetry()
        clear_window_cache()
        baseline = LongTermCampaign(random_state=cfg["seed"], **params).run()
        with tempfile.TemporaryDirectory(prefix="shardprop-") as workdir:
            pool = InlineWindowPool(cfg["workers"])
            straight_dir = os.path.join(workdir, "straight")
            reset_telemetry()
            straight = LongTermCampaign(
                random_state=cfg["seed"], shard_store=True, **params
            ).run(checkpoint_dir=straight_dir, executor=pool)
            assert_campaigns_identical(baseline, straight)
            assert_campaigns_identical(
                baseline, merge_sharded_campaign(straight_dir)
            )

            resumed_dir = os.path.join(workdir, "resumed")
            reset_telemetry()
            with pytest.raises(CampaignInterrupted):
                LongTermCampaign(
                    random_state=cfg["seed"], shard_store=True, **params
                ).run(
                    checkpoint_dir=resumed_dir,
                    executor=pool,
                    abort_after_month=cfg["abort_after"],
                )
            shard_count = len(load_shard_manifest(resumed_dir).shard_boards)
            _tear_shard(resumed_dir, cfg["torn_shard"] % shard_count)
            clear_window_cache()  # a real crash loses the worker caches
            reset_telemetry()
            resumed = LongTermCampaign.resume(resumed_dir, executor=pool)
            assert_campaigns_identical(baseline, resumed)
            assert_campaigns_identical(
                baseline, merge_sharded_campaign(resumed_dir)
            )
            # The re-executed chains and streams hold the same bytes as
            # the never-interrupted sharded run's.
            for index in range(shard_count):
                left = shard_root(straight_dir, index)
                right = shard_root(resumed_dir, index)
                assert read_bytes(
                    os.path.join(left, SHARD_STREAM_NAME)
                ) == read_bytes(os.path.join(right, SHARD_STREAM_NAME))
