"""Run the docstring examples as tests.

Several public classes carry ``Examples`` sections; executing them
keeps the documentation honest.
"""

import doctest

import pytest

import repro.hardware.scheduler
import repro.io.jsonstore
import repro.keygen.ecc.bch
import repro.keygen.ecc.polar
import repro.keygen.ecc.reedmuller
import repro.keygen.multireadout
import repro.rng
import repro.sram.chip
import repro.trng.trng

MODULES = [
    repro.hardware.scheduler,
    repro.io.jsonstore,
    repro.keygen.ecc.bch,
    repro.keygen.ecc.polar,
    repro.keygen.ecc.reedmuller,
    repro.keygen.multireadout,
    repro.rng,
    repro.sram.chip,
    repro.trng.trng,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_docstring_examples(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
