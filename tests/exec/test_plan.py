"""Shard planning and executor-selection unit tests."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.exec.executor import ParallelExecutor, SerialExecutor, executor_for
from repro.exec.plan import ShardSpec, partition_boards
from repro.sram.profiles import ATMEGA32U4


class TestPartitionBoards:
    def test_even_split_preserves_fleet_order(self):
        assert partition_boards(range(16), 4) == [
            (0, 1, 2, 3),
            (4, 5, 6, 7),
            (8, 9, 10, 11),
            (12, 13, 14, 15),
        ]

    def test_remainder_goes_to_the_first_shards(self):
        assert partition_boards(range(5), 2) == [(0, 1, 2), (3, 4)]
        assert partition_boards(range(7), 3) == [(0, 1, 2), (3, 4), (5, 6)]

    def test_more_shards_than_boards_collapses_to_singletons(self):
        assert partition_boards(range(2), 4) == [(0,), (1,)]

    def test_single_shard_takes_everything(self):
        assert partition_boards(range(3), 1) == [(0, 1, 2)]

    def test_concatenation_round_trips(self):
        for shards in (1, 2, 3, 5, 16, 17):
            flat = [
                b for chunk in partition_boards(range(16), shards) for b in chunk
            ]
            assert flat == list(range(16))

    def test_invalid_inputs_raise(self):
        with pytest.raises(ConfigurationError):
            partition_boards(range(4), 0)
        with pytest.raises(ConfigurationError):
            partition_boards([], 2)


class TestShardSpecValidation:
    def test_temperature_length_must_cover_every_snapshot(self):
        with pytest.raises(ConfigurationError, match="per-month temperatures"):
            ShardSpec(
                shard_index=0,
                root_seed=0,
                board_ids=(0,),
                months=3,
                measurements=10,
                profile=ATMEGA32U4,
                temperatures=(None,) * 3,  # needs months + 1 = 4
            )

    def test_empty_board_list_is_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one board"):
            ShardSpec(
                shard_index=0,
                root_seed=0,
                board_ids=(),
                months=1,
                measurements=10,
                profile=ATMEGA32U4,
                temperatures=(None, None),
            )


class TestExecutorSelection:
    def test_one_worker_falls_back_to_serial(self):
        assert isinstance(executor_for(1), SerialExecutor)

    def test_many_workers_build_a_parallel_executor(self):
        executor = executor_for(4)
        assert isinstance(executor, ParallelExecutor)
        assert executor.max_workers == 4

    def test_invalid_worker_counts_raise(self):
        with pytest.raises(ConfigurationError):
            executor_for(0)
        with pytest.raises(ConfigurationError):
            ParallelExecutor(0)

    def test_empty_plan_is_a_noop(self):
        assert ParallelExecutor(2).run_shards([]) == []
