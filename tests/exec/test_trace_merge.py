"""The distributed-trace merge gate: one coherent tree, any worker count.

A traced campaign dispatches shards to workers; each worker records
spans on a private tracer and ships them home as pickle-safe records;
the driver grafts them under the dispatching span and numbers the
merged forest pre-order.  The contract mirrors the scientific one:
the merged tree's *names, attributes, structure and span ids* are
identical at every worker count — only timings differ — and turning
the whole observability layer on changes no campaign output byte.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.campaign import LongTermCampaign
from repro.exec import executor_for
from repro.telemetry import (
    get_profiler,
    get_tracer,
    reset_telemetry,
    set_profiling,
    set_tracing,
)

from tests.exec.conftest import assert_campaigns_identical, worker_counts

CONFIG = dict(device_count=4, months=2, measurements=80)
SEED = 7

#: (workers) -> (result, shapes, id_rows, phase_snapshot); traced runs
#: are spawn-heavy, so every test reads from one run per worker count.
_RUNS = {}


#: Attributes that legitimately encode the dispatch size ("workers=2",
#: "shards=4"); everything else — board, month, devices — must match.
_DISPATCH_ATTRIBUTES = frozenset({"workers", "shards"})


def _shape(span):
    """Structure view of a span subtree (no timings, ids or fan-out)."""
    return (
        span.name,
        tuple(
            sorted(
                (k, repr(v))
                for k, v in span.attributes.items()
                if k not in _DISPATCH_ATTRIBUTES
            )
        ),
        tuple(_shape(child) for child in span.children),
    )


def _id_rows(span):
    """(span_id, parent_id, name) rows, pre-order."""
    rows = [(span.span_id, span.parent_id, span.name)]
    for child in span.children:
        rows.extend(_id_rows(child))
    return rows


def _traced_run(workers):
    if workers in _RUNS:
        return _RUNS[workers]
    reset_telemetry()
    set_tracing(True)
    set_profiling(True)
    try:
        campaign = LongTermCampaign(random_state=SEED, **CONFIG)
        result = campaign.run(executor=executor_for(workers))
        tracer = get_tracer()
        tracer.assign_ids()
        shapes = tuple(_shape(root) for root in tracer.roots)
        id_rows = [row for root in tracer.roots for row in _id_rows(root)]
        phases = get_profiler().snapshot()
        _RUNS[workers] = (result, shapes, id_rows, phases)
        return _RUNS[workers]
    finally:
        set_tracing(False)
        set_profiling(False)


class TestMergedTreeDeterminism:
    @pytest.mark.parametrize("workers", [w for w in worker_counts() if w > 1])
    def test_tree_shape_identical_to_single_worker(self, workers):
        _, shape_one, _, _ = _traced_run(1)
        _, shape_many, _, _ = _traced_run(workers)
        assert shape_many == shape_one

    @pytest.mark.parametrize("workers", [w for w in worker_counts() if w > 1])
    def test_span_ids_identical_to_single_worker(self, workers):
        _, _, ids_one, _ = _traced_run(1)
        _, _, ids_many, _ = _traced_run(workers)
        assert ids_many == ids_one

    def test_worker_spans_grafted_with_correct_parentage(self):
        workers = max(worker_counts())
        _traced_run(workers)
        # Re-derive the live tree for structural drill-down.
        _, shapes, _, _ = _traced_run(workers)
        (campaign_run,) = [s for s in shapes if s[0] == "campaign.run"]
        (shards,) = [c for c in campaign_run[2] if c[0] == "campaign.shards"]
        boards = [c for c in shards[2] if c[0] == "worker.board"]
        assert [dict(b[1])["board"] for b in boards] == ["0", "1", "2", "3"]
        for board in boards:
            months = [c for c in board[2] if c[0] == "board.month"]
            assert [dict(m[1])["month"] for m in months] == ["0", "1", "2"]
            for month in months:
                names = [c[0] for c in month[2]]
                assert "board.measure" in names

    @pytest.mark.parametrize("workers", [w for w in worker_counts() if w > 1])
    def test_phase_attribution_identical_serial_vs_parallel(self, workers):
        _, _, _, phases_one = _traced_run(1)
        _, _, _, phases_many = _traced_run(workers)
        # CPU figures vary run to run; the attribution (which phases,
        # how many calls) must not depend on the worker count.
        calls = lambda snap: {name: s["calls"] for name, s in snap.items()}
        assert calls(phases_many) == calls(phases_one)
        assert {"noise_draw", "powerup", "aging", "metrics"} <= set(phases_one)

    @pytest.mark.parametrize("workers", [w for w in worker_counts() if w > 1])
    def test_campaign_output_identical_across_worker_counts(self, workers):
        result_one, _, _, _ = _traced_run(1)
        result_many, _, _, _ = _traced_run(workers)
        assert_campaigns_identical(result_one, result_many)


class TestObservabilityChangesNothing:
    def test_artifacts_byte_identical_tracing_and_profiling_on_vs_off(self):
        workers = max(worker_counts())
        traced_result, _, _, _ = _traced_run(workers)
        reset_telemetry()
        assert not get_tracer().enabled and not get_profiler().enabled
        plain = LongTermCampaign(random_state=SEED, **CONFIG).run(
            executor=executor_for(workers)
        )
        assert_campaigns_identical(traced_result, plain)
        # The untraced run recorded no spans and no phases.
        assert get_tracer().roots == []
        assert get_profiler().snapshot() == {}


class TestChromeExportFromMergedTree:
    def test_export_has_per_board_lanes_and_ids(self, tmp_path):
        workers = max(worker_counts())
        _traced_run(workers)
        reset_telemetry()
        set_tracing(True)
        try:
            LongTermCampaign(random_state=SEED, **CONFIG).run(
                executor=executor_for(workers)
            )
            path = str(tmp_path / "trace.chrome.json")
            get_tracer().export_chrome(path)
        finally:
            set_tracing(False)
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        events = doc["traceEvents"]
        assert doc["otherData"]["format"] == "repro-trace-chrome"
        board_events = [e for e in events if e["name"] == "worker.board"]
        assert sorted(e["tid"] for e in board_events) == [1, 2, 3, 4]
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] >= 0.0
            assert "span_id" in event["args"]
