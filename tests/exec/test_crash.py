"""Crash robustness: failures surface structured, nothing merges.

A fleet-scale executor that silently dropped a failed board would
corrupt the science (WCHD envelopes over 15 boards instead of 16 look
plausible).  The contract tested here: any worker failure — injected
via the :attr:`~repro.exec.plan.ShardSpec.fail_board` chaos hook —
surfaces as a :class:`~repro.errors.CampaignExecutionError` that names
the board and shard, survives the process boundary, and aborts the
campaign *before* anything is merged, observed or reported.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.campaign import LongTermCampaign
from repro.errors import CampaignExecutionError
from repro.exec.executor import ParallelExecutor, SerialExecutor
from repro.exec.merge import collate_shard_results
from repro.exec.plan import ShardSpec
from repro.exec.worker import run_board_shard
from repro.monitor.defaults import default_ruleset
from repro.monitor.hub import MonitorHub
from repro.sram.profiles import ATMEGA32U4
from repro.telemetry import get_metrics, reset_telemetry

MONTHS = 2


def _spec(board_ids, shard_index=0, **overrides) -> ShardSpec:
    spec = dict(
        shard_index=shard_index,
        root_seed=3,
        board_ids=tuple(board_ids),
        months=MONTHS,
        measurements=50,
        profile=ATMEGA32U4,
        temperatures=(None,) * (MONTHS + 1),
    )
    spec.update(overrides)
    return ShardSpec(**spec)


class TestWorkerFailure:
    def test_injected_fault_names_board_and_shard(self):
        with pytest.raises(CampaignExecutionError) as excinfo:
            run_board_shard(_spec([0, 1, 2], shard_index=4, fail_board=1))
        assert excinfo.value.board_id == 1
        assert excinfo.value.shard_index == 4
        assert "board 1" in str(excinfo.value)

    def test_error_attributes_survive_the_process_boundary(self):
        specs = [
            _spec([0, 1], shard_index=0),
            _spec([2, 3], shard_index=1, fail_board=3),
        ]
        with pytest.raises(CampaignExecutionError) as excinfo:
            ParallelExecutor(2).run_shards(specs)
        assert excinfo.value.board_id == 3
        assert excinfo.value.shard_index == 1

    def test_serial_executor_wraps_failures_identically(self):
        with pytest.raises(CampaignExecutionError) as excinfo:
            SerialExecutor().run_shards([_spec([5], fail_board=5)])
        assert excinfo.value.board_id == 5


class _FaultyCampaign(LongTermCampaign):
    """Campaign whose second shard dies on its first board."""

    def _plan_shards(self, shard_count):
        specs = super()._plan_shards(shard_count)
        victim = specs[-1]
        specs[-1] = dataclasses.replace(victim, fail_board=victim.board_ids[0])
        return specs


class TestNoPartialMerge:
    def test_campaign_aborts_without_merging_or_observing(self, tmp_path):
        reset_telemetry()
        alert_log = tmp_path / "alerts.jsonl"
        hub = MonitorHub(default_ruleset(), alert_log=str(alert_log))
        progress_calls = []
        campaign = _FaultyCampaign(
            device_count=4, months=MONTHS, measurements=50, random_state=3
        )
        with pytest.raises(CampaignExecutionError) as excinfo:
            campaign.run(
                progress=progress_calls.append,
                monitor=hub,
                executor=ParallelExecutor(2),
            )
        assert excinfo.value.board_id is not None
        # Nothing downstream of the failure may have happened: no
        # snapshot observed, no alert written, no progress reported,
        # no snapshot counted.
        assert progress_calls == []
        assert hub.alert_count == 0
        assert not alert_log.exists()
        assert get_metrics().counter("monitor.observations").value == 0
        assert get_metrics().counter("campaign.snapshots").value == 0


class TestMergeRefusesBadCoverage:
    def _results(self, *board_groups):
        return [
            run_board_shard(_spec(boards, shard_index=i))
            for i, boards in enumerate(board_groups)
        ]

    def test_missing_board_is_refused(self):
        results = self._results((0, 1), (2,))
        with pytest.raises(CampaignExecutionError, match="missing boards \\[3\\]"):
            collate_shard_results([0, 1, 2, 3], MONTHS, results)

    def test_duplicate_board_is_refused(self):
        results = self._results((0, 1), (1, 2))
        with pytest.raises(CampaignExecutionError, match="more than one shard"):
            collate_shard_results([0, 1, 2], MONTHS, results)

    def test_unplanned_board_is_refused(self):
        results = self._results((0, 1, 2))
        with pytest.raises(CampaignExecutionError, match="unplanned boards \\[2\\]"):
            collate_shard_results([0, 1], MONTHS, results)

    def test_wrong_month_count_is_refused(self):
        results = self._results((0, 1))
        with pytest.raises(CampaignExecutionError, match="expected 4"):
            collate_shard_results([0, 1], MONTHS + 1, results)
