"""Shared fixtures and helpers for the parallel-execution suite.

The suite's organising principle is the serial run as ground truth:
every test builds the same campaign twice (or more) and demands the
outputs be *identical*, not merely close.  ``assert_campaigns_identical``
is that gate — exact array equality, dtypes included, down to the
dict insertion order that campaign artifacts serialise.

``worker_counts()`` honours the ``REPRO_WORKERS`` environment variable
so CI can re-run the suite pinned to one parallel worker count
(``REPRO_WORKERS=4`` tests {1, 4}); unset, the full {1, 2, 4} ladder
runs.
"""

from __future__ import annotations

import os
from typing import List

import numpy as np
import pytest

from repro.analysis.campaign import CampaignResult
from repro.telemetry import reset_telemetry


def worker_counts() -> List[int]:
    """Worker counts the equivalence ladder covers (env-overridable)."""
    override = os.environ.get("REPRO_WORKERS")
    if override:
        return sorted({1, int(override)})
    return [1, 2, 4]


@pytest.fixture(autouse=True)
def clean_registry():
    """Isolate every test's metrics so counter assertions are exact."""
    reset_telemetry()
    yield
    reset_telemetry()


def assert_snapshots_identical(a, b) -> None:
    """Exact equality of two MonthlyEvaluation snapshots."""
    assert a.month == b.month
    assert a.measurements == b.measurements
    assert a.board_ids == b.board_ids
    for name in ("wchd", "fhw", "stable_ratio", "noise_entropy", "bchd_pairs"):
        left, right = getattr(a, name), getattr(b, name)
        assert left.dtype == right.dtype, name
        np.testing.assert_array_equal(left, right, err_msg=name)
    np.testing.assert_array_equal(a.puf_entropy, b.puf_entropy)


def assert_campaigns_identical(a: CampaignResult, b: CampaignResult) -> None:
    """Byte-level equivalence gate between two campaign results."""
    assert a.profile_name == b.profile_name
    assert a.months == b.months
    assert a.measurements == b.measurements
    assert a.board_ids == b.board_ids
    # Insertion order matters: it is what the JSON artifact serialises.
    assert list(a.references) == list(b.references)
    for board in a.references:
        assert a.references[board].dtype == b.references[board].dtype
        np.testing.assert_array_equal(a.references[board], b.references[board])
    assert len(a.snapshots) == len(b.snapshots)
    for snap_a, snap_b in zip(a.snapshots, b.snapshots):
        assert_snapshots_identical(snap_a, snap_b)
