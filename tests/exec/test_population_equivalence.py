"""Mixed-fleet campaigns are identical across execution strategies.

The homogeneous equivalence ladder (``test_equivalence.py``) gates the
single-profile fleet; this suite runs the same ladder over a
*heterogeneous* population — three base profiles, multiple process
lots, mixed cell counts — and demands exact equality between the
serial run and every sharded/kernel/resume variant.  The population
determinism contract (:mod:`repro.sram.population`) is what makes this
possible: board ``i``'s profile is a pure function of
``(spec, root_seed, board_id)``, so no execution strategy can disagree
about which silicon it is simulating.
"""

import os

import pytest

from repro.analysis.campaign import LongTermCampaign
from repro.errors import CampaignInterrupted, ConfigurationError
from repro.sram.population import PopulationMember, PopulationSpec
from repro.telemetry import reset_telemetry

from tests.exec.conftest import assert_campaigns_identical, worker_counts

#: Three-member mixture exercising lots, weights and heterogeneous
#: cell counts.  At seed 7 with 12 boards it materializes multiple
#: distinct profiles spanning more than one ``sram_bytes`` value
#: (asserted below, so a strategy change cannot quietly degrade the
#: test to a homogeneous fleet).
MIXED = PopulationSpec(
    name="mix3",
    members=(
        PopulationMember(
            "ATmega32u4",
            weight=2.0,
            lots=2,
            skew_mean_spread_v=0.002,
            skew_sigma_spread=0.05,
        ),
        PopulationMember("dff-puf", noise_sigma_spread=0.1),
        PopulationMember("65nm-testchip", lots=3, sram_bytes_choices=(4096, 8192)),
    ),
)

CAMPAIGN_KWARGS = dict(
    device_count=12,
    months=3,
    measurements=30,
    population=MIXED,
    random_state=7,
)


def run_campaign(workers=1, kernel="scalar", checkpoint_dir=None):
    reset_telemetry()
    campaign = LongTermCampaign(
        max_workers=workers, kernel=kernel, **CAMPAIGN_KWARGS
    )
    return campaign.run(checkpoint_dir=checkpoint_dir)


@pytest.fixture(scope="module")
def serial_reference():
    return run_campaign()


class TestMixedFleetEquivalence:
    def test_fleet_is_actually_heterogeneous(self):
        table, index = MIXED.materialize(7, range(12))
        assert len(table) >= 3
        assert len({profile.sram_bytes for profile in table}) >= 2
        assert len(set(index)) == len(table)

    def test_result_carries_the_population_name(self, serial_reference):
        assert serial_reference.profile_name == "population:mix3"

    @pytest.mark.parametrize("workers", worker_counts())
    @pytest.mark.parametrize("kernel", ["scalar", "vector"])
    def test_sharded_and_vector_match_serial(
        self, workers, kernel, serial_reference
    ):
        if workers == 1 and kernel == "scalar":
            pytest.skip("the serial reference itself")
        assert_campaigns_identical(
            serial_reference, run_campaign(workers, kernel)
        )

    def test_checkpointed_run_matches_serial(self, serial_reference, tmp_path):
        result = run_campaign(checkpoint_dir=str(tmp_path))
        assert_campaigns_identical(serial_reference, result)

    @pytest.mark.parametrize("workers,kernel", [(1, "scalar"), (2, "vector")])
    def test_kill_and_resume_matches_serial(
        self, workers, kernel, serial_reference, tmp_path
    ):
        checkpoint_dir = str(tmp_path / f"ck-{workers}-{kernel}")
        reset_telemetry()
        campaign = LongTermCampaign(
            max_workers=workers, kernel=kernel, **CAMPAIGN_KWARGS
        )
        with pytest.raises(CampaignInterrupted):
            campaign.run(checkpoint_dir=checkpoint_dir, abort_after_month=1)
        reset_telemetry()
        result = LongTermCampaign.resume(
            checkpoint_dir, max_workers=workers, kernel=kernel
        )
        assert_campaigns_identical(serial_reference, result)

    def test_mixed_checkpoints_are_schema_v3(self, tmp_path):
        import json

        run_campaign(checkpoint_dir=str(tmp_path))
        path = os.path.join(str(tmp_path), "month-0000.json")
        with open(path) as handle:
            doc = json.load(handle)
        assert doc["checkpoint_version"] == 3
        assert doc["config"]["population"] == MIXED.to_doc()


class TestPopulationConfigGuards:
    def test_population_rejects_explicit_chips(self):
        from repro.sram.chip import SRAMChip

        chip = SRAMChip(0, random_state=0)
        campaign = LongTermCampaign(
            device_count=1, months=1, measurements=5, population=MIXED
        )
        with pytest.raises(ConfigurationError):
            campaign.run(chips=[chip])

    def test_population_type_is_validated(self):
        with pytest.raises(ConfigurationError):
            LongTermCampaign(
                device_count=2, months=1, measurements=5, population="mix3"
            )
