"""Golden statistical snapshot of the paper-scale campaign.

``golden_table1.json`` pins every Table I cell of the seed-1,
16-board, 24-month reference run.  The test re-runs that campaign —
serially and at the top of the worker ladder — and demands the same
numbers to within floating-point noise.  Any change to the RNG
topology, the metric pipeline, the aging model or the shard/merge
machinery moves these numbers and fails here first.

Regenerate the golden file only for an *intentional* model change::

    PYTHONPATH=src python -m tests.exec.test_golden --regenerate
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.core.assessment import AssessmentResult, LongTermAssessment
from repro.core.config import StudyConfig
from repro.io.resultstore import save_campaign
from repro.telemetry import reset_telemetry

from tests.exec.conftest import worker_counts

GOLDEN_PATH = Path(__file__).with_name("golden_table1.json")

#: Pure float round-trip tolerance; the simulation itself is exact.
RTOL = 1e-9


def _golden() -> dict:
    with GOLDEN_PATH.open() as fh:
        return json.load(fh)


def _run_reference(
    max_workers: int = 1,
    kernel: str = "scalar",
    checkpoint_dir: str = None,
) -> AssessmentResult:
    golden_config = _golden()["config"]
    reset_telemetry()
    return LongTermAssessment(
        StudyConfig(max_workers=max_workers, kernel=kernel, **golden_config)
    ).run(checkpoint_dir=checkpoint_dir)


def _summaries(result: AssessmentResult) -> dict:
    return {
        name: {
            "start_avg": s.start_avg,
            "end_avg": s.end_avg,
            "start_worst": s.start_worst,
            "end_worst": s.end_worst,
        }
        for name, s in result.table.summaries.items()
    }


def assert_matches_golden(result: AssessmentResult) -> None:
    expected = _golden()["summaries"]
    measured = _summaries(result)
    assert sorted(measured) == sorted(expected)
    for metric, cells in expected.items():
        for cell, want in cells.items():
            got = measured[metric][cell]
            assert math.isclose(got, want, rel_tol=RTOL), (
                f"{metric}.{cell}: golden {want!r}, measured {got!r}"
            )


class TestGoldenSnapshot:
    @pytest.fixture(scope="class")
    def reference(self) -> AssessmentResult:
        return _run_reference()

    def test_serial_run_matches_golden(self, reference):
        assert_matches_golden(reference)

    def test_parallel_run_matches_golden(self):
        assert_matches_golden(_run_reference(max_workers=max(worker_counts())))

    def test_headline_numbers_sit_in_the_paper_envelope(self, reference):
        """Sanity net under the golden file itself.

        The paper reports WCHD degrading from 2.49 % to 3.01 % over
        two years with most cells stable; if a regenerated golden file
        ever drifts outside these envelopes, the model is wrong, not
        just different.
        """
        wchd = reference.table["WCHD"]
        assert 0.020 < wchd.start_avg < 0.030
        assert wchd.start_avg < wchd.end_avg < 0.040
        stable = reference.table["Ratio of Stable Cells"]
        assert 0.80 < stable.end_avg < stable.start_avg < 0.95


def _tree_bytes(root: Path) -> dict:
    """Every file under ``root`` as ``{relative path: bytes}``."""
    return {
        str(path.relative_to(root)): path.read_bytes()
        for path in sorted(root.rglob("*"))
        if path.is_file()
    }


class TestVectorKernelGolden:
    """The vector kernel against the same golden file.

    ``StudyConfig.kernel`` is an execution knob, not a model knob: the
    batched engine must land on the *same* golden numbers — and, run
    side by side with the scalar engine, on byte-identical artifacts
    and checkpoint chains.
    """

    def test_serial_vector_run_matches_golden(self):
        assert_matches_golden(_run_reference(kernel="vector"))

    def test_parallel_vector_run_matches_golden(self):
        assert_matches_golden(
            _run_reference(max_workers=max(worker_counts()), kernel="vector")
        )

    def test_table_cells_equal_scalar_exactly(self):
        """Not just within-golden-tolerance: '==' against the scalar run."""
        scalar = _summaries(_run_reference())
        vector = _summaries(_run_reference(kernel="vector"))
        assert scalar == vector

    def test_artifact_and_checkpoint_chain_byte_identical(self, tmp_path):
        results = {}
        for kernel in ("scalar", "vector"):
            checkpoint_dir = tmp_path / kernel / "checkpoints"
            result = _run_reference(kernel=kernel, checkpoint_dir=str(checkpoint_dir))
            artifact = tmp_path / kernel / "campaign.json"
            save_campaign(result.campaign, str(artifact))
            results[kernel] = (artifact.read_bytes(), _tree_bytes(checkpoint_dir))
        scalar_artifact, scalar_chain = results["scalar"]
        vector_artifact, vector_chain = results["vector"]
        assert scalar_artifact == vector_artifact
        assert sorted(scalar_chain) == sorted(vector_chain)
        for name, payload in scalar_chain.items():
            assert payload == vector_chain[name], f"checkpoint file {name} differs"


def main() -> None:  # pragma: no cover - maintenance helper
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--regenerate", action="store_true")
    if not parser.parse_args().regenerate:
        parser.error("pass --regenerate to rewrite the golden file")
    doc = {"config": _golden()["config"], "summaries": _summaries(_run_reference())}
    GOLDEN_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"rewrote {GOLDEN_PATH}")


if __name__ == "__main__":  # pragma: no cover
    main()
