"""Golden statistical snapshot of the paper-scale campaign.

``golden_table1.json`` pins every Table I cell of the seed-1,
16-board, 24-month reference run.  The test re-runs that campaign —
serially and at the top of the worker ladder — and demands the same
numbers to within floating-point noise.  Any change to the RNG
topology, the metric pipeline, the aging model or the shard/merge
machinery moves these numbers and fails here first.

Regenerate the golden file only for an *intentional* model change::

    PYTHONPATH=src python -m tests.exec.test_golden --regenerate
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.core.assessment import AssessmentResult, LongTermAssessment
from repro.core.config import StudyConfig

from tests.exec.conftest import worker_counts

GOLDEN_PATH = Path(__file__).with_name("golden_table1.json")

#: Pure float round-trip tolerance; the simulation itself is exact.
RTOL = 1e-9


def _golden() -> dict:
    with GOLDEN_PATH.open() as fh:
        return json.load(fh)


def _run_reference(max_workers: int = 1) -> AssessmentResult:
    golden_config = _golden()["config"]
    return LongTermAssessment(
        StudyConfig(max_workers=max_workers, **golden_config)
    ).run()


def _summaries(result: AssessmentResult) -> dict:
    return {
        name: {
            "start_avg": s.start_avg,
            "end_avg": s.end_avg,
            "start_worst": s.start_worst,
            "end_worst": s.end_worst,
        }
        for name, s in result.table.summaries.items()
    }


def assert_matches_golden(result: AssessmentResult) -> None:
    expected = _golden()["summaries"]
    measured = _summaries(result)
    assert sorted(measured) == sorted(expected)
    for metric, cells in expected.items():
        for cell, want in cells.items():
            got = measured[metric][cell]
            assert math.isclose(got, want, rel_tol=RTOL), (
                f"{metric}.{cell}: golden {want!r}, measured {got!r}"
            )


class TestGoldenSnapshot:
    @pytest.fixture(scope="class")
    def reference(self) -> AssessmentResult:
        return _run_reference()

    def test_serial_run_matches_golden(self, reference):
        assert_matches_golden(reference)

    def test_parallel_run_matches_golden(self):
        assert_matches_golden(_run_reference(max_workers=max(worker_counts())))

    def test_headline_numbers_sit_in_the_paper_envelope(self, reference):
        """Sanity net under the golden file itself.

        The paper reports WCHD degrading from 2.49 % to 3.01 % over
        two years with most cells stable; if a regenerated golden file
        ever drifts outside these envelopes, the model is wrong, not
        just different.
        """
        wchd = reference.table["WCHD"]
        assert 0.020 < wchd.start_avg < 0.030
        assert wchd.start_avg < wchd.end_avg < 0.040
        stable = reference.table["Ratio of Stable Cells"]
        assert 0.80 < stable.end_avg < stable.start_avg < 0.95


def main() -> None:  # pragma: no cover - maintenance helper
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--regenerate", action="store_true")
    if not parser.parse_args().regenerate:
        parser.error("pass --regenerate to rewrite the golden file")
    doc = {"config": _golden()["config"], "summaries": _summaries(_run_reference())}
    GOLDEN_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"rewrote {GOLDEN_PATH}")


if __name__ == "__main__":  # pragma: no cover
    main()
