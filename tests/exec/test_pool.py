"""WindowPool: one pool lifetime per campaign, plus the warm board cache.

The regression this suite pins down: before :class:`WindowPool`, the
checkpointed month-window driver built a fresh ``ProcessPoolExecutor``
for every month's dispatch.  ``spawn_count`` counts pool constructions,
so a multi-month campaign through an injected pool must leave it at 1.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Tuple

import pytest

from repro.analysis.campaign import LongTermCampaign
from repro.errors import CampaignExecutionError, ConfigurationError
from repro.exec.executor import ParallelExecutor, SerialExecutor
from repro.exec.pool import WindowPool
from repro.exec.windows import clear_window_cache, state_digest, window_cache_stats

from tests.exec.conftest import assert_campaigns_identical

PARAMS = dict(device_count=3, months=3, measurements=60, temperature_walk_k=1.0)
SEED = 13


def make_campaign(max_workers: int = 1) -> LongTermCampaign:
    return LongTermCampaign(max_workers=max_workers, random_state=SEED, **PARAMS)


@dataclass(frozen=True)
class EchoSpec:
    """Minimal executor work order (module-level: picklable for spawn)."""

    shard_index: int
    payload: int
    board_ids: Tuple[int, ...] = field(default=())


def echo(spec: EchoSpec) -> int:
    return spec.payload * 2


def boom(spec: EchoSpec) -> int:
    raise ValueError("window exploded")


class TestValidation:
    def test_max_workers_below_one_rejected(self):
        with pytest.raises(ConfigurationError, match="max_workers"):
            WindowPool(0)

    def test_fork_start_method_rejected(self):
        with pytest.raises(ConfigurationError, match="'spawn' or 'forkserver'"):
            WindowPool(2, start_method="fork")

    def test_unavailable_start_method_rejected(self, monkeypatch):
        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        with pytest.raises(ConfigurationError, match="not available"):
            WindowPool(2, start_method="forkserver")


class TestAdopt:
    def test_caller_owned_pool_passes_through(self):
        pool = WindowPool(2)
        assert WindowPool.adopt(pool) is pool

    def test_single_worker_executor_passes_through(self):
        serial = SerialExecutor()
        assert WindowPool.adopt(serial) is serial

    def test_multi_worker_executor_is_wrapped(self):
        adopted = WindowPool.adopt(ParallelExecutor(max_workers=2))
        assert isinstance(adopted, WindowPool)
        assert adopted.max_workers == 2


class TestDispatch:
    def test_single_worker_runs_inline_without_spawning(self):
        pool = WindowPool(1)
        specs = [EchoSpec(i, i) for i in range(3)]
        assert pool.run_tasks(echo, specs) == [0, 2, 4]
        assert pool.spawn_count == 0

    def test_single_spec_runs_inline_even_on_wide_pool(self):
        pool = WindowPool(4)
        assert pool.run_tasks(echo, [EchoSpec(0, 21)]) == [42]
        assert pool.spawn_count == 0
        pool.close()

    def test_empty_dispatch_is_a_no_op(self):
        pool = WindowPool(4)
        assert pool.run_tasks(echo, []) == []
        assert pool.spawn_count == 0

    def test_pool_survives_repeated_dispatches(self):
        with WindowPool(2) as pool:
            for round_index in range(3):
                specs = [EchoSpec(i, round_index + i) for i in range(2)]
                expected = [(round_index + i) * 2 for i in range(2)]
                assert pool.run_tasks(echo, specs) == expected
            assert pool.spawn_count == 1

    def test_respawn_after_close(self):
        pool = WindowPool(2)
        specs = [EchoSpec(i, i) for i in range(2)]
        pool.run_tasks(echo, specs)
        assert pool.spawn_count == 1
        pool.close()
        pool.close()  # idempotent
        pool.run_tasks(echo, specs)
        assert pool.spawn_count == 2
        pool.close()

    def test_failure_discards_the_pool(self):
        pool = WindowPool(2)
        specs = [EchoSpec(i, i) for i in range(2)]
        pool.run_tasks(echo, specs)
        with pytest.raises(CampaignExecutionError):
            pool.run_tasks(boom, specs)
        # The poisoned pool was dropped; the next dispatch respawns.
        assert pool.run_tasks(echo, specs) == [0, 2]
        assert pool.spawn_count == 2
        pool.close()


class TestPoolReuseRegression:
    def test_one_spawn_across_a_whole_campaign(self, tmp_path):
        baseline = make_campaign().run()
        with WindowPool(2) as pool:
            result = make_campaign(max_workers=2).run(
                checkpoint_dir=str(tmp_path / "ckpt"), executor=pool
            )
            assert pool.spawn_count == 1
            assert_campaigns_identical(baseline, result)
            # A caller-owned pool stays open across campaigns too.
            again = make_campaign(max_workers=2).run(
                checkpoint_dir=str(tmp_path / "ckpt2"), executor=pool
            )
            assert pool.spawn_count == 1
            assert_campaigns_identical(baseline, again)


class TestWarmBoardCache:
    def test_state_digest_ignores_key_order(self):
        assert state_digest({"a": 1, "b": [2, 3]}) == state_digest(
            {"b": [2, 3], "a": 1}
        )
        assert state_digest({"a": 1}) != state_digest({"a": 2})

    def test_clear_resets_statistics(self):
        clear_window_cache()
        assert window_cache_stats() == {"hits": 0, "misses": 0}

    def test_inline_campaign_hits_the_cache_every_restore(self, tmp_path):
        # Single-worker windows run inline in this process, so the
        # parent's cache statistics are directly observable: month 0
        # manufactures (no lookup), every later month's restore hits.
        clear_window_cache()
        make_campaign().run(checkpoint_dir=str(tmp_path / "ckpt"))
        stats = window_cache_stats()
        assert stats["hits"] == PARAMS["device_count"] * PARAMS["months"]
        assert stats["misses"] == 0
        clear_window_cache()
