"""The serial≡parallel equivalence gate.

The executor's contract is absolute: for the same seed, a campaign
sharded over any number of workers produces **byte-identical** output
to the serial loop — every snapshot array, the day-0 references, the
saved JSON artifact, the Table I summaries and the alert log.  These
tests are the contract's enforcement; if any of them fails, the
parallel path is wrong, no matter how fast it is.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.campaign import LongTermCampaign
from repro.core.assessment import LongTermAssessment
from repro.core.config import StudyConfig
from repro.exec import ParallelExecutor, SerialExecutor, executor_for
from repro.io.resultstore import save_campaign
from repro.monitor.defaults import default_ruleset
from repro.monitor.hub import MonitorHub
from repro.telemetry import get_metrics, reset_telemetry

from tests.exec.conftest import assert_campaigns_identical, worker_counts

#: Paper-shaped but fast: a fleet with an ambient temperature walk so
#: the shared ``ambient-temperature`` stream is exercised too.
STATISTICAL = dict(
    device_count=5, months=3, measurements=120, temperature_walk_k=1.5
)
#: Full measurement-level fidelity on a smaller block.
FULL_SIM = dict(device_count=4, months=2, measurements=40, statistical=False)

SEED = 7


def _run(config: dict, workers: int):
    """One campaign run at the given worker count, metrics isolated."""
    reset_telemetry()
    campaign = LongTermCampaign(random_state=SEED, max_workers=workers, **config)
    result = campaign.run()
    counters = {
        name: doc["value"]
        for name, doc in get_metrics().snapshot().items()
        if doc["type"] == "counter"
    }
    return result, counters


class TestCampaignEquivalence:
    @pytest.mark.parametrize("workers", [w for w in worker_counts() if w > 1])
    @pytest.mark.parametrize(
        "config", [STATISTICAL, FULL_SIM], ids=["statistical", "full-sim"]
    )
    def test_parallel_matches_serial_bit_for_bit(self, config, workers):
        serial, serial_counters = _run(config, workers=1)
        parallel, parallel_counters = _run(config, workers=workers)
        assert_campaigns_identical(serial, parallel)
        assert serial_counters == parallel_counters

    def test_in_process_sharded_path_matches_serial(self):
        """SerialExecutor exercises the shard/merge machinery alone."""
        serial, _ = _run(STATISTICAL, workers=1)
        reset_telemetry()
        sharded = LongTermCampaign(random_state=SEED, **STATISTICAL).run(
            executor=SerialExecutor()
        )
        assert_campaigns_identical(serial, sharded)

    def test_more_workers_than_boards(self):
        """Oversized pools must degrade to one board per shard, not break."""
        config = dict(device_count=2, months=2, measurements=50)
        serial, _ = _run(config, workers=1)
        reset_telemetry()
        parallel = LongTermCampaign(random_state=SEED, **config).run(
            executor=ParallelExecutor(8)
        )
        assert_campaigns_identical(serial, parallel)

    def test_saved_artifacts_are_byte_identical(self, tmp_path):
        serial, _ = _run(STATISTICAL, workers=1)
        parallel, _ = _run(STATISTICAL, workers=2)
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        save_campaign(serial, str(serial_path))
        save_campaign(parallel, str(parallel_path))
        assert serial_path.read_bytes() == parallel_path.read_bytes()

    def test_progress_callback_covers_every_snapshot(self):
        calls = []
        reset_telemetry()
        LongTermCampaign(random_state=SEED, **STATISTICAL).run(
            progress=lambda done, total: calls.append((done, total)),
            executor=executor_for(2),
        )
        total = STATISTICAL["months"] + 1
        assert calls == [(i + 1, total) for i in range(total)]


class TestAssessmentEquivalence:
    def test_summaries_and_manifest_match_serial(self):
        config = StudyConfig(device_count=5, months=3, measurements=120, seed=3)
        reset_telemetry()
        serial = LongTermAssessment(config).run()
        serial_metrics = get_metrics().snapshot()

        parallel_config = StudyConfig(
            device_count=5, months=3, measurements=120, seed=3, max_workers=4
        )
        reset_telemetry()
        parallel = LongTermAssessment(parallel_config).run()
        parallel_metrics = get_metrics().snapshot()

        assert_campaigns_identical(serial.campaign, parallel.campaign)
        assert serial.manifest.summaries == parallel.manifest.summaries
        # The whole instrument catalogue — names, types and values —
        # must be indistinguishable between the two runs.
        assert serial_metrics == parallel_metrics
        # Manifests differ only where they must: the worker knob.
        assert serial.manifest.config.pop("max_workers") == 1
        assert parallel.manifest.config.pop("max_workers") == 4
        assert serial.manifest.config == parallel.manifest.config


def _accelerated_monitored_run(workers: int, alert_log: str, kernel: str = "scalar"):
    """A stressed fleet whose drift trips the default ruleset."""
    reset_telemetry()
    config = StudyConfig(
        device_count=16,
        months=6,
        measurements=150,
        seed=0,
        aging_acceleration=14.0,
        max_workers=workers,
        kernel=kernel,
    )
    hub = MonitorHub(default_ruleset(), alert_log=alert_log)
    LongTermAssessment(config).run(monitor=hub)
    return hub


class TestAlertEquivalence:
    def test_alert_log_byte_identical_and_sequence_preserved(self, tmp_path):
        serial_log = tmp_path / "serial.alerts.jsonl"
        parallel_log = tmp_path / "parallel.alerts.jsonl"
        serial_hub = _accelerated_monitored_run(1, str(serial_log))
        parallel_hub = _accelerated_monitored_run(4, str(parallel_log))

        # The stressed run must actually alert, otherwise this test
        # would pass vacuously on two empty logs.
        assert serial_hub.alert_count > 0
        assert serial_log.read_bytes() == parallel_log.read_bytes()

        serial_alerts = [
            (a.rule, a.metric, a.severity, a.index, a.value)
            for a in serial_hub.alerts
        ]
        parallel_alerts = [
            (a.rule, a.metric, a.severity, a.index, a.value)
            for a in parallel_hub.alerts
        ]
        assert serial_alerts == parallel_alerts
        # And the log is real JSONL naming the drift rule.
        lines = [
            json.loads(line)
            for line in serial_log.read_text().splitlines()
            if line.strip()
        ]
        assert any(doc["rule"] == "wchd-drift" for doc in lines)

    @pytest.mark.parametrize("workers", worker_counts())
    def test_vector_kernel_alert_log_matches_scalar(self, tmp_path, workers):
        """The kernel knob must not move a single alert byte."""
        scalar_log = tmp_path / "scalar.alerts.jsonl"
        vector_log = tmp_path / f"vector-w{workers}.alerts.jsonl"
        scalar_hub = _accelerated_monitored_run(1, str(scalar_log))
        _accelerated_monitored_run(workers, str(vector_log), kernel="vector")
        assert scalar_hub.alert_count > 0
        assert scalar_log.read_bytes() == vector_log.read_bytes()
