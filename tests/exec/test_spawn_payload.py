"""Spawn payloads stay sublinear in fleet size via profile interning.

A :class:`~repro.exec.plan.ShardSpec` carries the shard's *distinct*
profiles once (``profiles``) plus per-board indices (``profile_index``)
rather than one :class:`~repro.sram.profiles.DeviceProfile` per board —
the ``spawn`` start method pickles every spec, so a 100k-board fleet
must not ship 100k profile copies.  These tests pin that contract and
the ``profile`` / ``profiles`` normalization the specs share.
"""

import dataclasses
import pickle

import pytest

from repro.errors import ConfigurationError
from repro.exec.plan import ShardSpec
from repro.exec.windows import BoardWindowState, WindowSpec
from repro.sram.population import PopulationMember, PopulationSpec
from repro.sram.profiles import ATMEGA32U4, DFF_PUF

MIXED = PopulationSpec(
    name="payload-mix",
    members=(
        PopulationMember(
            "ATmega32u4",
            weight=2.0,
            lots=2,
            skew_mean_spread_v=0.002,
            skew_sigma_spread=0.05,
        ),
        PopulationMember("dff-puf", noise_sigma_spread=0.1),
        PopulationMember("65nm-testchip", lots=3, sram_bytes_choices=(4096, 8192)),
    ),
)


def mixed_shard(board_count: int) -> ShardSpec:
    table, index = MIXED.materialize(7, range(board_count))
    return ShardSpec(
        shard_index=0,
        root_seed=7,
        board_ids=tuple(range(board_count)),
        months=2,
        measurements=10,
        profiles=table,
        profile_index=index,
        temperatures=(None, None, None),
    )


class TestPayloadSublinearity:
    def test_profile_table_stays_bounded_as_the_fleet_grows(self):
        lots_total = sum(m.lots for m in MIXED.members)
        for board_count in (16, 256, 4096):
            table, index = MIXED.materialize(7, range(board_count))
            assert len(table) <= lots_total
            assert len(index) == board_count

    def test_payload_grows_by_indices_not_profiles(self):
        small = len(pickle.dumps(mixed_shard(64)))
        large = len(pickle.dumps(mixed_shard(4096)))
        per_board = (large - small) / (4096 - 64)
        # Board ids + profile indices cost a few bytes per board; one
        # pickled DeviceProfile alone costs hundreds.  If profiles were
        # shipped per board the slope would blow straight past this.
        one_profile = len(pickle.dumps(ATMEGA32U4))
        assert per_board < 16
        assert per_board * 64 < one_profile

    def test_profile_field_names_do_not_multiply_with_boards(self):
        marker = b"bti_dispersion_v"
        small = pickle.dumps(mixed_shard(64)).count(marker)
        large = pickle.dumps(mixed_shard(4096)).count(marker)
        assert small == large

    def test_pickle_round_trip_preserves_board_profiles(self):
        shard = mixed_shard(128)
        clone = pickle.loads(pickle.dumps(shard))
        assert clone == shard
        assert clone.board_profiles == shard.board_profiles
        for position in range(len(shard.board_ids)):
            assert clone.profile_for_position(position) == shard.profile_for_position(
                position
            )


class TestProfileFieldNormalization:
    def kwargs(self, **overrides):
        base = dict(
            shard_index=0,
            root_seed=1,
            board_ids=(0, 1, 2),
            months=1,
            measurements=5,
            temperatures=(None, None),
        )
        base.update(overrides)
        return base

    def test_homogeneous_shorthand_expands_to_a_table(self):
        shard = ShardSpec(**self.kwargs(profile=ATMEGA32U4))
        assert shard.profiles == (ATMEGA32U4,)
        assert shard.profile_index == (0, 0, 0)
        assert shard.homogeneous

    def test_homogeneous_table_backfills_profile(self):
        shard = ShardSpec(
            **self.kwargs(profiles=(ATMEGA32U4,), profile_index=(0, 0, 0))
        )
        assert shard.profile == ATMEGA32U4
        assert shard.homogeneous

    def test_heterogeneous_table_keeps_profile_unset(self):
        shard = ShardSpec(
            **self.kwargs(profiles=(ATMEGA32U4, DFF_PUF), profile_index=(0, 1, 0))
        )
        assert shard.profile is None
        assert not shard.homogeneous
        assert shard.board_profiles == (ATMEGA32U4, DFF_PUF, ATMEGA32U4)

    def test_replace_round_trip_survives_normalization(self):
        shard = ShardSpec(**self.kwargs(profile=ATMEGA32U4))
        clone = dataclasses.replace(shard, fail_board=1)
        assert clone.profiles == shard.profiles
        assert clone.profile_index == shard.profile_index

    def test_conflicting_profile_and_table_rejected(self):
        with pytest.raises(ConfigurationError, match="not both"):
            ShardSpec(
                **self.kwargs(
                    profile=ATMEGA32U4,
                    profiles=(DFF_PUF,),
                    profile_index=(0, 0, 0),
                )
            )

    def test_missing_profile_information_rejected(self):
        with pytest.raises(ConfigurationError, match="profile"):
            ShardSpec(**self.kwargs())

    def test_misaligned_index_rejected(self):
        with pytest.raises(ConfigurationError, match="align"):
            ShardSpec(
                **self.kwargs(profiles=(ATMEGA32U4,), profile_index=(0,))
            )

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ConfigurationError, match="point into"):
            ShardSpec(
                **self.kwargs(profiles=(ATMEGA32U4,), profile_index=(0, 1, 0))
            )

    def test_window_spec_shares_the_normalization(self):
        window = WindowSpec(
            shard_index=0,
            month=0,
            root_seed=1,
            measurements=5,
            boards=(BoardWindowState(0), BoardWindowState(1)),
            profiles=(ATMEGA32U4, DFF_PUF),
            profile_index=(1, 0),
        )
        assert window.profile is None
        assert window.board_profiles == (DFF_PUF, ATMEGA32U4)
