"""Seed-isolation regression tests.

The parallel engine is only correct because every board's randomness
is isolated in its own named stream of the
:class:`~repro.rng.SeedHierarchy` (``chip-<id>``, spawn-keyed by a
stable SHA-256 hash).  These tests pin that property at the worker
level: reordering boards, dropping boards, or re-partitioning the
fleet must leave every remaining board's trajectory — reference,
monthly metrics, first read-outs — exactly unchanged.  If someone ever
reworks :class:`SeedHierarchy` to derive streams positionally, this
file is what fails.
"""

from __future__ import annotations

import numpy as np

from repro.exec.plan import ShardSpec
from repro.exec.worker import run_board_shard
from repro.rng import SeedHierarchy
from repro.sram.profiles import ATMEGA32U4

SEED = 21
MONTHS = 2
MEASUREMENTS = 60


def _spec(board_ids, **overrides) -> ShardSpec:
    spec = dict(
        shard_index=0,
        root_seed=SEED,
        board_ids=tuple(board_ids),
        months=MONTHS,
        measurements=MEASUREMENTS,
        profile=ATMEGA32U4,
        statistical=True,
        temperatures=(None,) * (MONTHS + 1),
    )
    spec.update(overrides)
    return ShardSpec(**spec)


def _trajectories(board_ids, **overrides):
    result = run_board_shard(_spec(board_ids, **overrides))
    return {t.board_id: t for t in result.trajectories}


def assert_trajectory_equal(a, b) -> None:
    assert a.board_id == b.board_id
    np.testing.assert_array_equal(a.reference, b.reference)
    assert len(a.months) == len(b.months)
    for row_a, row_b in zip(a.months, b.months):
        assert row_a.wchd == row_b.wchd
        assert row_a.fhw == row_b.fhw
        assert row_a.stable_ratio == row_b.stable_ratio
        assert row_a.noise_entropy == row_b.noise_entropy
        np.testing.assert_array_equal(row_a.first_readout, row_b.first_readout)


class TestBoardStreamIsolation:
    def test_execution_order_does_not_matter(self):
        forward = _trajectories([0, 1, 2, 3])
        reversed_ = _trajectories([3, 2, 1, 0])
        for board in range(4):
            assert_trajectory_equal(forward[board], reversed_[board])

    def test_dropping_boards_leaves_the_rest_unchanged(self):
        full = _trajectories([0, 1, 2, 3, 4])
        subset = _trajectories([1, 3])
        for board in (1, 3):
            assert_trajectory_equal(full[board], subset[board])

    def test_single_board_shards_match_the_grouped_shard(self):
        grouped = _trajectories([0, 1, 2])
        for board in range(3):
            alone = _trajectories([board])
            assert_trajectory_equal(grouped[board], alone[board])

    def test_different_shard_index_does_not_perturb_streams(self):
        """Only board identity may select randomness, never placement."""
        shard0 = _trajectories([2], shard_index=0)
        shard5 = _trajectories([2], shard_index=5)
        assert_trajectory_equal(shard0[2], shard5[2])


class TestSpawnKeyStability:
    def test_chip_streams_are_name_keyed_not_order_keyed(self):
        """Requesting streams in any order yields identical sequences."""
        a = SeedHierarchy(SEED)
        b = SeedHierarchy(SEED)
        a.stream("chip-0")  # extra derivations must not shift chip-7
        a.stream("chip-3")
        draws_a = a.stream("chip-7").random(8)
        draws_b = b.stream("chip-7").random(8)
        np.testing.assert_array_equal(draws_a, draws_b)

    def test_rebuilt_hierarchy_reproduces_worker_streams(self):
        """A spawned worker sees the exact streams of the parent."""
        parent = SeedHierarchy(SEED)
        worker_side = SeedHierarchy(parent.root_seed)  # what ShardSpec ships
        np.testing.assert_array_equal(
            parent.stream("chip-11").random(16),
            worker_side.stream("chip-11").random(16),
        )
