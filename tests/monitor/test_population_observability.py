"""Per-profile rollup scopes: pinned rules, cohort rulesets, status rows."""

import pytest

from repro.analysis.campaign import LongTermCampaign
from repro.errors import ConfigurationError
from repro.monitor.defaults import population_ruleset
from repro.monitor.hub import MonitorHub, parse_rollup_metric, rollup_scope_selector
from repro.sram.population import PopulationMember, PopulationSpec
from repro.telemetry import get_rollups, reset_telemetry
from repro.telemetry.rollup import evaluation_profile_docs, profile_rollup_doc_name

MIXED = PopulationSpec(
    name="obs-mix",
    members=(
        PopulationMember("ATmega32u4", weight=2.0),
        PopulationMember("dff-puf"),
    ),
)


@pytest.fixture(autouse=True)
def clean_registry():
    reset_telemetry()
    yield
    reset_telemetry()


def run_mixed_campaign():
    campaign = LongTermCampaign(
        device_count=8,
        months=2,
        measurements=20,
        population=MIXED,
        random_state=7,
    )
    return campaign.run()


class TestPinnedScopeGrammar:
    def test_pinned_scope_parses(self):
        assert parse_rollup_metric("rollup:wchd.p99@profile=ATmega32u4") == (
            "wchd",
            "p99",
            "profile=ATmega32u4",
        )

    @pytest.mark.parametrize(
        "metric",
        [
            "rollup:wchd.p99@profile=",  # pin without a value
            "rollup:wchd.p99@=ATmega32u4",  # value without a scope
        ],
    )
    def test_malformed_pins_rejected(self, metric):
        with pytest.raises(ConfigurationError, match="malformed scope"):
            parse_rollup_metric(metric)

    def test_selector_for_bare_scope(self):
        assert rollup_scope_selector("shard") == {"scope": "shard"}

    def test_selector_for_pinned_scope(self):
        assert rollup_scope_selector("profile=dff-puf") == {
            "scope": "profile",
            "profile": "dff-puf",
        }


class TestProfileRollupDocs:
    def test_doc_names_carry_profile_labels(self):
        assert (
            profile_rollup_doc_name("wchd", "ATmega32u4")
            == "rollup.wchd{profile=ATmega32u4,scope=profile}"
        )

    def test_mixed_campaign_registers_profile_series(self):
        run_mixed_campaign()
        rollups = get_rollups()
        for profile in MIXED.profile_names:
            series = rollups.select(
                "rollup.wchd", scope="profile", profile=profile
            )
            assert len(series) == 1
            name, summary = series[0]
            # One observation per cohort board per month snapshot.
            assert summary.count > 0
        fleet = rollups.select("rollup.wchd", scope="fleet")
        (_, fleet_summary), = fleet
        cohort_total = sum(
            summary.count
            for profile in MIXED.profile_names
            for _, summary in rollups.select(
                "rollup.wchd", scope="profile", profile=profile
            )
        )
        assert cohort_total == fleet_summary.count

    def test_homogeneous_campaign_registers_no_profile_series(self):
        campaign = LongTermCampaign(
            device_count=4, months=1, measurements=10, random_state=1
        )
        campaign.run()
        assert get_rollups().select("rollup.wchd", scope="profile") == []

    def test_evaluation_profile_docs_split_by_cohort(self):
        result = run_mixed_campaign()
        labels = MIXED.member_labels(7, range(8))
        docs = evaluation_profile_docs(
            result.snapshots[0], lambda board: labels[board]
        )
        for profile in set(labels):
            key = profile_rollup_doc_name("wchd", profile)
            assert docs[key]["count"] == labels.count(profile)


class TestPopulationRuleset:
    def test_two_rules_per_distinct_profile(self):
        rules = population_ruleset(MIXED)
        names = {rule.name for rule in rules}
        assert names == {
            "profile-wchd-p99-ATmega32u4",
            "profile-stable-ratio-min-ATmega32u4",
            "profile-wchd-p99-dff-puf",
            "profile-stable-ratio-min-dff-puf",
        }
        metrics = {rule.metric for rule in rules}
        assert "rollup:wchd.p99@profile=dff-puf" in metrics

    def test_noisier_profiles_get_looser_envelopes(self):
        # dff-puf's noise/mismatch ratio exceeds the ATmega reference,
        # so its WCHD ceiling must sit strictly higher: a value that
        # trips the ATmega rule stays quiet for the dff cohort.
        rules = {rule.name: rule for rule in population_ruleset(MIXED)}
        atmega = rules["profile-wchd-p99-ATmega32u4"].detector_factory()
        dff = rules["profile-wchd-p99-dff-puf"].detector_factory()
        probe = 0.05  # above ATmega's scaled ceiling, below dff's
        assert atmega.update(probe).triggered
        assert not dff.update(probe).triggered

    def test_pinned_rules_attribute_alerts_to_the_cohort(self):
        from repro.monitor.alerts import AlertRule
        from repro.monitor.detectors import StaticThresholdDetector

        run_mixed_campaign()
        # A ceiling of -1 breaches on any real observation, so the
        # test exercises the pin -> series -> drill-down wiring rather
        # than the calibrated thresholds.
        hub = MonitorHub(
            [
                AlertRule(
                    name="cohort-probe",
                    metric="rollup:wchd.p99@profile=dff-puf",
                    detector_factory=lambda: StaticThresholdDetector(upper=-1.0),
                )
            ]
        )
        alerts = hub.observe_rollups(index=2)
        assert len(alerts) == 1
        assert alerts[0].path == "profile=dff-puf/wchd.p99"


class TestStatusDashboard:
    def test_profile_rows_render_after_shard_rows(self):
        from repro.monitor.status import CampaignStatus, render_status

        stats = {"count": 4, "mean": 0.02, "p50": 0.02, "p99": 0.03, "max": 0.03}
        heartbeat = {
            "completed": 3,
            "total": 3,
            "month": 2,
            "wall_s": 1.0,
            "rollups": {
                "rollup.wchd{scope=fleet}": stats,
                "rollup.wchd{scope=shard,shard=0}": stats,
                "rollup.wchd{profile=dff-puf,scope=profile}": stats,
                "rollup.wchd{profile=ATmega32u4,scope=profile}": stats,
            },
        }
        text = render_status(
            CampaignStatus(target="a.json", heartbeat=heartbeat)
        )
        lines = [line.strip() for line in text.splitlines()]
        fleet = next(i for i, l in enumerate(lines) if l.startswith("fleet"))
        shard = next(i for i, l in enumerate(lines) if l.startswith("shard=0"))
        atmega = next(
            i for i, l in enumerate(lines) if l.startswith("profile=ATmega32u4")
        )
        dff = next(
            i for i, l in enumerate(lines) if l.startswith("profile=dff-puf")
        )
        assert fleet < shard < atmega < dff
