"""The ISSUE acceptance scenario: quiet nominal runs, loud stressed ones.

A monitored default-config campaign (the paper's 16 boards over 24
months) must raise zero default-ruleset alerts, while the same fleet
aged through the :mod:`repro.physics.acceleration` path must raise the
``wchd-drift`` alert at the first month the fleet-mean WCHD leaves the
paper's power-law trend band.
"""

import numpy as np
import pytest

from repro.core.assessment import LongTermAssessment
from repro.core.config import StudyConfig
from repro.monitor.defaults import (
    WCHD_TREND_BAND,
    default_ruleset,
    paper_wchd_trend,
)
from repro.monitor.hub import MonitorHub
from repro.physics.acceleration import AccelerationModel
from repro.sram.profiles import ATMEGA32U4
from repro.telemetry import reset_telemetry


@pytest.fixture(autouse=True)
def clean_registry():
    reset_telemetry()
    yield
    reset_telemetry()


def accelerated_config(months=8, seed=0) -> StudyConfig:
    """A stressed campaign: mild oven (40 C) at nominal supply.

    The acceleration factor flows through the physics path — an
    Arrhenius/voltage :class:`AccelerationModel` converted to the BTI
    time-compression factor ``AF ** (1/n)`` (about 14x here).
    """
    profile = ATMEGA32U4
    bti = profile.bti_model()
    model = AccelerationModel(
        use_temperature_k=profile.temperature_k,
        use_voltage_v=profile.supply_v,
        stress_temperature_k=profile.temperature_k + 15.0,
        stress_voltage_v=profile.supply_v,
        activation_energy_ev=bti.activation_energy_ev,
        voltage_exponent=bti.voltage_exponent,
    )
    acceleration = model.overall_factor ** (1.0 / profile.bti_time_exponent)
    assert acceleration > 5.0  # a real stress condition, not a nudge
    return StudyConfig(months=months, seed=seed, aging_acceleration=acceleration)


class TestPaperTrend:
    def test_anchored_at_table1(self):
        trend = paper_wchd_trend()
        assert float(trend.predict(np.array([0.0]))[0]) == pytest.approx(0.0249)
        assert float(trend.predict(np.array([24.0]))[0]) == pytest.approx(0.0297)

    def test_ruleset_covers_the_issue_envelopes(self):
        names = {rule.name for rule in default_ruleset()}
        assert {"wchd-drift", "noise-entropy-floor", "trng-health-spike"} <= names
        metrics = {rule.metric for rule in default_ruleset()}
        assert "rate:trng.health_rejections" in metrics

    def test_rules_build_fresh_detectors(self):
        rule = default_ruleset()[0]
        assert rule.detector_factory() is not rule.detector_factory()


class TestAcceptance:
    def test_default_campaign_raises_zero_alerts(self):
        hub = MonitorHub(default_ruleset())
        result = LongTermAssessment(StudyConfig()).run(monitor=hub)
        assert hub.alert_count == 0, [a.detail for a in hub.alerts]
        # The hub observed every snapshot (paranoia: silence must not
        # mean "nothing was fed").
        assert result.campaign.months == 24

    def test_accelerated_campaign_raises_wchd_drift_at_breach_month(self):
        config = accelerated_config()
        hub = MonitorHub(default_ruleset())
        result = LongTermAssessment(config).run(monitor=hub)

        drift_alerts = [a for a in hub.alerts if a.rule == "wchd-drift"]
        assert drift_alerts, "accelerated aging must trip the drift rule"
        assert drift_alerts[0].severity == "critical"

        # The alert month is exactly the first month the fleet-mean
        # WCHD left the paper's trend band.
        trend = paper_wchd_trend()
        months = np.arange(config.months + 1, dtype=float)
        fleet_mean = np.array(
            [float(s.wchd.mean()) for s in result.campaign.snapshots]
        )
        breaches = fleet_mean > trend.predict(months) + WCHD_TREND_BAND
        assert breaches.any()
        expected_month = int(np.argmax(breaches))
        assert drift_alerts[0].index == expected_month
        assert expected_month > 0  # month 0 is pre-aging and must be quiet

    def test_monitored_run_is_bit_identical_to_unmonitored(self):
        config = StudyConfig(device_count=3, months=3, measurements=100, seed=5)
        plain = LongTermAssessment(config).run()
        monitored = LongTermAssessment(config).run(monitor=MonitorHub(default_ruleset()))
        for snap_a, snap_b in zip(
            plain.campaign.snapshots, monitored.campaign.snapshots
        ):
            np.testing.assert_array_equal(snap_a.wchd, snap_b.wchd)
            np.testing.assert_array_equal(snap_a.fhw, snap_b.fhw)
            np.testing.assert_array_equal(snap_a.noise_entropy, snap_b.noise_entropy)
