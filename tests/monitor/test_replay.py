"""Replaying saved campaigns through the hub, and the alert timeline."""

import numpy as np
import pytest

from repro.analysis.campaign import LongTermCampaign
from repro.io.resultstore import load_campaign, save_campaign
from repro.monitor.alerts import Alert, AlertRule, alert_log_path_for, load_alert_log
from repro.monitor.detectors import StaticThresholdDetector
from repro.monitor.hub import MonitorHub
from repro.monitor.replay import render_alert_timeline, replay_campaign
from repro.telemetry import reset_telemetry


@pytest.fixture(autouse=True)
def clean_registry():
    reset_telemetry()
    yield
    reset_telemetry()


@pytest.fixture(scope="module")
def small_campaign():
    return LongTermCampaign(
        device_count=3, months=3, measurements=100, random_state=3
    ).run()


class TestReplay:
    def test_replay_matches_online_monitoring(self, small_campaign):
        def build_hub():
            return MonitorHub(
                [
                    AlertRule(
                        name="hw-ceiling",
                        metric="fhw.mean",
                        # Deliberately inside the healthy range so the
                        # rule fires on every snapshot.
                        detector_factory=lambda: StaticThresholdDetector(upper=0.5),
                    )
                ]
            )

        replayed = replay_campaign(small_campaign, build_hub())
        online_hub = build_hub()
        for snapshot in small_campaign.snapshots:
            online_hub.observe_evaluation(snapshot)
        assert replayed == online_hub.alerts
        assert [a.index for a in replayed] == [0, 1, 2, 3]

    def test_round_trip_through_resultstore(self, small_campaign, tmp_path):
        path = str(tmp_path / "campaign.json")
        save_campaign(small_campaign, path)
        hub = MonitorHub(
            [
                AlertRule(
                    name="hw-ceiling",
                    metric="fhw.mean",
                    detector_factory=lambda: StaticThresholdDetector(upper=0.5),
                )
            ]
        )
        alerts = replay_campaign(load_campaign(path), hub)
        assert len(alerts) == len(small_campaign.snapshots)

    def test_save_campaign_writes_alert_log(self, small_campaign, tmp_path):
        path = str(tmp_path / "campaign.json")
        alerts = [Alert("r", "wchd.mean", "warning", 2, 0.04, detail="x")]
        save_campaign(small_campaign, path, alerts=alerts)
        assert load_alert_log(alert_log_path_for(path)) == alerts

    def test_save_campaign_empty_alert_log(self, small_campaign, tmp_path):
        path = str(tmp_path / "campaign.json")
        save_campaign(small_campaign, path, alerts=[])
        assert load_alert_log(alert_log_path_for(path)) == []


class TestTimeline:
    def test_empty_timeline(self):
        rendered = render_alert_timeline([], months=24)
        assert "(no alerts)" in rendered
        assert "0..24" in rendered

    def test_rows_sorted_by_month(self):
        alerts = [
            Alert("b-rule", "m", "critical", 5, 2.0, detail="late"),
            Alert("a-rule", "m", "warning", 1, 1.0, detail="early"),
        ]
        rendered = render_alert_timeline(alerts)
        assert rendered.index("early") < rendered.index("late")
        assert "critical" in rendered and "warning" in rendered
