"""The status dashboard: tolerant readers and rendering."""

from __future__ import annotations

import json

from repro.monitor.status import (
    CampaignStatus,
    load_status,
    read_jsonl_tolerant,
    render_status,
)
from repro.store.artifact import ArtifactStore


class TestTolerantReader:
    def test_reads_complete_lines(self, tmp_path):
        path = tmp_path / "beat.jsonl"
        path.write_text('{"a": 1}\n{"a": 2}\n', encoding="utf-8")
        assert read_jsonl_tolerant(str(path)) == [{"a": 1}, {"a": 2}]

    def test_skips_torn_final_line(self, tmp_path):
        path = tmp_path / "beat.jsonl"
        path.write_text('{"a": 1}\n{"a": 2, "b"', encoding="utf-8")
        assert read_jsonl_tolerant(str(path)) == [{"a": 1}]

    def test_skips_blank_and_non_object_lines(self, tmp_path):
        path = tmp_path / "beat.jsonl"
        path.write_text('\n{"a": 1}\n[1, 2]\n42\n', encoding="utf-8")
        assert read_jsonl_tolerant(str(path)) == [{"a": 1}]

    def test_missing_file_is_empty_history(self, tmp_path):
        assert read_jsonl_tolerant(str(tmp_path / "absent.jsonl")) == []


class TestLoadStatus:
    def test_derives_conventional_paths(self, tmp_path):
        target = str(tmp_path / "campaign.json")
        store = ArtifactStore(str(tmp_path))
        store.append_jsonl(
            "campaign.heartbeat.jsonl",
            {"sequence": 0, "month": 0, "completed": 1, "total": 3,
             "wall_s": 1.0, "cpu_s": 0.9, "rss_kb": 1000, "alerts": 0},
        )
        store.append_jsonl(
            "campaign.alerts.jsonl",
            {"rule": "r", "severity": "warning", "index": 1,
             "metric": "rollup:wchd.p99@shard", "value": 0.1,
             "path": "shard=3/wchd.p99"},
        )
        store.write_json(
            "campaign.flight.json",
            {"reason": "boom", "dropped": 0,
             "events": [{"seq": 0, "kind": "crash"}]},
        )
        status = load_status(target)
        assert status.heartbeat["completed"] == 1
        assert len(status.alerts) == 1
        assert status.flight["reason"] == "boom"

    def test_empty_directory(self, tmp_path):
        status = load_status(str(tmp_path / "campaign.json"))
        assert status.heartbeat is None
        assert status.alerts == []
        assert status.flight is None


class TestRenderStatus:
    def test_renders_progress_and_rollups(self):
        status = CampaignStatus(
            target="campaign.json",
            heartbeat={
                "sequence": 2, "month": 2, "completed": 3, "total": 25,
                "wall_s": 6.0, "cpu_s": 5.5, "rss_kb": 90000, "alerts": 1,
                "rollups": {
                    "rollup.wchd{scope=fleet}": {
                        "count": 48, "mean": 0.025, "min": 0.01, "max": 0.04,
                        "std": 0.002, "p50": 0.024, "p99": 0.039,
                    },
                    "rollup.wchd{scope=shard,shard=3}": {
                        "count": 6, "mean": 0.030, "min": 0.02, "max": 0.04,
                        "std": 0.003, "p50": 0.029, "p99": 0.04,
                    },
                },
            },
            alerts=[{
                "rule": "shard-wchd-p99", "severity": "warning", "index": 2,
                "metric": "rollup:wchd.p99@shard", "value": 0.04,
                "path": "shard=3/wchd.p99",
            }],
        )
        text = render_status(status)
        assert "3/25 snapshots" in text
        assert "fleet" in text and "shard=3" in text
        assert "[shard=3/wchd.p99]" in text
        assert "0.5" in text.replace("0.50", "0.5")  # snapshots/s figure

    def test_renders_run_id_throughput_and_top_phases(self):
        status = CampaignStatus(
            target="campaign.json",
            heartbeat={
                "sequence": 1, "month": 1, "completed": 2, "total": 25,
                "wall_s": 4.0, "cpu_s": 3.5, "rss_kb": 90000, "alerts": 0,
                "run_id": "91c5ad9c0e3b17a2", "months_per_s": 0.5,
                "phases": {
                    "noise_draw": {"wall_s": 2.0, "cpu_s": 1.8, "calls": 4},
                    "aging": {"wall_s": 1.0, "cpu_s": 0.9, "calls": 2},
                    "metrics": {"wall_s": 0.5, "cpu_s": 0.4, "calls": 3},
                    "monitor": {"wall_s": 0.1, "cpu_s": 0.1, "calls": 2},
                },
            },
        )
        text = render_status(status)
        assert "run id: 91c5ad9c0e3b17a2" in text
        assert "0.50 months/s" in text
        # Top three phases by CPU, most expensive first.
        assert "top phases (cpu): noise_draw 1.80s, aging 0.90s, " \
               "metrics 0.40s" in text
        assert "monitor" not in text.split("top phases")[1]

    def test_rate_falls_back_to_computed_when_absent(self):
        status = CampaignStatus(
            target="campaign.json",
            heartbeat={"completed": 4, "total": 8, "wall_s": 2.0, "month": 3},
        )
        assert "2.00 months/s" in render_status(status)

    def test_renders_crash_banner(self):
        status = CampaignStatus(
            target="campaign.json",
            flight={"reason": "board 3 died", "dropped": 2,
                    "events": [{"seq": 9, "kind": "crash"}]},
        )
        text = render_status(status)
        assert "CRASH" in text
        assert "board 3 died" in text
        assert "(1 events, 2 dropped)" in text

    def test_renders_empty_state(self):
        text = render_status(CampaignStatus(target="campaign.json"))
        assert "no heartbeat yet" in text
        assert "alerts: none" in text

    def test_round_trips_through_cli_shape(self, tmp_path):
        """The dashboard consumes exactly what SnapshotEmitter writes."""
        from repro.monitor.heartbeat import SnapshotEmitter, heartbeat_path_for
        from repro.telemetry.rollup import RollupRegistry

        target = str(tmp_path / "campaign.json")
        rollups = RollupRegistry()
        rollups.summary("rollup.wchd", {"scope": "fleet"}).observe(0.02)
        emitter = SnapshotEmitter(heartbeat_path_for(target), rollups=rollups)
        emitter.emit(1, 4)
        status = load_status(target)
        text = render_status(status)
        assert "1/4 snapshots" in text
        assert "rollup.wchd" in text
        # The rendered document survived the JSONL round trip intact.
        line = json.loads(
            open(heartbeat_path_for(target), encoding="utf-8").readline()
        )
        assert status.heartbeat == line
