"""Detector behaviour on synthetic series: hits, misses, false alarms."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.monitor.detectors import (
    CUSUMDetector,
    EWMADetector,
    StaticThresholdDetector,
    TrendBandDetector,
)


def first_trigger(detector, series):
    """Index of the first triggered observation, or None."""
    for index, value in enumerate(series):
        if detector.update(value, index).triggered:
            return index
    return None


def stationary_noise(n=200, loc=1.0, scale=0.05, seed=7):
    return np.random.default_rng(seed).normal(loc, scale, n)


class TestStaticThreshold:
    def test_upper_breach(self):
        detector = StaticThresholdDetector(upper=2.0)
        assert not detector.update(1.9).triggered
        decision = detector.update(2.1)
        assert decision.triggered and decision.direction == +1
        assert decision.statistic == pytest.approx(0.1)

    def test_lower_breach(self):
        detector = StaticThresholdDetector(lower=0.5)
        decision = detector.update(0.4)
        assert decision.triggered and decision.direction == -1

    def test_needs_some_bound(self):
        with pytest.raises(ConfigurationError):
            StaticThresholdDetector()
        with pytest.raises(ConfigurationError):
            StaticThresholdDetector(upper=1.0, lower=2.0)


class TestTrendBand:
    def test_follows_moving_trend(self):
        detector = TrendBandDetector(lambda t: 0.01 * t, upper_band=0.5)
        # Values riding the trend never trigger even as they grow.
        assert first_trigger(detector, [0.01 * t + 0.1 for t in range(50)]) is None

    def test_breach_index(self):
        detector = TrendBandDetector(lambda t: 0.01 * t, upper_band=0.5)
        series = [0.01 * t + (1.0 if t >= 30 else 0.0) for t in range(50)]
        assert first_trigger(detector, series) == 30

    def test_lower_side(self):
        detector = TrendBandDetector(lambda t: 1.0, lower_band=0.2)
        decision = detector.update(0.7, 0)
        assert decision.triggered and decision.direction == -1


class TestEWMA:
    def test_no_false_alarm_on_stationary_noise(self):
        detector = EWMADetector(alpha=0.2, threshold_sigma=5.0, warmup=10)
        assert first_trigger(detector, stationary_noise()) is None

    def test_detects_step(self):
        detector = EWMADetector(alpha=0.2, threshold_sigma=5.0, warmup=10)
        series = stationary_noise(seed=11).copy()
        series[120:] += 1.0  # 20-sigma step
        assert first_trigger(detector, series) == 120

    def test_detects_ramp(self):
        detector = EWMADetector(alpha=0.2, threshold_sigma=5.0, warmup=10)
        series = stationary_noise(seed=13).copy()
        ramp = np.maximum(0.0, np.arange(200) - 100) * 0.02
        hit = first_trigger(detector, series + ramp)
        # The ramp starts at 100; a 5-sigma EWMA catches it within ~30
        # samples even as the baseline adapts.
        assert hit is not None and 100 < hit <= 130

    def test_warmup_never_triggers(self):
        detector = EWMADetector(warmup=5)
        for value in [0.0, 100.0, -100.0, 50.0, 0.0]:
            assert not detector.update(value).triggered


class TestCUSUM:
    def test_no_false_alarm_on_stationary_noise(self):
        detector = CUSUMDetector(threshold=1.0, drift=0.15, warmup=10)
        assert first_trigger(detector, stationary_noise()) is None

    def test_detects_step_near_change_point(self):
        detector = CUSUMDetector(threshold=0.5, drift=0.1, warmup=10)
        series = stationary_noise(seed=17).copy()
        series[120:] += 0.5
        hit = first_trigger(detector, series)
        # 0.4 net gain per sample after the shift -> alarm within ~3.
        assert hit is not None and 120 <= hit <= 124

    def test_detects_downward_shift(self):
        detector = CUSUMDetector(threshold=0.5, drift=0.1, target=1.0)
        series = [1.0] * 5 + [0.6] * 5
        hit = first_trigger(detector, series)
        assert hit is not None and 5 <= hit <= 7
        assert detector.update(0.6, 99).direction in (-1, 0)

    def test_fixed_target_spike_accumulation(self):
        # The default-ruleset health-spike shape: rare singleton events
        # decay, a burst alarms.
        detector = CUSUMDetector(threshold=3.0, drift=0.5, target=0.0)
        assert first_trigger(detector, [0, 0, 1, 0, 0, 0, 1, 0, 0, 0]) is None
        detector.reset()
        assert first_trigger(detector, [0, 0, 5, 0, 0]) == 2

    def test_learned_target(self):
        detector = CUSUMDetector(threshold=0.5, drift=0.1, warmup=4)
        series = [2.0, 2.1, 1.9, 2.0] + [2.0] * 10 + [3.0] * 3
        hit = first_trigger(detector, series)
        assert hit is not None and 14 <= hit <= 16

    def test_restarts_after_alarm(self):
        detector = CUSUMDetector(threshold=0.5, drift=0.0, target=0.0)
        assert detector.update(1.0).triggered
        # Accumulator restarted: the next small value is quiet.
        assert not detector.update(0.1).triggered


class TestValidation:
    def test_bad_parameters_raise(self):
        with pytest.raises(ConfigurationError):
            EWMADetector(alpha=0.0)
        with pytest.raises(ConfigurationError):
            EWMADetector(threshold_sigma=0.0)
        with pytest.raises(ConfigurationError):
            EWMADetector(warmup=1)
        with pytest.raises(ConfigurationError):
            CUSUMDetector(threshold=0.0)
        with pytest.raises(ConfigurationError):
            CUSUMDetector(threshold=1.0, drift=-0.1)
        with pytest.raises(ConfigurationError):
            TrendBandDetector(lambda t: t)

    def test_describe_is_informative(self):
        assert "threshold" in StaticThresholdDetector(upper=1.0).describe()
        assert "EWMA" in EWMADetector().describe()
        assert "CUSUM" in CUSUMDetector(threshold=1.0).describe()
        assert "trend" in TrendBandDetector(lambda t: t, upper_band=1.0).describe()
