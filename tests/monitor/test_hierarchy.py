"""The hierarchical observability acceptance gate.

The ISSUE's bar: a 256-board campaign sharded 8 ways must produce
parent rollups **bit-identical** to the serial run, the hub must poll
O(shards) rollup series (not O(boards)), and a shard-scoped rule breach
must land in the JSONL alert log with a drill-down path naming the
breaching shard.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.campaign import LongTermCampaign
from repro.errors import ConfigurationError
from repro.exec.executor import ParallelExecutor
from repro.monitor.alerts import AlertRule
from repro.monitor.defaults import hierarchical_ruleset
from repro.monitor.detectors import StaticThresholdDetector
from repro.monitor.hub import MonitorHub, parse_rollup_metric
from repro.sram.profiles import ATMEGA32U4
from repro.telemetry import get_metrics, get_rollups, reset_telemetry

#: 256 boards on a shrunk profile: the fleet scale the gate demands,
#: at test-suite speed.
TINY = ATMEGA32U4.with_overrides(sram_bytes=64, read_bytes=32)
FLEET = 256
SHARDS = 8
MONTHS = 2
SEED = 21


@pytest.fixture(autouse=True)
def clean_registry():
    reset_telemetry()
    yield
    reset_telemetry()


def run_fleet(workers: int, hub=None):
    """One 256-board campaign at the given worker count."""
    reset_telemetry()
    campaign = LongTermCampaign(
        device_count=FLEET,
        months=MONTHS,
        measurements=24,
        profile=TINY,
        statistical=True,
        random_state=SEED,
        rollup_shards=SHARDS,
    )
    executor = ParallelExecutor(max_workers=workers) if workers > 1 else None
    result = campaign.run(executor=executor, monitor=hub)
    rollups = get_rollups()
    docs = {
        name: rollups.get(name).to_doc()
        for name in rollups.names()
        if not name.startswith("rollup.worker")
    }
    metrics = {
        name: doc
        for name, doc in get_metrics().snapshot().items()
        if not name.startswith("rollup.worker")
    }
    return result, docs, metrics


class TestHierarchicalGate:
    def test_parent_rollups_bit_identical_serial_vs_8_way(self):
        _, serial_docs, serial_metrics = run_fleet(workers=1)
        _, parallel_docs, parallel_metrics = run_fleet(workers=8)
        # Exact documents — Fraction numerators/denominators and bin
        # counts included — not approximate statistics.
        assert serial_docs == parallel_docs
        assert serial_metrics == parallel_metrics

    def test_hub_polls_o_shards_not_o_boards(self):
        hub = MonitorHub(hierarchical_ruleset())
        run_fleet(workers=8, hub=hub)
        rollups = get_rollups()
        scoped = [n for n in rollups.names() if not n.startswith("rollup.worker")]
        # 4 statistics x (8 shard scopes + 1 fleet scope): independent
        # of the 256-board fleet size.
        assert len(scoped) == 4 * (SHARDS + 1)
        # Detector states: shard rules see SHARDS series, fleet rules 1.
        shard_rules = sum(
            1
            for rule in hierarchical_ruleset()
            if parse_rollup_metric(rule.metric)[2] == "shard"
        )
        fleet_rules = len(hierarchical_ruleset()) - shard_rules
        assert hub.rollup_rule_count == len(hierarchical_ruleset())
        assert (
            hub.rollup_series_count == shard_rules * SHARDS + fleet_rules
        ), "hub state must scale with shards, not boards"

    def test_shard_breach_carries_drilldown_path(self, tmp_path):
        alert_log = str(tmp_path / "alerts.jsonl")
        # A threshold below the simulated WCHD makes every shard breach;
        # the drill-down path must name the concrete shard.
        tripwire = AlertRule(
            name="shard-wchd-tripwire",
            metric="rollup:wchd.p99@shard",
            detector_factory=lambda: StaticThresholdDetector(upper=0.0),
            severity="warning",
            hysteresis=1,
            cooldown=MONTHS + 1,
        )
        hub = MonitorHub([tripwire], alert_log=alert_log)
        run_fleet(workers=8, hub=hub)

        assert hub.alert_count == SHARDS  # one breach per shard (cooldown caps)
        paths = sorted(alert.path for alert in hub.alerts)
        assert paths == [f"shard={i}/wchd.p99" for i in range(SHARDS)]
        with open(alert_log, "r", encoding="utf-8") as handle:
            logged = [json.loads(line) for line in handle if line.strip()]
        assert sorted(doc["path"] for doc in logged) == paths
        assert all(doc["rule"] == "shard-wchd-tripwire" for doc in logged)

    def test_alert_sequence_identical_across_worker_counts(self, tmp_path):
        def monitored(workers: int) -> list:
            log = str(tmp_path / f"alerts-{workers}.jsonl")
            hub = MonitorHub(hierarchical_ruleset(), alert_log=log)
            run_fleet(workers=workers, hub=hub)
            return [alert.to_dict() for alert in hub.alerts]

        serial = monitored(1)
        parallel = monitored(8)
        assert [
            {k: v for k, v in a.items() if k != "timestamp"} for a in serial
        ] == [{k: v for k, v in a.items() if k != "timestamp"} for a in parallel]


class TestRollupMetricGrammar:
    def test_parse_round_trip(self):
        assert parse_rollup_metric("rollup:wchd.p99@shard") == (
            "wchd",
            "p99",
            "shard",
        )
        assert parse_rollup_metric("rollup:stable_ratio.min@fleet") == (
            "stable_ratio",
            "min",
            "fleet",
        )

    @pytest.mark.parametrize(
        "bad",
        [
            "rollup:wchd.p99",  # missing scope
            "rollup:wchd@shard",  # missing statistic
            "rollup:wchd.bogus@shard",  # unknown statistic
        ],
    )
    def test_malformed_metrics_are_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            parse_rollup_metric(bad)
