"""MonitorHub policy: hysteresis, cooldown, logs, counters, polling."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.monitor.alerts import (
    Alert,
    AlertRule,
    alert_log_path_for,
    load_alert_log,
    write_alert_log,
)
from repro.monitor.detectors import StaticThresholdDetector
from repro.monitor.hub import MonitorHub
from repro.telemetry import get_metrics, reset_telemetry


def threshold_rule(name="breach", metric="series", upper=1.0, **policy):
    return AlertRule(
        name=name,
        metric=metric,
        detector_factory=lambda: StaticThresholdDetector(upper=upper),
        **policy,
    )


@pytest.fixture(autouse=True)
def clean_registry():
    reset_telemetry()
    yield
    reset_telemetry()


class TestAlerting:
    def test_first_breach_alerts(self):
        hub = MonitorHub([threshold_rule()])
        assert hub.observe("series", 0.5, 0) == []
        alerts = hub.observe("series", 1.5, 1)
        assert len(alerts) == 1
        assert alerts[0].rule == "breach"
        assert alerts[0].index == 1
        assert alerts[0].value == 1.5

    def test_unwatched_metric_is_ignored(self):
        hub = MonitorHub([threshold_rule()])
        assert hub.observe("other", 99.0, 0) == []
        assert hub.alert_count == 0

    def test_hysteresis_requires_consecutive_breaches(self):
        hub = MonitorHub([threshold_rule(hysteresis=3)])
        assert hub.observe("series", 2.0, 0) == []
        assert hub.observe("series", 2.0, 1) == []
        # A quiet observation resets the streak.
        assert hub.observe("series", 0.5, 2) == []
        assert hub.observe("series", 2.0, 3) == []
        assert hub.observe("series", 2.0, 4) == []
        alerts = hub.observe("series", 2.0, 5)
        assert len(alerts) == 1 and alerts[0].index == 5

    def test_cooldown_suppresses_re_alerts(self):
        hub = MonitorHub([threshold_rule(cooldown=2)])
        assert len(hub.observe("series", 2.0, 0)) == 1
        assert hub.observe("series", 2.0, 1) == []  # cooling
        assert hub.observe("series", 2.0, 2) == []  # cooling
        assert len(hub.observe("series", 2.0, 3)) == 1  # re-armed
        assert hub.alert_count == 2

    def test_duplicate_rule_names_rejected(self):
        hub = MonitorHub([threshold_rule()])
        with pytest.raises(ConfigurationError):
            hub.add_rule(threshold_rule())

    def test_severity_counts_and_metrics(self):
        hub = MonitorHub(
            [
                threshold_rule(name="warn", severity="warning"),
                threshold_rule(name="crit", severity="critical"),
            ]
        )
        hub.observe("series", 2.0, 0)
        assert hub.severity_counts() == {"info": 0, "warning": 1, "critical": 1}
        metrics = get_metrics()
        assert metrics.counter("monitor.alerts").value == 2
        assert metrics.counter("monitor.alerts_by_severity.warning").value == 1
        assert metrics.counter("monitor.alerts_by_severity.critical").value == 1
        assert metrics.counter("monitor.observations").value == 1

    def test_reset_clears_alerts_and_state(self):
        hub = MonitorHub([threshold_rule(cooldown=5)])
        hub.observe("series", 2.0, 0)
        hub.reset()
        assert hub.alert_count == 0
        # Cooldown cleared: an immediate breach alerts again.
        assert len(hub.observe("series", 2.0, 0)) == 1

    def test_rule_table_renders(self):
        hub = MonitorHub([threshold_rule()])
        table = hub.render_rule_table()
        assert "breach" in table and "series" in table
        assert "(no rules installed)" in MonitorHub().render_rule_table()


class TestAlertLog:
    def test_alert_log_is_valid_jsonl(self, tmp_path):
        log = str(tmp_path / "alerts.jsonl")
        hub = MonitorHub([threshold_rule()], alert_log=log)
        hub.observe("series", 2.0, 3)
        hub.observe("series", 0.1, 4)
        hub.observe("series", 3.0, 5)
        with open(log, "r", encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle if line.strip()]
        assert [line["index"] for line in lines] == [3, 5]
        assert all(line["rule"] == "breach" for line in lines)

    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "alerts.jsonl")
        alerts = [
            Alert("r", "m", "warning", 1, 0.5, statistic=0.1, detail="x"),
            Alert("r", "m", "critical", 2, 0.7, timestamp=123.0),
        ]
        write_alert_log(alerts, path)
        assert load_alert_log(path) == alerts

    def test_alert_log_path_convention(self):
        assert alert_log_path_for("campaign.json") == "campaign.alerts.jsonl"
        assert alert_log_path_for("artifact") == "artifact.alerts.jsonl"

    def test_deterministic_log_has_no_timestamps(self, tmp_path):
        log = str(tmp_path / "alerts.jsonl")
        hub = MonitorHub([threshold_rule()], alert_log=log)
        hub.observe("series", 2.0, 0)
        assert load_alert_log(log)[0].timestamp is None

    def test_clock_stamps_alerts(self):
        hub = MonitorHub([threshold_rule()], clock=lambda: 42.0)
        assert hub.observe("series", 2.0, 0)[0].timestamp == 42.0

    def test_run_id_stamps_alerts_and_log_lines(self, tmp_path):
        log = str(tmp_path / "alerts.jsonl")
        hub = MonitorHub(
            [threshold_rule()], alert_log=log, run_id="91c5ad9c0e3b17a2"
        )
        assert hub.run_id == "91c5ad9c0e3b17a2"
        (alert,) = hub.observe("series", 2.0, 0)
        assert alert.run_id == "91c5ad9c0e3b17a2"
        with open(log, "r", encoding="utf-8") as handle:
            (line,) = [json.loads(l) for l in handle if l.strip()]
        assert line["run_id"] == "91c5ad9c0e3b17a2"

    def test_run_id_field_always_serialised(self):
        # Monitored and bare hubs must produce field-identical log
        # lines — null, not absent, when no run id exists.
        doc = Alert("r", "m", "warning", 1, 0.5).to_dict()
        assert "run_id" in doc and doc["run_id"] is None
        assert Alert.from_dict(doc).run_id is None


class TestCounterPolling:
    def test_rate_rule_sees_deltas_not_totals(self):
        hub = MonitorHub(
            [threshold_rule(name="spike", metric="rate:demo.events", upper=3.0)]
        )
        counter = get_metrics().counter("demo.events")
        counter.inc(2)
        assert hub.poll_counters(index=0) == []
        counter.inc(2)  # delta 2 <= 3: quiet even though total is 4
        assert hub.poll_counters(index=1) == []
        counter.inc(10)  # delta 10 > 3: spike
        alerts = hub.poll_counters(index=2)
        assert len(alerts) == 1
        assert alerts[0].value == 10.0
        assert alerts[0].index == 2

    def test_unregistered_counter_is_skipped(self):
        hub = MonitorHub(
            [threshold_rule(name="spike", metric="rate:never.registered", upper=1.0)]
        )
        assert hub.poll_counters() == []


class TestRuleValidation:
    def test_bad_rules_raise(self):
        factory = lambda: StaticThresholdDetector(upper=1.0)  # noqa: E731
        with pytest.raises(ConfigurationError):
            AlertRule(name="", metric="m", detector_factory=factory)
        with pytest.raises(ConfigurationError):
            AlertRule(name="r", metric="", detector_factory=factory)
        with pytest.raises(ConfigurationError):
            AlertRule(name="r", metric="m", detector_factory=factory, severity="fatal")
        with pytest.raises(ConfigurationError):
            AlertRule(name="r", metric="m", detector_factory=factory, hysteresis=0)
        with pytest.raises(ConfigurationError):
            AlertRule(name="r", metric="m", detector_factory=factory, cooldown=-1)
