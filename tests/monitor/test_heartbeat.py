"""Heartbeat emission through the campaign progress callback."""

import json

import pytest

from repro.analysis.campaign import LongTermCampaign
from repro.errors import ConfigurationError
from repro.monitor.detectors import StaticThresholdDetector
from repro.monitor.alerts import AlertRule
from repro.monitor.heartbeat import SnapshotEmitter, current_rss_kb
from repro.monitor.hub import MonitorHub
from repro.telemetry import reset_telemetry


def read_jsonl(path):
    with open(path, "r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


@pytest.fixture(autouse=True)
def clean_registry():
    reset_telemetry()
    yield
    reset_telemetry()


class TestSnapshotEmitter:
    def test_campaign_progress_writes_heartbeats(self, tmp_path):
        path = str(tmp_path / "heartbeat.jsonl")
        emitter = SnapshotEmitter(path)
        campaign = LongTermCampaign(
            device_count=2, months=3, measurements=50, random_state=1
        )
        campaign.run(progress=emitter)
        lines = read_jsonl(path)
        assert [line["month"] for line in lines] == [0, 1, 2, 3]
        assert [line["completed"] for line in lines] == [1, 2, 3, 4]
        assert all(line["total"] == 4 for line in lines)
        assert all(line["wall_s"] >= 0.0 for line in lines)
        assert all(line["cpu_s"] >= 0.0 for line in lines)
        assert emitter.emitted == 4

    def test_every_thins_but_keeps_final(self, tmp_path):
        path = str(tmp_path / "heartbeat.jsonl")
        emitter = SnapshotEmitter(path, every=3)
        for completed in range(1, 8):
            emitter(completed, 7)
        # Multiples of 3, plus the final call.
        assert [line["completed"] for line in read_jsonl(path)] == [3, 6, 7]

    def test_alert_count_rides_along(self, tmp_path):
        path = str(tmp_path / "heartbeat.jsonl")
        hub = MonitorHub(
            [
                AlertRule(
                    name="breach",
                    metric="series",
                    detector_factory=lambda: StaticThresholdDetector(upper=1.0),
                )
            ]
        )
        emitter = SnapshotEmitter(path, hub=hub)
        emitter(1, 2)
        hub.observe("series", 2.0, 0)
        emitter(2, 2)
        lines = read_jsonl(path)
        assert [line["alerts"] for line in lines] == [0, 1]

    def test_without_hub_alerts_is_null(self, tmp_path):
        path = str(tmp_path / "heartbeat.jsonl")
        SnapshotEmitter(path)(1, 1)
        assert read_jsonl(path)[0]["alerts"] is None

    def test_injectable_clocks(self, tmp_path):
        path = str(tmp_path / "heartbeat.jsonl")
        ticks = iter([10.0, 15.5])
        cpu_ticks = iter([1.0, 2.25])
        emitter = SnapshotEmitter(
            path, clock=lambda: next(ticks), cpu_clock=lambda: next(cpu_ticks)
        )
        document = emitter.emit(1, 1)
        assert document["wall_s"] == pytest.approx(5.5)
        assert document["cpu_s"] == pytest.approx(1.25)

    def test_rss_is_positive_or_none(self):
        rss = current_rss_kb()
        assert rss is None or rss > 0

    def test_every_must_be_positive(self, tmp_path):
        with pytest.raises(ConfigurationError):
            SnapshotEmitter(str(tmp_path / "x"), every=0)


class TestCorrelationAndPhases:
    def test_run_id_rides_in_every_heartbeat(self, tmp_path):
        path = str(tmp_path / "heartbeat.jsonl")
        emitter = SnapshotEmitter(path, run_id="91c5ad9c0e3b17a2")
        emitter(1, 2)
        emitter(2, 2)
        assert [b["run_id"] for b in read_jsonl(path)] == [
            "91c5ad9c0e3b17a2", "91c5ad9c0e3b17a2"
        ]

    def test_run_id_null_when_unset(self, tmp_path):
        path = str(tmp_path / "heartbeat.jsonl")
        SnapshotEmitter(path)(1, 1)
        assert read_jsonl(path)[0]["run_id"] is None

    def test_months_per_s_throughput(self, tmp_path):
        path = str(tmp_path / "heartbeat.jsonl")
        ticks = iter([10.0, 14.0])
        emitter = SnapshotEmitter(path, clock=lambda: next(ticks))
        document = emitter.emit(8, 10)
        assert document["months_per_s"] == pytest.approx(2.0)

    def test_phases_ride_when_profiler_enabled(self, tmp_path):
        from repro.telemetry import PhaseProfiler

        path = str(tmp_path / "heartbeat.jsonl")
        profiler = PhaseProfiler(enabled=True)
        profiler.add("aging", wall_s=2.0, cpu_s=1.5, calls=4)
        SnapshotEmitter(path, profiler=profiler)(1, 1)
        beat = read_jsonl(path)[0]
        assert beat["phases"]["aging"] == {
            "wall_s": 2.0, "cpu_s": 1.5, "calls": 4
        }

    def test_phases_absent_when_profiler_disabled(self, tmp_path):
        from repro.telemetry import PhaseProfiler

        path = str(tmp_path / "heartbeat.jsonl")
        SnapshotEmitter(path, profiler=PhaseProfiler(enabled=False))(1, 1)
        assert "phases" not in read_jsonl(path)[0]
