"""Exporter formats: Prometheus text exposition and JSONL sinks."""

import json
import os

import pytest

from repro.monitor.exporters import (
    PROMETHEUS_CONTENT_TYPE,
    MetricsJSONLSink,
    prometheus_name,
    render_prometheus,
    write_metrics_jsonl,
    write_prometheus,
)
from repro.telemetry import MetricsRegistry

GOLDEN = os.path.join(os.path.dirname(__file__), "golden_prometheus.txt")


def reference_registry() -> MetricsRegistry:
    """The fixed registry the golden file was rendered from."""
    registry = MetricsRegistry()
    registry.counter("campaign.powerups").inc(16)
    registry.counter("trng.health_rejections")  # registered but zero
    registry.gauge("campaign.devices").set(16)
    histogram = registry.histogram("keygen.latency_s", buckets=[0.5, 1.0, 2.0])
    for value in (0.25, 0.75, 1.5, 4.0):
        histogram.observe(value)
    return registry


class TestPrometheus:
    def test_matches_golden_file(self):
        with open(GOLDEN, "r", encoding="utf-8") as handle:
            expected = handle.read()
        assert render_prometheus(reference_registry()) == expected

    def test_content_type_constant(self):
        assert PROMETHEUS_CONTENT_TYPE == "text/plain; version=0.0.4"

    def test_counter_gets_total_suffix(self):
        rendered = render_prometheus(reference_registry())
        assert "repro_campaign_powerups_total 16" in rendered
        assert "# TYPE repro_campaign_powerups_total counter" in rendered

    def test_histogram_buckets_are_cumulative(self):
        rendered = render_prometheus(reference_registry())
        assert 'repro_keygen_latency_s_bucket{le="0.5"} 1' in rendered
        assert 'repro_keygen_latency_s_bucket{le="1"} 2' in rendered
        assert 'repro_keygen_latency_s_bucket{le="2"} 3' in rendered
        assert 'repro_keygen_latency_s_bucket{le="+Inf"} 4' in rendered
        assert "repro_keygen_latency_s_count 4" in rendered
        assert "repro_keygen_latency_s_sum 6.5" in rendered

    def test_every_line_is_comment_or_sample(self):
        for line in render_prometheus(reference_registry()).strip().splitlines():
            assert line.startswith("#") or len(line.split(" ")) == 2

    def test_name_sanitization(self):
        assert prometheus_name("campaign.powerups") == "repro_campaign_powerups"
        assert prometheus_name("a-b c", namespace="") == "a_b_c"
        assert prometheus_name("9lives", namespace="") == "_9lives"

    def test_write_prometheus(self, tmp_path):
        path = str(tmp_path / "metrics.prom")
        write_prometheus(reference_registry(), path)
        with open(path, "r", encoding="utf-8") as handle:
            assert handle.read() == render_prometheus(reference_registry())

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == "\n"


class TestJSONLSink:
    def test_appends_valid_jsonl(self, tmp_path):
        path = str(tmp_path / "metrics.jsonl")
        sink = MetricsJSONLSink(path)
        registry = reference_registry()
        sink.emit(registry, label="month-0")
        registry.counter("campaign.powerups").inc(100)
        sink.emit(registry, label="month-1")
        with open(path, "r", encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle if line.strip()]
        assert [line["sequence"] for line in lines] == [0, 1]
        assert [line["label"] for line in lines] == ["month-0", "month-1"]
        assert lines[0]["metrics"]["campaign.powerups"]["value"] == 16
        assert lines[1]["metrics"]["campaign.powerups"]["value"] == 116

    def test_one_shot_helper(self, tmp_path):
        path = str(tmp_path / "metrics.jsonl")
        write_metrics_jsonl(reference_registry(), path, label="snap")
        write_metrics_jsonl(reference_registry(), path)
        with open(path, "r", encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle]
        assert len(lines) == 2
        assert lines[0]["label"] == "snap"


class TestHistogramErgonomics:
    def test_cumulative_bucket_counts(self):
        registry = reference_registry()
        histogram = registry.histogram("keygen.latency_s")
        assert histogram.bucket_counts == [1, 1, 1, 1]
        assert histogram.cumulative_bucket_counts == [1, 2, 3]
        assert histogram.count == 4

    def test_snapshot_exposes_cumulative(self):
        registry = reference_registry()
        snap = registry.histogram("keygen.latency_s").snapshot()
        assert snap["cumulative_bucket_counts"] == [1, 2, 3]
        assert snap["bucket_counts"] == [1, 1, 1, 1]
        assert snap["sum"] == pytest.approx(6.5)
        # The registry-level snapshot delegates to the instrument.
        assert registry.snapshot()["keygen.latency_s"] == snap
