"""Exporter formats: Prometheus text exposition and JSONL sinks."""

import json
import os

import pytest

from repro.monitor.exporters import (
    PROMETHEUS_CONTENT_TYPE,
    ROLLUP_EXPORT_STATS,
    MetricsJSONLSink,
    prometheus_name,
    render_prometheus,
    write_metrics_jsonl,
    write_prometheus,
)
from repro.telemetry import MetricsRegistry
from repro.telemetry.rollup import RollupRegistry, UNIT_BOUNDS

GOLDEN = os.path.join(os.path.dirname(__file__), "golden_prometheus.txt")


def reference_registry() -> MetricsRegistry:
    """The fixed registry the golden file was rendered from."""
    registry = MetricsRegistry()
    registry.counter("campaign.powerups").inc(16)
    registry.counter("trng.health_rejections")  # registered but zero
    registry.gauge("campaign.devices").set(16)
    histogram = registry.histogram("keygen.latency_s", buckets=[0.5, 1.0, 2.0])
    for value in (0.25, 0.75, 1.5, 4.0):
        histogram.observe(value)
    return registry


class TestPrometheus:
    def test_matches_golden_file(self):
        with open(GOLDEN, "r", encoding="utf-8") as handle:
            expected = handle.read()
        assert render_prometheus(reference_registry()) == expected

    def test_content_type_constant(self):
        assert PROMETHEUS_CONTENT_TYPE == "text/plain; version=0.0.4"

    def test_counter_gets_total_suffix(self):
        rendered = render_prometheus(reference_registry())
        assert "repro_campaign_powerups_total 16" in rendered
        assert "# TYPE repro_campaign_powerups_total counter" in rendered

    def test_histogram_buckets_are_cumulative(self):
        rendered = render_prometheus(reference_registry())
        assert 'repro_keygen_latency_s_bucket{le="0.5"} 1' in rendered
        assert 'repro_keygen_latency_s_bucket{le="1"} 2' in rendered
        assert 'repro_keygen_latency_s_bucket{le="2"} 3' in rendered
        assert 'repro_keygen_latency_s_bucket{le="+Inf"} 4' in rendered
        assert "repro_keygen_latency_s_count 4" in rendered
        assert "repro_keygen_latency_s_sum 6.5" in rendered

    def test_every_line_is_comment_or_sample(self):
        for line in render_prometheus(reference_registry()).strip().splitlines():
            assert line.startswith("#") or len(line.split(" ")) == 2

    def test_name_sanitization(self):
        assert prometheus_name("campaign.powerups") == "repro_campaign_powerups"
        assert prometheus_name("a-b c", namespace="") == "a_b_c"
        assert prometheus_name("9lives", namespace="") == "_9lives"

    def test_write_prometheus(self, tmp_path):
        path = str(tmp_path / "metrics.prom")
        write_prometheus(reference_registry(), path)
        with open(path, "r", encoding="utf-8") as handle:
            assert handle.read() == render_prometheus(reference_registry())

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == "\n"


class TestLabeledFamilies:
    def labeled_registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("campaign.powerups").inc(8)
        registry.counter("campaign.powerups", labels={"shard": 1}).inc(5)
        registry.counter("campaign.powerups", labels={"shard": 0}).inc(3)
        return registry

    def test_one_header_per_family(self):
        rendered = render_prometheus(self.labeled_registry())
        assert rendered.count("# HELP repro_campaign_powerups_total") == 1
        assert rendered.count("# TYPE repro_campaign_powerups_total counter") == 1

    def test_label_sets_render_sorted_without_spaces(self):
        rendered = render_prometheus(self.labeled_registry())
        assert 'repro_campaign_powerups_total{shard="0"} 3' in rendered
        assert 'repro_campaign_powerups_total{shard="1"} 5' in rendered
        # Samples stay two space-separated tokens: no spaces inside a
        # label block, ever.
        for line in rendered.strip().splitlines():
            assert line.startswith("#") or len(line.split(" ")) == 2, line

    def test_multi_label_canonical_order(self):
        registry = MetricsRegistry()
        registry.gauge("fleet.health", labels={"shard": 2, "board": "b9"}).set(1)
        rendered = render_prometheus(registry)
        assert 'repro_fleet_health{board="b9",shard="2"} 1' in rendered

    def test_label_values_are_escaped(self):
        from repro.monitor.exporters import _escape_label_value

        assert _escape_label_value('a"b') == 'a\\"b'
        assert _escape_label_value("a\\b") == "a\\\\b"
        assert _escape_label_value("a\nb") == "a\\nb"

    def test_labeled_histogram_merges_le_label(self):
        registry = MetricsRegistry()
        registry.histogram("lat.s", buckets=[1.0], labels={"w": "a"}).observe(0.5)
        rendered = render_prometheus(registry)
        assert 'repro_lat_s_bucket{le="1",w="a"} 1' in rendered
        assert 'repro_lat_s_bucket{le="+Inf",w="a"} 1' in rendered
        assert 'repro_lat_s_sum{w="a"} 0.5' in rendered
        assert 'repro_lat_s_count{w="a"} 1' in rendered

    def test_unlabeled_rendering_unchanged(self):
        """The historical exposition (and golden file) is untouched."""
        with open(GOLDEN, "r", encoding="utf-8") as handle:
            assert render_prometheus(reference_registry()) == handle.read()


class TestRollupExport:
    def rollups(self) -> RollupRegistry:
        registry = RollupRegistry()
        shard = registry.summary(
            "rollup.wchd", {"scope": "shard", "shard": 3}, UNIT_BOUNDS
        )
        shard.observe(0.01)
        shard.observe(0.03)
        fleet = registry.summary("rollup.wchd", {"scope": "fleet"}, UNIT_BOUNDS)
        fleet.observe(0.01)
        fleet.observe(0.03)
        registry.summary("rollup.fhw", {"scope": "fleet"}, UNIT_BOUNDS)  # empty
        return registry

    def test_each_statistic_is_a_gauge_family(self):
        rendered = render_prometheus(MetricsRegistry(), rollups=self.rollups())
        for stat in ROLLUP_EXPORT_STATS:
            assert f"# TYPE repro_rollup_wchd_{stat} gauge" in rendered

    def test_samples_carry_scope_labels(self):
        rendered = render_prometheus(MetricsRegistry(), rollups=self.rollups())
        assert 'repro_rollup_wchd_count{scope="fleet"} 2' in rendered
        assert 'repro_rollup_wchd_count{scope="shard",shard="3"} 2' in rendered
        assert 'repro_rollup_wchd_max{scope="shard",shard="3"} 0.03' in rendered

    def test_empty_summaries_are_skipped(self):
        rendered = render_prometheus(MetricsRegistry(), rollups=self.rollups())
        assert "repro_rollup_fhw" not in rendered

    def test_rollup_lines_keep_the_two_token_contract(self):
        rendered = render_prometheus(MetricsRegistry(), rollups=self.rollups())
        for line in rendered.strip().splitlines():
            assert line.startswith("#") or len(line.split(" ")) == 2, line

    def test_write_prometheus_with_rollups(self, tmp_path):
        path = str(tmp_path / "metrics.prom")
        write_prometheus(reference_registry(), path, rollups=self.rollups())
        with open(path, "r", encoding="utf-8") as handle:
            assert handle.read() == render_prometheus(
                reference_registry(), rollups=self.rollups()
            )


class TestJSONLSink:
    def test_appends_valid_jsonl(self, tmp_path):
        path = str(tmp_path / "metrics.jsonl")
        sink = MetricsJSONLSink(path)
        registry = reference_registry()
        sink.emit(registry, label="month-0")
        registry.counter("campaign.powerups").inc(100)
        sink.emit(registry, label="month-1")
        with open(path, "r", encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle if line.strip()]
        assert [line["sequence"] for line in lines] == [0, 1]
        assert [line["label"] for line in lines] == ["month-0", "month-1"]
        assert lines[0]["metrics"]["campaign.powerups"]["value"] == 16
        assert lines[1]["metrics"]["campaign.powerups"]["value"] == 116

    def test_one_shot_helper(self, tmp_path):
        path = str(tmp_path / "metrics.jsonl")
        write_metrics_jsonl(reference_registry(), path, label="snap")
        write_metrics_jsonl(reference_registry(), path)
        with open(path, "r", encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle]
        assert len(lines) == 2
        assert lines[0]["label"] == "snap"


class TestHistogramErgonomics:
    def test_cumulative_bucket_counts(self):
        registry = reference_registry()
        histogram = registry.histogram("keygen.latency_s")
        assert histogram.bucket_counts == [1, 1, 1, 1]
        assert histogram.cumulative_bucket_counts == [1, 2, 3]
        assert histogram.count == 4

    def test_snapshot_exposes_cumulative(self):
        registry = reference_registry()
        snap = registry.histogram("keygen.latency_s").snapshot()
        assert snap["cumulative_bucket_counts"] == [1, 2, 3]
        assert snap["bucket_counts"] == [1, 1, 1, 1]
        assert snap["sum"] == pytest.approx(6.5)
        # The registry-level snapshot delegates to the instrument.
        assert registry.snapshot()["keygen.latency_s"] == snap
