"""Tests for polar codes (the paper's reference [13] ingredient)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.keygen.ecc.polar import PolarCode, bhattacharyya_parameters


class TestConstruction:
    def test_parameter_count(self):
        assert bhattacharyya_parameters(4, 0.1).size == 16

    def test_last_channel_is_best(self):
        """u_{N-1} (all-plus splits) is always the most reliable."""
        z = bhattacharyya_parameters(6, 0.1)
        assert z[-1] == z.min()

    def test_first_channel_is_worst(self):
        z = bhattacharyya_parameters(6, 0.1)
        assert z[0] == z.max()

    def test_recursive_structure(self):
        """Z_N = [Z over degraded split, Z over upgraded split]."""
        z0 = 2.0 * np.sqrt(0.1 * 0.9)
        z2 = bhattacharyya_parameters(1, 0.1)
        assert z2[0] == pytest.approx(2 * z0 - z0**2)
        assert z2[1] == pytest.approx(z0**2)

    def test_polarization(self):
        """At large N most channels are near-perfect or near-useless."""
        z = bhattacharyya_parameters(10, 0.05)
        extreme = ((z < 0.01) | (z > 0.99)).mean()
        assert extreme > 0.6

    def test_invalid_design_p_rejected(self):
        with pytest.raises(ConfigurationError):
            bhattacharyya_parameters(4, 0.5)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ConfigurationError):
            PolarCode(4, 16)  # k = N not allowed
        with pytest.raises(ConfigurationError):
            PolarCode(4, 0)


class TestEncodeDecode:
    @pytest.fixture
    def code(self) -> PolarCode:
        return PolarCode(n_levels=7, message_bits=64, design_p=0.05)

    def test_clean_roundtrip(self, code, rng):
        for _ in range(10):
            message = rng.integers(0, 2, 64, dtype=np.uint8)
            np.testing.assert_array_equal(code.decode(code.encode(message)), message)

    def test_zero_message_maps_to_zero(self, code):
        zeros = np.zeros(64, dtype=np.uint8)
        np.testing.assert_array_equal(code.encode(zeros), np.zeros(128, dtype=np.uint8))

    def test_linearity(self, code, rng):
        a = rng.integers(0, 2, 64, dtype=np.uint8)
        b = rng.integers(0, 2, 64, dtype=np.uint8)
        np.testing.assert_array_equal(
            code.encode(a) ^ code.encode(b), code.encode(a ^ b)
        )

    def test_corrects_low_noise_reliably(self, code, rng):
        failures = 0
        for _ in range(50):
            message = rng.integers(0, 2, 64, dtype=np.uint8)
            codeword = code.encode(message)
            noise = (rng.random(128) < 0.01).astype(np.uint8)
            failures += not np.array_equal(code.decode(codeword ^ noise), message)
        assert failures <= 2

    def test_frozen_mask_counts(self, code):
        assert int(code.frozen_mask.sum()) == 128 - 64

    def test_no_guaranteed_radius(self, code):
        assert code.correctable_errors == 0


class TestPufRegime:
    def test_globecom17_design_point(self):
        """(1024, 128) at 15 % BER — the regime of the paper's [13] —
        decodes without failure in a modest Monte-Carlo run."""
        code = PolarCode(n_levels=10, message_bits=128, design_p=0.15)
        assert code.bhattacharyya_bound() < 1e-3
        assert code.failure_rate_estimate(0.15, trials=30, random_state=1) == 0.0

    def test_rate_vs_reliability_tradeoff(self):
        """More message bits -> worse Bhattacharyya bound."""
        low_rate = PolarCode(8, 32, design_p=0.1).bhattacharyya_bound()
        high_rate = PolarCode(8, 128, design_p=0.1).bhattacharyya_bound()
        assert high_rate > low_rate

    def test_code_offset_integration(self, rng):
        """Polar codes slot into the fuzzy extractor unchanged."""
        from repro.keygen.helper_data import CodeOffsetSketch

        code = PolarCode(n_levels=8, message_bits=32, design_p=0.05)
        sketch = CodeOffsetSketch(code)
        response = rng.integers(0, 2, 256, dtype=np.uint8)
        secret, helper = sketch.enroll(response, secret_bits=32, random_state=2)
        noisy = response ^ (rng.random(256) < 0.02).astype(np.uint8)
        recovered = sketch.reconstruct(noisy, helper, secret_bits=32)
        np.testing.assert_array_equal(recovered, secret)
