"""Tests for von Neumann debiasing."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.keygen.debias import (
    CVNDebiaser,
    pair_output_von_neumann,
    von_neumann_debias,
)


def biased_bits(p: float, count: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.random(count) < p).astype(np.uint8)


class TestClassicVonNeumann:
    def test_known_pairs(self):
        result = von_neumann_debias(np.array([0, 1, 1, 0, 0, 0, 1, 1], dtype=np.uint8))
        np.testing.assert_array_equal(result.bits, [0, 1])
        np.testing.assert_array_equal(result.selected_pairs, [0, 1])

    def test_output_unbiased_for_biased_input(self):
        raw = biased_bits(0.627, 100_000, seed=1)
        result = von_neumann_debias(raw)
        assert abs(result.bits.mean() - 0.5) < 0.01

    def test_rate_approaches_p_times_q(self):
        raw = biased_bits(0.627, 100_000, seed=2)
        result = von_neumann_debias(raw)
        assert result.rate == pytest.approx(0.627 * 0.373, abs=0.01)

    def test_trailing_odd_bit_dropped(self):
        result = von_neumann_debias(np.array([0, 1, 1], dtype=np.uint8))
        assert result.bits.size == 1

    def test_constant_input_yields_nothing(self):
        result = von_neumann_debias(np.ones(100, dtype=np.uint8))
        assert result.bits.size == 0

    def test_single_bit_rejected(self):
        with pytest.raises(ConfigurationError):
            von_neumann_debias(np.array([1], dtype=np.uint8))


class TestPairOutputVonNeumann:
    def test_higher_rate_than_cvn(self):
        raw = biased_bits(0.627, 100_000, seed=3)
        assert pair_output_von_neumann(raw).rate > von_neumann_debias(raw).rate

    def test_still_unbiased(self):
        raw = biased_bits(0.7, 100_000, seed=4)
        result = pair_output_von_neumann(raw)
        assert abs(result.bits.mean() - 0.5) < 0.01

    def test_handles_no_concordant_pairs(self):
        result = pair_output_von_neumann(np.array([0, 1, 1, 0], dtype=np.uint8))
        np.testing.assert_array_equal(result.bits, [0, 1])


class TestCVNDebiaser:
    def test_reconstruction_selects_same_pairs(self):
        debiaser = CVNDebiaser()
        response = biased_bits(0.627, 1000, seed=5)
        enrolled = debiaser.enroll(response)
        reconstructed = debiaser.apply(response, enrolled.selected_pairs)
        np.testing.assert_array_equal(reconstructed, enrolled.bits)

    def test_noisy_reconstruction_mostly_agrees(self):
        debiaser = CVNDebiaser()
        rng = np.random.default_rng(6)
        response = biased_bits(0.627, 10_000, seed=7)
        enrolled = debiaser.enroll(response)
        noisy = response ^ (rng.random(10_000) < 0.02).astype(np.uint8)
        reconstructed = debiaser.apply(noisy, enrolled.selected_pairs)
        error_rate = (reconstructed != enrolled.bits).mean()
        assert error_rate < 0.08

    def test_out_of_range_indices_rejected(self):
        debiaser = CVNDebiaser()
        with pytest.raises(ConfigurationError):
            debiaser.apply(np.zeros(10, dtype=np.uint8), np.array([99]))
