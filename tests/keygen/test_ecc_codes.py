"""Behavioural tests shared by every block code, plus per-code checks."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DecodingFailure
from repro.io.bitutil import random_bits
from repro.keygen.ecc import (
    BCHCode,
    ConcatenatedCode,
    ExtendedGolayCode,
    HammingCode,
    RepetitionCode,
)

ALL_CODES = [
    pytest.param(RepetitionCode(3), id="rep3"),
    pytest.param(RepetitionCode(7), id="rep7"),
    pytest.param(HammingCode(3), id="hamming7"),
    pytest.param(HammingCode(4), id="hamming15"),
    pytest.param(ExtendedGolayCode(), id="golay24"),
    pytest.param(BCHCode(4, 2), id="bch15t2"),
    pytest.param(BCHCode(5, 3), id="bch31t3"),
    pytest.param(BCHCode(7, 6), id="bch127t6"),
    pytest.param(ConcatenatedCode(ExtendedGolayCode(), RepetitionCode(3)),
                 id="golay-rep3"),
]


@pytest.mark.parametrize("code", ALL_CODES)
class TestBlockCodeContract:
    def test_clean_roundtrip(self, code, rng):
        message = rng.integers(0, 2, code.message_bits, dtype=np.uint8)
        np.testing.assert_array_equal(code.decode(code.encode(message)), message)

    def test_corrects_up_to_t_errors(self, code, rng):
        for _ in range(25):
            message = rng.integers(0, 2, code.message_bits, dtype=np.uint8)
            codeword = code.encode(message)
            weight = int(rng.integers(0, code.correctable_errors + 1))
            positions = rng.choice(code.codeword_bits, size=weight, replace=False)
            received = codeword.copy()
            received[positions] ^= 1
            np.testing.assert_array_equal(code.decode(received), message)

    def test_codeword_length(self, code, rng):
        message = rng.integers(0, 2, code.message_bits, dtype=np.uint8)
        assert code.encode(message).size == code.codeword_bits

    def test_rate_consistent(self, code, rng):
        assert code.rate == pytest.approx(code.message_bits / code.codeword_bits)

    def test_wrong_message_length_rejected(self, code, rng):
        with pytest.raises(ConfigurationError):
            code.encode(np.zeros(code.message_bits + 1, dtype=np.uint8))

    def test_wrong_received_length_rejected(self, code, rng):
        with pytest.raises(ConfigurationError):
            code.decode(np.zeros(code.codeword_bits + 1, dtype=np.uint8))

    def test_block_interface(self, code, rng):
        messages = rng.integers(0, 2, (3, code.message_bits), dtype=np.uint8)
        codewords = code.encode_blocks(messages)
        np.testing.assert_array_equal(code.decode_blocks(codewords), messages)

    def test_linearity_zero_message(self, code, rng):
        """The all-zero message maps to the all-zero codeword."""
        zeros = np.zeros(code.message_bits, dtype=np.uint8)
        np.testing.assert_array_equal(
            code.encode(zeros), np.zeros(code.codeword_bits, dtype=np.uint8)
        )


class TestRepetitionSpecifics:
    def test_even_length_rejected(self):
        with pytest.raises(ConfigurationError):
            RepetitionCode(4)

    def test_majority_vote(self):
        code = RepetitionCode(5)
        assert code.decode(np.array([1, 1, 1, 0, 0], dtype=np.uint8))[0] == 1
        assert code.decode(np.array([0, 0, 1, 1, 0], dtype=np.uint8))[0] == 0


class TestGolaySpecifics:
    def test_parameters(self):
        code = ExtendedGolayCode()
        assert (code.codeword_bits, code.message_bits, code.correctable_errors) == (
            24, 12, 3,
        )

    def test_minimum_distance_is_8(self, rng):
        """Random nonzero codewords all have weight >= 8 (d=8 code)."""
        code = ExtendedGolayCode()
        for _ in range(300):
            message = rng.integers(0, 2, 12, dtype=np.uint8)
            if not message.any():
                continue
            assert code.encode(message).sum() >= 8

    def test_weight_four_detected_not_miscorrected(self, rng):
        """Weight-4 errors lie exactly between codewords: must raise."""
        code = ExtendedGolayCode()
        failures = 0
        for _ in range(50):
            message = rng.integers(0, 2, 12, dtype=np.uint8)
            codeword = code.encode(message)
            positions = rng.choice(24, size=4, replace=False)
            received = codeword.copy()
            received[positions] ^= 1
            try:
                decoded = code.decode(received)
                # If decoding *did* return, it must differ from message
                # by construction (the word is distance 4 from both).
                assert not np.array_equal(decoded, message) or True
            except DecodingFailure:
                failures += 1
        assert failures == 50


class TestBCHSpecifics:
    def test_bch_15_7_parameters(self):
        code = BCHCode(4, 2)
        assert (code.codeword_bits, code.message_bits) == (15, 7)

    def test_bch_31_parameters(self):
        assert BCHCode(5, 2).message_bits == 21

    def test_uncorrectable_raises_or_differs(self, rng):
        """Beyond-t patterns never silently return the sent message
        while claiming success on a detectably bad word."""
        code = BCHCode(4, 2)
        raised = 0
        for _ in range(100):
            message = rng.integers(0, 2, code.message_bits, dtype=np.uint8)
            codeword = code.encode(message)
            positions = rng.choice(code.codeword_bits, size=5, replace=False)
            received = codeword.copy()
            received[positions] ^= 1
            try:
                code.decode(received)
            except DecodingFailure:
                raised += 1
        assert raised > 0  # at least some weight-5 patterns are detected

    def test_excessive_t_rejected(self):
        with pytest.raises(ConfigurationError):
            BCHCode(3, 4)  # would leave no message bits


class TestConcatenatedSpecifics:
    def test_dimensions(self):
        code = ConcatenatedCode(ExtendedGolayCode(), RepetitionCode(5))
        assert code.codeword_bits == 120
        assert code.message_bits == 12

    def test_guaranteed_radius(self):
        code = ConcatenatedCode(ExtendedGolayCode(), RepetitionCode(5))
        assert code.correctable_errors == (3 + 1) * (2 + 1) - 1

    def test_survives_high_random_ber(self, rng):
        """15 % i.i.d. errors: far above the paper's worst-case WCHD."""
        code = ConcatenatedCode(ExtendedGolayCode(), RepetitionCode(7))
        successes = 0
        for _ in range(50):
            message = rng.integers(0, 2, 12, dtype=np.uint8)
            codeword = code.encode(message)
            noise = (rng.random(code.codeword_bits) < 0.15).astype(np.uint8)
            try:
                if np.array_equal(code.decode(codeword ^ noise), message):
                    successes += 1
            except DecodingFailure:
                pass
        assert successes >= 48

    def test_non_repetition_inner_rejected(self):
        with pytest.raises(ConfigurationError):
            ConcatenatedCode(ExtendedGolayCode(), HammingCode(3))
