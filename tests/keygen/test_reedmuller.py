"""Tests for first-order Reed–Muller codes."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DecodingFailure
from repro.keygen.ecc.reedmuller import ReedMullerCode, fast_walsh_hadamard


class TestFWHT:
    def test_constant_input(self):
        spectrum = fast_walsh_hadamard(np.ones(8))
        assert spectrum[0] == pytest.approx(8.0)
        np.testing.assert_allclose(spectrum[1:], 0.0)

    def test_parseval(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=64)
        spectrum = fast_walsh_hadamard(values)
        assert np.sum(spectrum**2) == pytest.approx(64 * np.sum(values**2))

    def test_involution_up_to_scale(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=16)
        twice = fast_walsh_hadamard(fast_walsh_hadamard(values))
        np.testing.assert_allclose(twice, 16 * values)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ConfigurationError):
            fast_walsh_hadamard(np.ones(6))


class TestReedMuller:
    def test_parameters(self):
        code = ReedMullerCode(5)
        assert code.codeword_bits == 32
        assert code.message_bits == 6
        assert code.correctable_errors == 7

    def test_clean_roundtrip(self, rng):
        code = ReedMullerCode(6)
        for _ in range(20):
            message = rng.integers(0, 2, 7, dtype=np.uint8)
            np.testing.assert_array_equal(code.decode(code.encode(message)), message)

    def test_minimum_distance(self, rng):
        """Every nonzero codeword of RM(1, m) has weight 2^(m-1) (or
        2^m for the all-ones codeword)."""
        code = ReedMullerCode(5)
        for _ in range(50):
            message = rng.integers(0, 2, 6, dtype=np.uint8)
            if not message.any():
                continue
            weight = int(code.encode(message).sum())
            assert weight in (16, 32)

    def test_corrects_guaranteed_radius(self, rng):
        code = ReedMullerCode(6)  # [64, 7], t = 15
        for _ in range(25):
            message = rng.integers(0, 2, 7, dtype=np.uint8)
            codeword = code.encode(message)
            positions = rng.choice(64, size=15, replace=False)
            received = codeword.copy()
            received[positions] ^= 1
            np.testing.assert_array_equal(code.decode(received), message)

    def test_ml_corrects_beyond_radius_on_random_errors(self, rng):
        """The Hadamard decoder is ML: 20 random errors in 64 bits
        (beyond the guaranteed 15) still usually decode."""
        code = ReedMullerCode(6)
        successes = 0
        for _ in range(30):
            message = rng.integers(0, 2, 7, dtype=np.uint8)
            codeword = code.encode(message)
            positions = rng.choice(64, size=20, replace=False)
            received = codeword.copy()
            received[positions] ^= 1
            try:
                successes += np.array_equal(code.decode(received), message)
            except DecodingFailure:
                pass
        assert successes >= 20

    def test_equidistant_word_refused(self):
        """A half-distance error (weight 2^(m-2) toward another
        codeword in a structured pattern) can tie; ties must raise,
        never silently pick.  Construct a word exactly between the
        all-zero codeword and the x1 codeword."""
        code = ReedMullerCode(4)  # [16, 5, 8]
        x1_codeword = code.encode(np.array([0, 1, 0, 0, 0], dtype=np.uint8))
        halfway = x1_codeword.copy()
        ones = np.flatnonzero(halfway)
        halfway[ones[: ones.size // 2]] = 0  # 4 of 8 ones removed
        with pytest.raises(DecodingFailure):
            code.decode(halfway)

    def test_linearity(self, rng):
        code = ReedMullerCode(5)
        a = rng.integers(0, 2, 6, dtype=np.uint8)
        b = rng.integers(0, 2, 6, dtype=np.uint8)
        np.testing.assert_array_equal(
            code.encode(a) ^ code.encode(b), code.encode(a ^ b)
        )

    def test_small_m_rejected(self):
        with pytest.raises(ConfigurationError):
            ReedMullerCode(1)

    def test_puf_pipeline_integration(self, chip):
        """RM(1, 6) slots into the key generator."""
        from repro.keygen.keygen import SRAMKeyGenerator

        generator = SRAMKeyGenerator(
            chip, code=ReedMullerCode(6), key_bits=128, secret_bits=49
        )
        key, record = generator.enroll(random_state=2)
        assert generator.reconstruction_succeeds(record, key)
