"""Tests for GF(2^m) arithmetic."""

import pytest

from repro.errors import ConfigurationError
from repro.keygen.ecc.gf2m import GF2m, PRIMITIVE_POLYNOMIALS


@pytest.fixture(scope="module")
def gf16() -> GF2m:
    return GF2m(4)


class TestFieldStructure:
    @pytest.mark.parametrize("m", sorted(PRIMITIVE_POLYNOMIALS))
    def test_exp_log_roundtrip(self, m):
        field = GF2m(m)
        for power in range(field.order):
            assert field.log(field.exp(power)) == power

    def test_exp_is_periodic(self, gf16):
        assert gf16.exp(0) == gf16.exp(15) == 1

    def test_multiplicative_identity(self, gf16):
        for element in range(1, 16):
            assert gf16.multiply(element, 1) == element

    def test_zero_annihilates(self, gf16):
        for element in range(16):
            assert gf16.multiply(element, 0) == 0

    def test_inverse(self, gf16):
        for element in range(1, 16):
            assert gf16.multiply(element, gf16.inverse(element)) == 1

    def test_inverse_of_zero_rejected(self, gf16):
        with pytest.raises(ConfigurationError):
            gf16.inverse(0)

    def test_log_of_zero_rejected(self, gf16):
        with pytest.raises(ConfigurationError):
            gf16.log(0)

    def test_multiplication_commutative(self, gf16):
        for a in range(16):
            for b in range(16):
                assert gf16.multiply(a, b) == gf16.multiply(b, a)

    def test_power(self, gf16):
        alpha = gf16.exp(1)
        assert gf16.power(alpha, 3) == gf16.exp(3)
        assert gf16.power(alpha, -1) == gf16.inverse(alpha)

    def test_out_of_field_rejected(self, gf16):
        with pytest.raises(ConfigurationError):
            gf16.multiply(16, 1)

    def test_unsupported_degree_rejected(self):
        with pytest.raises(ConfigurationError):
            GF2m(11)


class TestPolynomials:
    def test_poly_eval_constant(self, gf16):
        assert gf16.poly_eval([7], 3) == 7

    def test_poly_eval_linear(self, gf16):
        # p(x) = 1 + x evaluated at alpha.
        alpha = gf16.exp(1)
        assert gf16.poly_eval([1, 1], alpha) == (1 ^ alpha)

    def test_minimal_polynomial_of_one(self, gf16):
        """alpha^0 = 1 has minimal polynomial x + 1 (0b11)."""
        assert gf16.minimal_polynomial(0) == 0b11

    def test_minimal_polynomial_of_alpha_is_primitive_poly(self, gf16):
        assert gf16.minimal_polynomial(1) == PRIMITIVE_POLYNOMIALS[4]

    def test_minimal_polynomial_annihilates_conjugates(self, gf16):
        """m(x) of alpha^3 must vanish at alpha^3, alpha^6, alpha^12, alpha^9."""
        mask = gf16.minimal_polynomial(3)
        coefficients = [(mask >> i) & 1 for i in range(mask.bit_length())]
        for exponent in (3, 6, 12, 9):
            assert gf16.poly_eval(coefficients, gf16.exp(exponent)) == 0
