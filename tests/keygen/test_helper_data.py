"""Tests for the code-offset fuzzy extractor."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ReconstructionFailure
from repro.io.bitutil import random_bits
from repro.keygen.ecc import ExtendedGolayCode, RepetitionCode, ConcatenatedCode
from repro.keygen.helper_data import CodeOffsetSketch, HelperData


@pytest.fixture
def sketch() -> CodeOffsetSketch:
    return CodeOffsetSketch(ExtendedGolayCode())


class TestEnrollReconstruct:
    def test_clean_roundtrip(self, sketch, rng):
        response = random_bits(240, random_state=rng)
        secret, helper = sketch.enroll(response, secret_bits=64, random_state=1)
        recovered = sketch.reconstruct(response, helper, secret_bits=64)
        np.testing.assert_array_equal(recovered, secret)

    def test_noisy_roundtrip_within_radius(self, sketch, rng):
        response = random_bits(240, random_state=rng)
        secret, helper = sketch.enroll(response, secret_bits=64, random_state=2)
        noisy = response.copy()
        # Up to 3 errors per 24-bit block: flip 2 bits in each block.
        for block in range(6):
            noisy[block * 24] ^= 1
            noisy[block * 24 + 7] ^= 1
        recovered = sketch.reconstruct(noisy, helper, secret_bits=64)
        np.testing.assert_array_equal(recovered, secret)

    def test_excessive_noise_fails_loudly(self, sketch, rng):
        response = random_bits(240, random_state=rng)
        secret, helper = sketch.enroll(response, secret_bits=64, random_state=3)
        hostile = response ^ random_bits(240, random_state=rng)  # ~50 % errors
        with pytest.raises(ReconstructionFailure):
            sketch.reconstruct(hostile, helper, secret_bits=64)

    def test_wrong_device_fails(self, sketch, rng):
        enroll_response = random_bits(240, random_state=rng)
        other_device = random_bits(240, random_state=rng)
        secret, helper = sketch.enroll(enroll_response, secret_bits=64, random_state=4)
        try:
            recovered = sketch.reconstruct(other_device, helper, secret_bits=64)
            assert not np.array_equal(recovered, secret)
        except ReconstructionFailure:
            pass  # also acceptable: detected as uncorrectable

    def test_secret_is_uniform_not_response(self, sketch, rng):
        """The enrolled secret is random, not derived from the response."""
        response = np.ones(240, dtype=np.uint8)
        secret, _ = sketch.enroll(response, secret_bits=64, random_state=5)
        assert 10 < secret.sum() < 54  # not degenerate


class TestSizing:
    def test_response_bits_needed(self, sketch):
        # 64 secret bits / 12 per block -> 6 blocks x 24 bits.
        assert sketch.response_bits_needed(64) == 144

    def test_concatenated_sizing(self):
        sketch = CodeOffsetSketch(
            ConcatenatedCode(ExtendedGolayCode(), RepetitionCode(5))
        )
        assert sketch.response_bits_needed(12) == 120

    def test_short_response_rejected(self, sketch):
        with pytest.raises(ConfigurationError):
            sketch.enroll(random_bits(100), secret_bits=64)

    def test_short_reconstruction_response_rejected(self, sketch, rng):
        response = random_bits(240, random_state=rng)
        _, helper = sketch.enroll(response, secret_bits=64)
        with pytest.raises(ConfigurationError):
            sketch.reconstruct(response[:100], helper, secret_bits=64)


class TestHelperData:
    def test_code_mismatch_rejected(self, sketch, rng):
        response = random_bits(240, random_state=rng)
        _, helper = sketch.enroll(response, secret_bits=64)
        other = CodeOffsetSketch(RepetitionCode(3))
        with pytest.raises(ConfigurationError):
            other.reconstruct(response, helper, secret_bits=64)

    def test_helper_validation(self):
        with pytest.raises(ConfigurationError):
            HelperData(offset=np.zeros(10, dtype=np.uint8), blocks=3, code_name="x")

    def test_helper_does_not_reveal_secret_trivially(self, sketch, rng):
        """Helper XOR response recovers the codeword, not the secret
        directly; two enrollments of the same response differ."""
        response = random_bits(240, random_state=rng)
        secret_a, helper_a = sketch.enroll(response, 64, random_state=10)
        secret_b, helper_b = sketch.enroll(response, 64, random_state=11)
        assert not np.array_equal(helper_a.offset, helper_b.offset)
        assert not np.array_equal(secret_a, secret_b)
