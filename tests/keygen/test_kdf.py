"""Tests for the hash-based key derivation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.io.bitutil import random_bits
from repro.keygen.kdf import derive_key


class TestDeriveKey:
    def test_deterministic(self):
        secret = random_bits(128, random_state=1)
        np.testing.assert_array_equal(derive_key(secret), derive_key(secret))

    def test_key_length(self):
        secret = random_bits(128, random_state=2)
        assert derive_key(secret, key_bits=256).size == 256
        assert derive_key(secret, key_bits=100).size == 100
        assert derive_key(secret, key_bits=1000).size == 1000

    def test_different_secrets_different_keys(self):
        a = derive_key(random_bits(128, random_state=3))
        b = derive_key(random_bits(128, random_state=4))
        assert not np.array_equal(a, b)

    def test_single_bit_flip_avalanches(self):
        secret = random_bits(128, random_state=5)
        flipped = secret.copy()
        flipped[0] ^= 1
        distance = (derive_key(secret) != derive_key(flipped)).mean()
        assert 0.3 < distance < 0.7

    def test_context_separation(self):
        secret = random_bits(128, random_state=6)
        a = derive_key(secret, context="device-a")
        b = derive_key(secret, context="device-b")
        assert not np.array_equal(a, b)

    def test_length_prefix_prevents_padding_collision(self):
        """A 7-bit secret and its 8-bit zero-padded form differ."""
        short = np.array([1, 0, 1, 0, 1, 0, 1], dtype=np.uint8)
        padded = np.concatenate([short, [0]]).astype(np.uint8)
        assert not np.array_equal(derive_key(short), derive_key(padded))

    def test_output_roughly_balanced(self):
        key = derive_key(random_bits(128, random_state=7), key_bits=4096)
        assert 0.45 < key.mean() < 0.55

    def test_empty_secret_rejected(self):
        with pytest.raises(ConfigurationError):
            derive_key(np.array([], dtype=np.uint8))

    def test_bad_key_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            derive_key(random_bits(8), key_bits=0)
