"""Tests for key-generation entropy accounting."""

import pytest

from repro.errors import ConfigurationError
from repro.keygen.accounting import (
    audit_pipeline,
    bias_within_boundary,
    helper_data_leakage_bits,
    min_entropy_per_bit,
    von_neumann_retention,
)
from repro.keygen.ecc import ExtendedGolayCode, RepetitionCode


class TestPrimitives:
    def test_fair_bit_has_full_entropy(self):
        assert min_entropy_per_bit(0.5) == pytest.approx(1.0)

    def test_paper_bias_entropy(self):
        assert min_entropy_per_bit(0.627) == pytest.approx(0.6735, abs=1e-3)

    def test_degenerate_bias_has_no_entropy(self):
        assert min_entropy_per_bit(1.0) == 0.0

    def test_paper_bias_within_boundary(self):
        """62.7 % sits comfortably inside the 25 %/75 % boundary."""
        assert bias_within_boundary(0.627)

    def test_extreme_bias_outside_boundary(self):
        assert not bias_within_boundary(0.80)
        assert not bias_within_boundary(0.20)

    def test_cvn_retention_peak_at_half(self):
        assert von_neumann_retention(0.5) == pytest.approx(0.25)
        assert von_neumann_retention(0.627) == pytest.approx(0.627 * 0.373)

    def test_leakage_is_parity_bits(self):
        assert helper_data_leakage_bits(ExtendedGolayCode(), 4) == 4 * 12


class TestAuditPipeline:
    def test_safe_configuration(self):
        budget = audit_pipeline(
            ExtendedGolayCode(),
            response_bits=8192,
            response_bias=0.627,
            key_bits=128,
            secret_bits=128,
        )
        assert budget.is_safe
        assert budget.margin_bits >= 0

    def test_overclaimed_key_flagged(self):
        """Deriving 256 key bits from a 128-bit secret is flagged: the
        Golay sketch leaves only ~k bits of residual entropy per block."""
        budget = audit_pipeline(
            ExtendedGolayCode(),
            response_bits=8192,
            response_bias=0.627,
            key_bits=256,
            secret_bits=128,
        )
        assert not budget.is_safe
        assert budget.margin_bits < 0

    def test_residual_equals_message_bits_for_debias(self):
        """With full-entropy (debiased) input the n-k leakage leaves
        exactly k bits per block."""
        budget = audit_pipeline(
            ExtendedGolayCode(),
            response_bits=8192,
            response_bias=0.627,
            key_bits=128,
            secret_bits=120,  # exactly 10 blocks
        )
        assert budget.residual_entropy_bits == pytest.approx(10 * 12)

    def test_undebias_biased_source_loses_entropy(self):
        debiased = audit_pipeline(
            ExtendedGolayCode(), 8192, 0.627, key_bits=96, secret_bits=96
        )
        raw = audit_pipeline(
            ExtendedGolayCode(), 8192, 0.627, key_bits=96, secret_bits=96,
            debias=False,
        )
        assert raw.residual_entropy_bits < debiased.residual_entropy_bits

    def test_raw_biased_sketch_can_leak_everything(self):
        """A high-redundancy code on raw biased bits can leak more than
        the input carries — residual clamps at zero, clearly unsafe."""
        budget = audit_pipeline(
            RepetitionCode(9), 8192, 0.627, key_bits=64, secret_bits=64,
            debias=False,
        )
        assert budget.residual_entropy_bits == 0.0
        assert not budget.is_safe

    def test_short_response_rejected(self):
        with pytest.raises(ConfigurationError):
            audit_pipeline(
                ExtendedGolayCode(), response_bits=100, response_bias=0.627,
                secret_bits=128,
            )

    def test_render_mentions_verdict(self):
        budget = audit_pipeline(
            ExtendedGolayCode(), 8192, 0.627, key_bits=128, secret_bits=128
        )
        text = budget.render()
        assert "SAFE" in text and "leakage" in text
