"""Tests for end-to-end SRAM PUF key generation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.keygen.ecc import ConcatenatedCode, ExtendedGolayCode, RepetitionCode
from repro.keygen.keygen import SRAMKeyGenerator, default_code
from repro.sram.chip import SRAMChip


@pytest.fixture
def generator(chip) -> SRAMKeyGenerator:
    return SRAMKeyGenerator(chip, key_bits=256, secret_bits=96)


class TestEnrollment:
    def test_enroll_returns_key_and_record(self, generator):
        key, record = generator.enroll(random_state=1)
        assert key.size == 256
        assert record.key_bits == 256
        assert record.debias_pairs is not None

    def test_fresh_reconstruction_matches(self, generator):
        key, record = generator.enroll(random_state=2)
        np.testing.assert_array_equal(generator.reconstruct(record), key)

    def test_reconstruction_after_two_years(self, chip):
        generator = SRAMKeyGenerator(chip, key_bits=128, secret_bits=48)
        key, record = generator.enroll(random_state=3)
        chip.age_months(24.0, steps=12)
        assert generator.reconstruction_succeeds(record, key)

    def test_repeated_reconstructions_stable(self, generator):
        key, record = generator.enroll(random_state=4)
        for _ in range(5):
            np.testing.assert_array_equal(generator.reconstruct(record), key)

    def test_wrong_device_does_not_reproduce_key(self, generator, seeds):
        key, record = generator.enroll(random_state=5)
        impostor_chip = SRAMChip(1, random_state=seeds)
        impostor = SRAMKeyGenerator(impostor_chip, key_bits=256, secret_bits=96)
        assert not impostor.reconstruction_succeeds(record, key)


class TestConfiguration:
    def test_default_code_shape(self):
        code = default_code()
        assert code.codeword_bits == 120
        assert code.message_bits == 12

    def test_without_debiasing(self, chip):
        generator = SRAMKeyGenerator(chip, debias=False, secret_bits=48)
        key, record = generator.enroll(random_state=6)
        assert record.debias_pairs is None
        np.testing.assert_array_equal(generator.reconstruct(record), key)

    def test_debias_mode_mismatch_rejected(self, chip):
        with_debias = SRAMKeyGenerator(chip, secret_bits=48)
        without = SRAMKeyGenerator(chip, debias=False, secret_bits=48)
        key, record = with_debias.enroll(random_state=7)
        with pytest.raises(ConfigurationError):
            without.reconstruct(record)

    def test_oversized_secret_rejected(self, small_chip):
        generator = SRAMKeyGenerator(small_chip, secret_bits=4096)
        with pytest.raises(ConfigurationError, match="usable bits"):
            generator.enroll()

    def test_custom_code(self, chip):
        code = ConcatenatedCode(ExtendedGolayCode(), RepetitionCode(3))
        generator = SRAMKeyGenerator(chip, code=code, secret_bits=48)
        key, record = generator.enroll(random_state=8)
        np.testing.assert_array_equal(generator.reconstruct(record), key)

    def test_invalid_sizes_rejected(self, chip):
        with pytest.raises(ConfigurationError):
            SRAMKeyGenerator(chip, key_bits=0)


class TestAudit:
    def test_safe_configuration_audits_safe(self, chip):
        generator = SRAMKeyGenerator(chip, key_bits=128, secret_bits=128)
        budget = generator.audit()
        assert budget.is_safe
        assert budget.response_bias == pytest.approx(0.627, abs=0.03)

    def test_overclaimed_key_audits_unsafe(self, chip):
        """The audit flags deriving more key bits than the sketch's
        residual entropy supports."""
        generator = SRAMKeyGenerator(chip, key_bits=256, secret_bits=96)
        assert not generator.audit().is_safe

    def test_audit_counts_debiasing(self, chip):
        debiased = SRAMKeyGenerator(chip, key_bits=96, secret_bits=96).audit()
        raw = SRAMKeyGenerator(
            chip, debias=False, key_bits=96, secret_bits=96
        ).audit()
        assert raw.residual_entropy_bits < debiased.residual_entropy_bits
