"""Tests for temporal majority voting."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.keygen.multireadout import VotedReadout, majority_vote, voted_error_rate


class TestMajorityVote:
    def test_basic(self):
        block = np.array([[1, 0, 1], [1, 1, 0], [0, 0, 1]], dtype=np.uint8)
        np.testing.assert_array_equal(majority_vote(block), [1, 0, 1])

    def test_single_vote_is_identity(self):
        row = np.array([[1, 0, 1]], dtype=np.uint8)
        np.testing.assert_array_equal(majority_vote(row), [1, 0, 1])

    def test_even_votes_rejected(self):
        with pytest.raises(ConfigurationError):
            majority_vote(np.zeros((4, 8), dtype=np.uint8))

    def test_1d_rejected(self):
        with pytest.raises(ConfigurationError):
            majority_vote(np.zeros(8, dtype=np.uint8))


class TestVotedErrorRate:
    def test_exact_binomial(self):
        # P[Bin(3, 0.1) >= 2] = 3 * 0.01 * 0.9 + 0.001 = 0.028
        assert voted_error_rate(0.1, 3) == pytest.approx(0.028)

    def test_three_votes_on_paper_error_rate(self):
        """3 % per-read error becomes ~0.26 % with 3 votes."""
        assert voted_error_rate(0.03, 3) == pytest.approx(0.0026, abs=2e-4)

    def test_more_votes_fewer_errors(self):
        rates = [voted_error_rate(0.05, votes) for votes in (1, 3, 5, 7)]
        assert rates == sorted(rates, reverse=True)

    def test_single_vote_is_raw_rate(self):
        assert voted_error_rate(0.07, 1) == pytest.approx(0.07)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            voted_error_rate(1.5, 3)
        with pytest.raises(ConfigurationError):
            voted_error_rate(0.1, 2)


class TestVotedReadout:
    def test_read_shape(self, chip):
        reader = VotedReadout(chip, votes=3)
        assert reader.read().shape == (8192,)
        assert chip.power_up_count == 3

    def test_voting_reduces_reference_distance(self, chip):
        reference = chip.read_startup()
        raw_errors = np.mean(
            [(chip.read_startup() != reference).mean() for _ in range(10)]
        )
        voted = VotedReadout(chip, votes=5)
        voted_errors = np.mean(
            [(voted.read() != reference).mean() for _ in range(10)]
        )
        assert voted_errors < raw_errors

    def test_even_votes_rejected(self, chip):
        with pytest.raises(ConfigurationError):
            VotedReadout(chip, votes=4)
