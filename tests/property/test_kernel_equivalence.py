"""Property-based scalar ≡ vector equivalence (hypothesis).

``tests/sram/test_fleetkernel_identity.py`` pins the kernel contract at
hand-picked settings; here hypothesis draws the settings — fleet size,
geometry, noise amplitude, fidelity, measurement count, acceleration —
and asserts the same bit-identity after *every* month: power-up bits,
drifted skew states, and the exact RNG stream position of every board.
Any vectorized op that consumes randomness in a different order or
rounds differently from the scalar path fails here on a shrunk,
reproducible counterexample.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assessment import LongTermAssessment
from repro.core.config import StudyConfig
from repro.rng import SeedHierarchy
from repro.sram.aging import AgingSimulator
from repro.sram.chip import SRAMChip
from repro.sram.fleetkernel import FleetKernel
from repro.sram.powerup import sample_measurement_block
from repro.sram.profiles import ATMEGA32U4
from repro.telemetry import reset_telemetry

#: One randomized kernel-level scenario.
kernel_configs = st.fixed_dictionaries(
    {
        "boards": st.integers(1, 5),
        "sram_bytes": st.integers(4, 40),
        "read_fraction": st.sampled_from((0.25, 0.5, 1.0)),
        "noise_sigma_v": st.floats(0.005, 0.08),
        "months": st.integers(1, 3),
        "measurements": st.integers(2, 30),
        "statistical": st.booleans(),
        "acceleration": st.sampled_from((1.0, 6.0, 24.0)),
        "steps": st.integers(1, 3),
        "seed": st.integers(0, 2**32 - 1),
    }
)


def _profile(cfg):
    read_bytes = max(1, int(cfg["sram_bytes"] * cfg["read_fraction"]))
    return ATMEGA32U4.with_overrides(
        name="atmega32u4-proptest",
        sram_bytes=cfg["sram_bytes"],
        read_bytes=read_bytes,
        noise_sigma_v=cfg["noise_sigma_v"],
    )


class TestKernelEquivalenceProperties:
    @settings(max_examples=25, deadline=None)
    @given(kernel_configs)
    def test_month_loop_bit_identical(self, cfg):
        """Scalar and vector agree after every month of a random study."""
        profile = _profile(cfg)
        board_ids = tuple(range(cfg["boards"]))
        kernel = FleetKernel.manufacture(board_ids, profile, root_seed=cfg["seed"])
        seeds = SeedHierarchy(cfg["seed"])
        chips = [SRAMChip(b, profile, random_state=seeds) for b in board_ids]
        simulator = AgingSimulator(profile)

        references = kernel.read_startup()
        for index, chip in enumerate(chips):
            np.testing.assert_array_equal(references[index], chip.read_startup())

        for month in range(cfg["months"] + 1):
            counts, first = kernel.measure_block(
                cfg["measurements"], statistical=cfg["statistical"]
            )
            for index, chip in enumerate(chips):
                sample = sample_measurement_block(
                    chip, cfg["measurements"], statistical=cfg["statistical"]
                )
                np.testing.assert_array_equal(counts[index], sample.ones_counts)
                np.testing.assert_array_equal(first[index], sample.first_readout)
            if month < cfg["months"]:
                kernel.age_months(cfg["acceleration"], steps=cfg["steps"])
                for chip in chips:
                    simulator.age_array_months(
                        chip.array, cfg["acceleration"], steps=cfg["steps"]
                    )
            # Drift state and stream position must agree *every* month,
            # not just at the end — a transient divergence that happens
            # to cancel is still a broken kernel.
            states = kernel.export_states()
            for chip in chips:
                scalar_state = chip.array.export_state()
                state = states[chip.chip_id]
                np.testing.assert_array_equal(state["skew_v"], scalar_state["skew_v"])
                assert state["age_seconds"] == scalar_state["age_seconds"]
                assert state["rng_state"] == scalar_state["rng_state"]

    @settings(max_examples=8, deadline=None)
    @given(
        st.fixed_dictionaries(
            {
                "device_count": st.integers(2, 4),
                "months": st.integers(1, 2),
                "measurements": st.integers(5, 25),
                "statistical": st.booleans(),
                "temperature_walk_k": st.sampled_from((0.0, 1.5)),
                "seed": st.integers(0, 2**16 - 1),
            }
        )
    )
    def test_campaign_snapshots_bit_identical(self, cfg):
        """End-to-end: ``StudyConfig(kernel=...)`` is a pure perf knob."""
        results = {}
        for kernel in ("scalar", "vector"):
            reset_telemetry()
            result = LongTermAssessment(StudyConfig(kernel=kernel, **cfg)).run()
            results[kernel] = result.campaign
        scalar, vector = results["scalar"], results["vector"]
        assert len(scalar.snapshots) == len(vector.snapshots)
        for snap_s, snap_v in zip(scalar.snapshots, vector.snapshots):
            assert snap_s.month == snap_v.month
            np.testing.assert_array_equal(snap_s.wchd, snap_v.wchd)
            np.testing.assert_array_equal(snap_s.fhw, snap_v.fhw)
            np.testing.assert_array_equal(snap_s.stable_ratio, snap_v.stable_ratio)
            np.testing.assert_array_equal(snap_s.noise_entropy, snap_v.noise_entropy)
            np.testing.assert_array_equal(snap_s.bchd_pairs, snap_v.bchd_pairs)
            # nan == nan must pass: a 1-board fleet has no PUF entropy.
            np.testing.assert_array_equal(snap_s.puf_entropy, snap_v.puf_entropy)
        assert scalar.references.keys() == vector.references.keys()
        for board_id, ref_s in scalar.references.items():
            np.testing.assert_array_equal(ref_s, vector.references[board_id])
