"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io.bitutil import bits_from_hex, bits_to_hex, pack_bits, unpack_bits
from repro.keygen.debias import von_neumann_debias
from repro.keygen.ecc import BCHCode, ExtendedGolayCode, HammingCode, RepetitionCode
from repro.keygen.ecc.gf2m import GF2m
from repro.metrics.hamming import (
    fractional_hamming_distance,
    hamming_distance,
    within_class_hd,
    within_class_hd_from_counts,
)
from repro.metrics.entropy import min_entropy_bits


bit_arrays = st.integers(1, 256).flatmap(
    lambda n: st.lists(st.integers(0, 1), min_size=n, max_size=n)
).map(lambda bits: np.array(bits, dtype=np.uint8))

byte_aligned_bits = st.integers(1, 32).flatmap(
    lambda n: st.lists(st.integers(0, 1), min_size=8 * n, max_size=8 * n)
).map(lambda bits: np.array(bits, dtype=np.uint8))


class TestBitPackingProperties:
    @given(byte_aligned_bits)
    def test_pack_unpack_roundtrip(self, bits):
        np.testing.assert_array_equal(unpack_bits(pack_bits(bits)), bits)

    @given(byte_aligned_bits)
    def test_hex_roundtrip(self, bits):
        np.testing.assert_array_equal(bits_from_hex(bits_to_hex(bits)), bits)

    @given(byte_aligned_bits)
    def test_packed_size(self, bits):
        assert len(pack_bits(bits)) == bits.size // 8


class TestHammingProperties:
    @given(bit_arrays)
    def test_distance_to_self_is_zero(self, bits):
        assert hamming_distance(bits, bits) == 0

    @given(bit_arrays)
    def test_distance_to_complement_is_length(self, bits):
        assert hamming_distance(bits, 1 - bits) == bits.size

    @given(bit_arrays, st.randoms(use_true_random=False))
    def test_symmetry(self, bits, rnd):
        other = np.array([rnd.randint(0, 1) for _ in range(bits.size)], dtype=np.uint8)
        assert hamming_distance(bits, other) == hamming_distance(other, bits)

    @given(bit_arrays)
    def test_fractional_distance_bounded(self, bits):
        rng = np.random.default_rng(0)
        other = rng.integers(0, 2, bits.size, dtype=np.uint8)
        assert 0.0 <= fractional_hamming_distance(bits, other) <= 1.0

    @given(st.integers(2, 50), st.integers(4, 64))
    def test_wchd_counts_equals_blockwise(self, measurements, cells):
        rng = np.random.default_rng(measurements * 1000 + cells)
        block = rng.integers(0, 2, (measurements, cells), dtype=np.uint8)
        reference = rng.integers(0, 2, cells, dtype=np.uint8)
        direct = within_class_hd(block, reference)
        counts = within_class_hd_from_counts(
            block.sum(axis=0, dtype=np.int64), measurements, reference
        )
        assert abs(direct - counts) < 1e-12


class TestEntropyProperties:
    @given(st.lists(st.floats(0.0, 1.0), min_size=1, max_size=64))
    def test_min_entropy_bounds(self, probabilities):
        entropy = min_entropy_bits(np.array(probabilities))
        assert np.all(entropy >= 0.0)
        assert np.all(entropy <= 1.0 + 1e-12)

    @given(st.floats(0.0, 1.0))
    def test_min_entropy_symmetry(self, p):
        a = min_entropy_bits(np.array([p]))[0]
        b = min_entropy_bits(np.array([1.0 - p]))[0]
        assert abs(a - b) < 1e-9


class TestVonNeumannProperties:
    @given(st.lists(st.integers(0, 1), min_size=2, max_size=512))
    def test_output_never_longer_than_half(self, bits):
        result = von_neumann_debias(np.array(bits, dtype=np.uint8))
        assert result.bits.size <= len(bits) // 2

    @given(st.lists(st.integers(0, 1), min_size=2, max_size=512))
    def test_selected_pairs_are_discordant(self, bits):
        vector = np.array(bits, dtype=np.uint8)
        result = von_neumann_debias(vector)
        pairs = vector[: vector.size - vector.size % 2].reshape(-1, 2)
        for index in result.selected_pairs:
            assert pairs[index, 0] != pairs[index, 1]


class TestECCProperties:
    @settings(max_examples=30)
    @given(st.lists(st.integers(0, 1), min_size=12, max_size=12), st.data())
    def test_golay_corrects_any_weight_3_pattern(self, message, data):
        code = ExtendedGolayCode()
        msg = np.array(message, dtype=np.uint8)
        codeword = code.encode(msg)
        positions = data.draw(
            st.lists(st.integers(0, 23), min_size=0, max_size=3, unique=True)
        )
        received = codeword.copy()
        received[positions] ^= 1
        np.testing.assert_array_equal(code.decode(received), msg)

    @settings(max_examples=30)
    @given(st.lists(st.integers(0, 1), min_size=7, max_size=7), st.data())
    def test_bch_corrects_any_weight_2_pattern(self, message, data):
        code = BCHCode(4, 2)
        msg = np.array(message, dtype=np.uint8)
        codeword = code.encode(msg)
        positions = data.draw(
            st.lists(st.integers(0, 14), min_size=0, max_size=2, unique=True)
        )
        received = codeword.copy()
        received[positions] ^= 1
        np.testing.assert_array_equal(code.decode(received), msg)

    @settings(max_examples=30)
    @given(st.lists(st.integers(0, 1), min_size=11, max_size=11),
           st.integers(0, 14))
    def test_hamming_corrects_any_single_error(self, message, position):
        code = HammingCode(4)
        msg = np.array(message, dtype=np.uint8)
        received = code.encode(msg)
        received[position] ^= 1
        np.testing.assert_array_equal(code.decode(received), msg)

    @settings(max_examples=20)
    @given(st.integers(0, 1), st.integers(1, 3))
    def test_repetition_majority_invariant(self, bit, flips):
        code = RepetitionCode(7)
        codeword = code.encode(np.array([bit], dtype=np.uint8))
        codeword[:flips] ^= 1
        assert code.decode(codeword)[0] == bit


class TestGF2mProperties:
    @settings(max_examples=50)
    @given(st.integers(1, 15), st.integers(1, 15), st.integers(1, 15))
    def test_multiplication_associative(self, a, b, c):
        field = GF2m(4)
        left = field.multiply(field.multiply(a, b), c)
        right = field.multiply(a, field.multiply(b, c))
        assert left == right

    @settings(max_examples=50)
    @given(st.integers(0, 15), st.integers(0, 15), st.integers(0, 15))
    def test_distributive_over_xor(self, a, b, c):
        """Multiplication distributes over field addition (XOR)."""
        field = GF2m(4)
        left = field.multiply(a, b ^ c)
        right = field.multiply(a, b) ^ field.multiply(a, c)
        assert left == right

    @settings(max_examples=30)
    @given(st.integers(1, 15))
    def test_fermat_little_theorem(self, a):
        """a^(2^m - 1) = 1 for every nonzero element."""
        field = GF2m(4)
        assert field.power(a, 15) == 1
