"""Property-based invariants of the Table I report builder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.summary import (
    MetricSummary,
    WorstDirection,
    geometric_monthly_change,
    relative_change,
)

positive_values = st.floats(0.001, 0.999)
device_arrays = st.integers(2, 16).flatmap(
    lambda n: st.tuples(
        st.lists(positive_values, min_size=n, max_size=n),
        st.lists(positive_values, min_size=n, max_size=n),
    )
)


class TestSummaryInvariants:
    @settings(max_examples=50)
    @given(device_arrays)
    def test_highest_worst_bounds_average(self, values):
        start, end = values
        summary = MetricSummary.from_device_values(
            "metric", start, end, 24, WorstDirection.HIGHEST
        )
        assert summary.start_worst >= summary.start_avg - 1e-12
        assert summary.end_worst >= summary.end_avg - 1e-12

    @settings(max_examples=50)
    @given(device_arrays)
    def test_lowest_worst_bounds_average(self, values):
        start, end = values
        summary = MetricSummary.from_device_values(
            "metric", start, end, 24, WorstDirection.LOWEST
        )
        assert summary.start_worst <= summary.start_avg + 1e-12
        assert summary.end_worst <= summary.end_avg + 1e-12

    @settings(max_examples=50)
    @given(device_arrays)
    def test_worst_is_attained_by_some_device(self, values):
        start, end = values
        summary = MetricSummary.from_device_values(
            "metric", start, end, 24, WorstDirection.HIGHEST
        )
        assert summary.start_worst == pytest.approx(max(start))
        assert summary.end_worst == pytest.approx(max(end))

    @settings(max_examples=50)
    @given(positive_values, positive_values, st.integers(1, 240))
    def test_changes_share_sign(self, start, end, months):
        """Relative and geometric-monthly change always agree in sign."""
        rel = relative_change(start, end)
        monthly = geometric_monthly_change(start, end, months)
        assert np.sign(rel) == np.sign(monthly)

    @settings(max_examples=50)
    @given(positive_values, positive_values)
    def test_monthly_rate_magnitude_below_relative(self, start, end):
        """Spreading a change over 24 months shrinks its per-month rate."""
        rel = abs(relative_change(start, end))
        monthly = abs(geometric_monthly_change(start, end, 24))
        assert monthly <= rel + 1e-12

    @settings(max_examples=50)
    @given(device_arrays)
    def test_format_rows_always_renders(self, values):
        start, end = values
        summary = MetricSummary.from_device_values(
            "metric", start, end, 24, WorstDirection.HIGHEST
        )
        rows = summary.format_rows()
        assert len(rows) == 2
        assert all(isinstance(row, str) and row for row in rows)
