"""Property-based tests for the extension modules."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.firmware import build_frame, parse_frame
from repro.keygen.accounting import min_entropy_per_bit, von_neumann_retention
from repro.keygen.ecc.polar import PolarCode, bhattacharyya_parameters
from repro.metrics.summary import geometric_monthly_change
from repro.trng.sp800_22_ext import berlekamp_massey_length, gf2_rank


class TestFrameProperties:
    @given(st.integers(0, 255), st.binary(max_size=256))
    def test_frame_roundtrip(self, command, payload):
        parsed_command, parsed_payload = parse_frame(build_frame(command, payload))
        assert parsed_command == command
        assert parsed_payload == payload

    @given(st.integers(0, 255), st.binary(min_size=1, max_size=64),
           st.data())
    def test_single_bit_corruption_always_detected(self, command, payload, data):
        frame = bytearray(build_frame(command, payload))
        position = data.draw(st.integers(0, len(frame) - 1))
        bit = data.draw(st.integers(0, 7))
        frame[position] ^= 1 << bit
        try:
            parsed_command, parsed_payload = parse_frame(bytes(frame))
        except Exception:
            return  # detected — good
        # A flip in the length field shifts the payload split and is
        # caught by the length check; any other single flip breaks the
        # XOR checksum.  Either way the original content must not be
        # silently reproduced.
        assert (parsed_command, parsed_payload) != (command, payload)


class TestAccountingProperties:
    @given(st.floats(0.01, 0.99))
    def test_min_entropy_symmetric(self, bias):
        assert abs(
            min_entropy_per_bit(bias) - min_entropy_per_bit(1.0 - bias)
        ) < 1e-12

    @given(st.floats(0.0, 1.0))
    def test_min_entropy_bounded(self, bias):
        assert 0.0 <= min_entropy_per_bit(bias) <= 1.0 + 1e-12

    @given(st.floats(0.0, 1.0))
    def test_retention_bounded_by_quarter(self, bias):
        assert 0.0 <= von_neumann_retention(bias) <= 0.25 + 1e-12

    @given(st.floats(0.001, 0.5), st.floats(0.001, 0.5), st.integers(1, 120))
    def test_geometric_rate_inverts(self, start, end, months):
        rate = geometric_monthly_change(start, end, months)
        assert start * (1.0 + rate) ** months == np.float64(start * (1 + rate) ** months)
        assert abs(start * (1.0 + rate) ** months - end) < 1e-9


class TestPolarProperties:
    @given(st.integers(2, 8), st.floats(0.01, 0.49))
    def test_bhattacharyya_values_in_unit_interval(self, levels, p):
        z = bhattacharyya_parameters(levels, p)
        assert np.all(z >= 0.0) and np.all(z <= 1.0 + 1e-12)

    @given(st.integers(2, 8), st.floats(0.01, 0.49))
    def test_bhattacharyya_conservation(self, levels, p):
        """The polar transform preserves the z-sum bound: sum(z_N)
        relates to N * z0 through the split identities (z- + z+ =
        2z - z^2 + z^2 = 2z exactly for the BEC recursion)."""
        z0 = 2.0 * np.sqrt(p * (1.0 - p))
        z = bhattacharyya_parameters(levels, p)
        assert z.sum() == np.float64(z.sum())
        assert abs(z.sum() - (2**levels) * z0) < 1e-6

    @settings(max_examples=10)
    @given(st.integers(3, 6), st.data())
    def test_clean_roundtrip_any_dimension(self, levels, data):
        n = 1 << levels
        k = data.draw(st.integers(1, n - 1))
        code = PolarCode(levels, k, design_p=0.1)
        message = np.array(
            data.draw(st.lists(st.integers(0, 1), min_size=k, max_size=k)),
            dtype=np.uint8,
        )
        np.testing.assert_array_equal(code.decode(code.encode(message)), message)


class TestGF2Properties:
    @settings(max_examples=30)
    @given(st.integers(2, 12))
    def test_rank_bounded(self, size):
        rng = np.random.default_rng(size)
        matrix = rng.integers(0, 2, (size, size), dtype=np.uint8)
        assert 0 <= gf2_rank(matrix) <= size

    @settings(max_examples=30)
    @given(st.integers(2, 10))
    def test_rank_invariant_under_row_swap(self, size):
        rng = np.random.default_rng(size + 100)
        matrix = rng.integers(0, 2, (size, size), dtype=np.uint8)
        swapped = matrix.copy()
        swapped[[0, size - 1]] = swapped[[size - 1, 0]]
        assert gf2_rank(matrix) == gf2_rank(swapped)

    @settings(max_examples=30)
    @given(st.integers(2, 10))
    def test_rank_invariant_under_row_addition(self, size):
        rng = np.random.default_rng(size + 200)
        matrix = rng.integers(0, 2, (size, size), dtype=np.uint8)
        added = matrix.copy()
        added[0] ^= added[1]
        assert gf2_rank(matrix) == gf2_rank(added)


class TestBerlekampMasseyProperties:
    @settings(max_examples=30)
    @given(st.lists(st.integers(0, 1), min_size=4, max_size=128))
    def test_complexity_bounded_by_length(self, bits):
        sequence = np.array(bits, dtype=np.uint8)
        assert 0 <= berlekamp_massey_length(sequence) <= sequence.size

    @settings(max_examples=30)
    @given(st.lists(st.integers(0, 1), min_size=4, max_size=64))
    def test_complexity_monotone_in_prefix(self, bits):
        """L(s[:n]) is non-decreasing in n."""
        sequence = np.array(bits, dtype=np.uint8)
        lengths = [
            berlekamp_massey_length(sequence[:end])
            for end in range(2, sequence.size + 1)
        ]
        assert lengths == sorted(lengths)
