"""Property-based tests (hypothesis) on the population determinism contract.

The execution-level gates (``tests/exec/test_population_equivalence.py``)
prove one concrete mixed fleet identical across workers, kernels and
resume; these properties prove the *mechanism* for arbitrary specs:
board ``i``'s profile draw is a pure function of ``(spec, root_seed,
board_id)``, so any partition of the fleet — shard layout, window
replay after a resume, cohort batching — reconstructs the same
silicon.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec.plan import partition_boards
from repro.sram.population import PopulationMember, PopulationSpec
from repro.sram.profiles import REGISTRY

PROFILE_NAMES = sorted(REGISTRY)

members = st.builds(
    PopulationMember,
    profile=st.sampled_from(PROFILE_NAMES),
    weight=st.floats(0.25, 4.0, allow_nan=False),
    lots=st.integers(1, 3),
    skew_mean_spread_v=st.floats(0.0, 0.005, allow_nan=False),
    skew_sigma_spread=st.floats(0.0, 0.2, allow_nan=False),
    noise_sigma_spread=st.floats(0.0, 0.2, allow_nan=False),
)

specs = st.lists(members, min_size=1, max_size=4).map(
    lambda ms: PopulationSpec(members=tuple(ms), name="prop")
)

seeds = st.integers(0, 2**32 - 1)
fleet_sizes = st.integers(1, 24)


def expanded_profiles(spec, seed, board_ids):
    table, index = spec.materialize(seed, board_ids)
    return [table[i] for i in index]


class TestDrawPurity:
    @given(specs, seeds, fleet_sizes)
    @settings(max_examples=40, deadline=None)
    def test_interning_matches_per_board_draws(self, spec, seed, boards):
        expanded = expanded_profiles(spec, seed, range(boards))
        assert expanded == [
            spec.profile_for_board(seed, board) for board in range(boards)
        ]

    @given(specs, seeds, fleet_sizes)
    @settings(max_examples=40, deadline=None)
    def test_draws_are_resume_stable(self, spec, seed, boards):
        # A resume re-materializes only the surviving boards, in
        # whatever order the checkpoint lists them — same profiles.
        board_ids = list(range(boards))
        expanded = expanded_profiles(spec, seed, board_ids)
        replay = expanded_profiles(spec, seed, list(reversed(board_ids)))
        assert replay == list(reversed(expanded))

    @given(specs, seeds, fleet_sizes, st.sampled_from([1, 2, 4]))
    @settings(max_examples=40, deadline=None)
    def test_draws_are_shard_invariant(self, spec, seed, boards, workers):
        fleet = expanded_profiles(spec, seed, range(boards))
        sharded = []
        for shard in partition_boards(range(boards), workers):
            sharded.extend(expanded_profiles(spec, seed, shard))
        assert sharded == fleet

    @given(specs, seeds, fleet_sizes)
    @settings(max_examples=40, deadline=None)
    def test_lot_quantization_bounds_the_table(self, spec, seed, boards):
        table, index = spec.materialize(seed, range(boards))
        assert len(table) <= sum(member.lots for member in spec.members)
        assert len(index) == boards
        assert set(index) == set(range(len(table)))

    @given(specs, seeds, fleet_sizes)
    @settings(max_examples=40, deadline=None)
    def test_member_labels_name_each_boards_base_profile(
        self, spec, seed, boards
    ):
        labels = spec.member_labels(seed, range(boards))
        table, index = spec.materialize(seed, range(boards))
        assert len(labels) == boards
        for position, label in enumerate(labels):
            assert label in {member.profile for member in spec.members}
            assert table[index[position]].name.startswith(label)


class TestSpecSerialization:
    @given(specs)
    @settings(max_examples=40, deadline=None)
    def test_doc_roundtrip_is_lossless(self, spec):
        clone = PopulationSpec.from_doc(spec.to_doc())
        assert clone == spec
        assert clone.digest() == spec.digest()

    @given(specs, seeds, fleet_sizes)
    @settings(max_examples=20, deadline=None)
    def test_roundtripped_spec_draws_the_same_fleet(self, spec, seed, boards):
        clone = PopulationSpec.from_doc(spec.to_doc())
        assert expanded_profiles(clone, seed, range(boards)) == expanded_profiles(
            spec, seed, range(boards)
        )
