"""Tests for the exception hierarchy and the public package surface."""

import pytest

import repro
from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.ConfigurationError,
            errors.CalibrationError,
            errors.DecodingFailure,
            errors.ReconstructionFailure,
            errors.EntropyExhausted,
            errors.HealthTestFailure,
            errors.ProtocolError,
            errors.StorageError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_catchable_as_repro_error(self):
        with pytest.raises(errors.ReproError):
            raise errors.DecodingFailure("boom")


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_lazy_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.does_not_exist

    def test_dir_lists_exports(self):
        assert "LongTermAssessment" in dir(repro)
        assert "SRAMTRNG" in dir(repro)
