"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


SMALL = ["--devices", "2", "--months", "2", "--measurements", "100"]


class TestCommands:
    def test_table1(self, capsys):
        code, out = run_cli(capsys, "table1", *SMALL)
        assert code == 0
        assert "WCHD" in out and "AVG." in out

    def test_compare(self, capsys):
        code, out = run_cli(capsys, "compare", *SMALL)
        assert code == 0
        assert "Paper" in out and "Measured" in out

    def test_fig6(self, capsys):
        code, out = run_cli(capsys, "fig6", "--metric", "WCHD", *SMALL)
        assert code == 0
        assert "month  0" in out and "month  2" in out

    def test_fig6_save(self, capsys, tmp_path):
        path = str(tmp_path / "campaign.json")
        code, out = run_cli(capsys, "fig6", "--save", path, *SMALL)
        assert code == 0
        from repro.io.resultstore import load_campaign

        assert load_campaign(path).months == 2

    def test_fig6_workers_flag_matches_serial_artifact(self, capsys, tmp_path):
        serial = str(tmp_path / "serial.json")
        parallel = str(tmp_path / "parallel.json")
        code, _ = run_cli(capsys, "fig6", "--save", serial, *SMALL)
        assert code == 0
        code, _ = run_cli(
            capsys, "fig6", "--workers", "2", "--save", parallel, *SMALL
        )
        assert code == 0
        with open(serial, "rb") as a, open(parallel, "rb") as b:
            assert a.read() == b.read()

    def test_workers_must_be_positive(self, capsys):
        code = main(["fig6", "--workers", "0", *SMALL])
        captured = capsys.readouterr()
        assert code == 2
        assert "max_workers" in captured.err

    def test_calibrate(self, capsys):
        code, out = run_cli(capsys, "calibrate")
        assert code == 0
        assert "skew sigma" in out
        assert "62.700%" in out

    def test_accelerated(self, capsys):
        code, out = run_cli(
            capsys, "accelerated", "--devices", "2", "--months", "6"
        )
        assert code == 0
        assert "monthly rate" in out

    def test_fig6_save_writes_manifest(self, capsys, tmp_path):
        path = str(tmp_path / "campaign.json")
        code, out = run_cli(capsys, "fig6", "--save", path, *SMALL)
        assert code == 0
        from repro.io.jsonstore import load_manifest
        from repro.telemetry import manifest_path_for

        manifest = load_manifest(manifest_path_for(path))
        assert manifest.config["device_count"] == 2
        assert "campaign" in manifest.phases


PROFILE_SMALL = [
    "profile", "--devices", "2", "--months", "2",
    "--measurements", "100", "--cycles", "2",
]


class TestTelemetryCli:
    def test_profile_prints_spans_and_metrics(self, capsys):
        code, out = run_cli(capsys, *PROFILE_SMALL)
        assert code == 0
        # span tree with the per-phase timings
        assert "== span tree ==" in out
        assert "assessment.run" in out
        assert "campaign.month" in out
        assert "keygen.enroll" in out
        # metrics table with the catalogue's headline counters
        assert "== metrics ==" in out
        assert "campaign.powerups" in out
        assert "scheduler.events" in out
        assert "keygen.decode_failures" in out
        assert "trng.health_checks" in out

    def test_trace_json_written_and_parseable(self, capsys, tmp_path):
        import json

        path = str(tmp_path / "trace.json")
        code, out = run_cli(
            capsys, "--trace-json", path, "table1", *SMALL
        )
        assert code == 0
        assert f"trace written to {path}" in out
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        names = [span["name"] for span in doc["spans"]]
        assert "assessment.run" in names
        for span in doc["spans"]:
            assert span["wall_s"] >= 0.0

    def test_trace_chrome_written_and_parseable(self, capsys, tmp_path):
        import json

        path = str(tmp_path / "trace.chrome.json")
        code, out = run_cli(
            capsys, "--trace-chrome", path, "table1", *SMALL
        )
        assert code == 0
        assert f"chrome trace written to {path}" in out
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        assert doc["otherData"]["format"] == "repro-trace-chrome"
        # run_id doubles as the trace id on real runs.
        assert doc["otherData"]["trace_id"]
        names = {event["name"] for event in doc["traceEvents"]}
        assert "assessment.run" in names
        for event in doc["traceEvents"]:
            assert event["ph"] == "X"
            assert "span_id" in event["args"]

    def test_profile_prints_phase_table(self, capsys):
        code, out = run_cli(capsys, *PROFILE_SMALL)
        assert code == 0
        assert "== phases (campaign hot path) ==" in out
        for phase in ("noise_draw", "powerup", "aging", "metrics"):
            assert phase in out
        assert "% cpu" in out

    def test_profile_honors_workers_flag(self, capsys):
        code, out = run_cli(capsys, *PROFILE_SMALL, "--workers", "2")
        assert code == 0
        # The sharded path shows grafted worker spans in the tree and
        # the same phase attribution merged back from the workers.
        assert "campaign.shards" in out
        assert "worker.board" in out
        assert "noise_draw" in out

    def test_verbose_flag_accepted(self, capsys):
        code, _ = run_cli(capsys, "-v", "calibrate")
        assert code == 0

    def test_very_verbose_flag_accepted(self, capsys):
        code, _ = run_cli(capsys, "-vv", "calibrate")
        assert code == 0


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    def test_metric_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig6", "--metric", "bogus"])


class TestMonitorCli:
    def _saved_campaign(self, capsys, tmp_path):
        path = str(tmp_path / "campaign.json")
        code, _ = run_cli(capsys, "fig6", "--save", path, *SMALL)
        assert code == 0
        return path

    def test_monitor_replays_saved_campaign(self, capsys, tmp_path):
        import json

        path = self._saved_campaign(capsys, tmp_path)
        code, out = run_cli(capsys, "monitor", path)
        assert code == 0
        assert "screened 3 snapshots" in out
        assert "alert log written to" in out
        log_path = path[: -len(".json")] + ".alerts.jsonl"
        with open(log_path, "r", encoding="utf-8") as handle:
            for line in handle:
                if line.strip():
                    json.loads(line)  # every line must be valid JSON

    def test_monitor_custom_alert_log(self, capsys, tmp_path):
        path = self._saved_campaign(capsys, tmp_path)
        log = str(tmp_path / "custom.jsonl")
        code, out = run_cli(capsys, "monitor", path, "--alerts", log)
        assert code == 0
        assert log in out
        import os

        assert os.path.exists(log)

    def test_monitor_missing_campaign_fails(self, capsys, tmp_path):
        from repro.errors import StorageError

        with pytest.raises(StorageError):
            main(["monitor", str(tmp_path / "nope.json")])

    def test_profile_prometheus_dump(self, capsys, tmp_path):
        path = str(tmp_path / "metrics.prom")
        code, out = run_cli(capsys, *PROFILE_SMALL, "--prometheus", path)
        assert code == 0
        assert f"prometheus exposition written to {path}" in out
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        assert "# TYPE repro_campaign_powerups_total counter" in text
        assert "repro_trng_health_checks_total" in text

    def test_profile_metrics_jsonl_dump(self, capsys, tmp_path):
        import json

        path = str(tmp_path / "metrics.jsonl")
        code, out = run_cli(capsys, *PROFILE_SMALL, "--metrics-jsonl", path)
        assert code == 0
        with open(path, "r", encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle if line.strip()]
        assert len(lines) == 1
        assert lines[0]["label"] == "profile"
        assert "campaign.powerups" in lines[0]["metrics"]


class TestRunCommand:
    def _run_args(self, tmp_path, *extra):
        return [
            "run", *SMALL,
            "--save", str(tmp_path / "campaign.json"),
            "--checkpoint-dir", str(tmp_path / "ckpt"),
            *extra,
        ]

    def test_run_writes_all_artifacts(self, capsys, tmp_path):
        code, out = run_cli(capsys, *self._run_args(tmp_path))
        assert code == 0
        assert "campaign saved" in out
        assert (tmp_path / "campaign.json").exists()
        assert (tmp_path / "campaign.manifest.json").exists()
        assert (tmp_path / "campaign.alerts.jsonl").exists()
        assert (tmp_path / "ckpt" / "month-0002.json").exists()

    def test_abort_exits_with_code_3(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, *self._run_args(tmp_path, "--abort-after-month", "0")
        )
        assert code == 3
        assert "interrupted after month 0" in out
        assert not (tmp_path / "campaign.json").exists()
        assert (tmp_path / "ckpt" / "month-0000.json").exists()

    def test_abort_env_variable(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ABORT_AFTER_MONTH", "0")
        code, _ = run_cli(capsys, *self._run_args(tmp_path))
        assert code == 3

    def test_interrupt_resume_byte_identical(self, capsys, tmp_path):
        straight = tmp_path / "straight"
        broken = tmp_path / "broken"
        straight.mkdir()
        broken.mkdir()

        code, _ = run_cli(capsys, *self._run_args(straight))
        assert code == 0
        code, _ = run_cli(
            capsys, *self._run_args(broken, "--abort-after-month", "1")
        )
        assert code == 3
        code, _ = run_cli(capsys, *self._run_args(broken, "--resume"))
        assert code == 0

        for name in ("campaign.json", "campaign.alerts.jsonl"):
            assert (straight / name).read_bytes() == (broken / name).read_bytes()

    def test_resume_requires_checkpoint_dir(self, capsys, tmp_path):
        code = main(
            ["run", *SMALL, "--save", str(tmp_path / "c.json"), "--resume"]
        )
        assert code == 2

    def test_run_stamps_run_id_through_all_logs(self, capsys, tmp_path):
        import json

        code, _ = run_cli(capsys, *self._run_args(tmp_path))
        assert code == 0
        from repro.io.jsonstore import load_manifest

        manifest = load_manifest(str(tmp_path / "campaign.manifest.json"))
        with open(tmp_path / "campaign.heartbeat.jsonl") as handle:
            beats = [json.loads(line) for line in handle if line.strip()]
        assert beats
        for beat in beats:
            # One correlation key across manifest, heartbeats, alerts.
            assert beat["run_id"] == manifest.run_id
            assert "months_per_s" in beat
        with open(tmp_path / "campaign.alerts.jsonl") as handle:
            alerts = [json.loads(line) for line in handle if line.strip()]
        for alert in alerts:
            assert alert["run_id"] == manifest.run_id

    def test_run_id_deterministic_for_equal_configs(self, capsys, tmp_path):
        import json

        first = tmp_path / "first"
        second = tmp_path / "second"
        first.mkdir()
        second.mkdir()
        for directory in (first, second):
            code, _ = run_cli(
                capsys, "run", *SMALL, "--save", str(directory / "campaign.json")
            )
            assert code == 0

        def run_id_of(directory):
            with open(directory / "campaign.heartbeat.jsonl") as handle:
                return json.loads(handle.readline())["run_id"]

        assert run_id_of(first) == run_id_of(second)


class TestBenchCommand:
    def _record(self, capsys, tmp_path, *extra):
        ledger = str(tmp_path / "ledger.jsonl")
        code, out = run_cli(
            capsys, "bench", "record", "--bench", "gram-bchd",
            "--repeats", "1", "--ledger", ledger, *extra,
        )
        assert code == 0
        return ledger, out

    def test_record_appends_to_ledger(self, capsys, tmp_path):
        import json

        ledger, out = self._record(capsys, tmp_path)
        assert "recorded gram-bchd" in out
        with open(ledger, "r", encoding="utf-8") as handle:
            (line,) = handle.read().splitlines()
        document = json.loads(line)
        assert document["name"] == "gram-bchd"
        assert document["metrics"]["wall_s"] > 0.0
        assert document["metrics"]["pairs_per_s"] > 0.0

    def test_list_shows_registry_and_history(self, capsys, tmp_path):
        ledger, _ = self._record(capsys, tmp_path)
        code, out = run_cli(capsys, "bench", "list", "--ledger", ledger)
        assert code == 0
        assert "registered benchmarks:" in out
        assert "powerup-block" in out and "campaign-small" in out
        assert "1 runs" in out

    def test_compare_needs_two_runs(self, capsys, tmp_path):
        ledger, _ = self._record(capsys, tmp_path)
        code = main(["bench", "compare", "--ledger", ledger])
        captured = capsys.readouterr()
        assert code == 2
        assert "need at least 2" in captured.err

    def test_compare_passes_on_steady_numbers(self, capsys, tmp_path):
        ledger, _ = self._record(capsys, tmp_path)
        self._record(capsys, tmp_path)
        # Generous threshold: CI runners are noisy; this asserts the
        # exit-code contract, not machine speed.
        code, out = run_cli(
            capsys, "bench", "compare", "--ledger", ledger, "--threshold", "5.0"
        )
        assert code == 0
        assert "no regressions" in out

    def test_compare_exits_5_on_injected_regression(self, capsys, tmp_path):
        ledger, _ = self._record(capsys, tmp_path)
        from repro.store.bench import BenchLedger

        handle = BenchLedger(ledger)
        last = handle.records(name="gram-bchd")[-1]
        slowed = dict(last["metrics"])
        slowed["wall_s"] = slowed["wall_s"] * 10
        slowed["pairs_per_s"] = slowed["pairs_per_s"] / 10
        handle.record("gram-bchd", slowed, host=last["host"], git_rev="injected")
        code = main(["bench", "compare", "--ledger", ledger])
        captured = capsys.readouterr()
        assert code == 5
        assert "REGRESSED" in captured.out
        assert "PERF REGRESSION" in captured.err

    def test_compare_empty_ledger_fails(self, capsys, tmp_path):
        code = main(
            ["bench", "compare", "--ledger", str(tmp_path / "none.jsonl")]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "empty" in captured.err

    def test_record_unknown_benchmark_rejected(self, capsys, tmp_path):
        code = main(
            ["bench", "record", "--bench", "bogus",
             "--ledger", str(tmp_path / "l.jsonl")]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "unknown benchmark" in captured.err


class TestStoreCommand:
    def test_inspect_lists_files_and_versions(self, capsys, tmp_path):
        code, _ = run_cli(
            capsys,
            "run", *SMALL,
            "--save", str(tmp_path / "campaign.json"),
            "--checkpoint-dir", str(tmp_path / "ckpt"),
        )
        assert code == 0
        code, out = run_cli(capsys, "store", "inspect", str(tmp_path))
        assert code == 0
        assert "campaign.json" in out and "campaign" in out
        assert "month-0000.json" in out and "checkpoint" in out
        assert "integrity: ok" in out

    def test_inspect_flags_and_cleans_strays(self, capsys, tmp_path):
        (tmp_path / "dead.json.tmp").write_bytes(b"stray")
        code, out = run_cli(capsys, "store", "inspect", str(tmp_path))
        assert code == 1
        assert "stray temp file" in out
        assert "PROBLEMS FOUND" in out
        code, out = run_cli(capsys, "store", "inspect", str(tmp_path), "--clean")
        assert code == 0
        assert "removed stray temp file dead.json.tmp" in out
        assert "integrity: ok" in out

    def test_inspect_missing_dir_fails(self, capsys, tmp_path):
        code = main(["store", "inspect", str(tmp_path / "missing")])
        captured = capsys.readouterr()
        assert code == 1
        assert "does not exist" in captured.err


class TestStreamArtifactCli:
    def _run_args(self, tmp_path, *extra):
        return [
            "run", *SMALL,
            "--save", str(tmp_path / "campaign.json"),
            *extra,
        ]

    def test_incremental_stream_writes_all_artifacts(self, capsys, tmp_path):
        code, out = run_cli(
            capsys,
            *self._run_args(
                tmp_path,
                "--checkpoint-dir", str(tmp_path / "ckpt"),
                "--stream-artifact",
            ),
        )
        assert code == 0
        assert "campaign saved" in out
        import json

        with open(tmp_path / "campaign.json", "r", encoding="utf-8") as fh:
            assert json.loads(fh.readline())["kind"] == "header"
        assert (tmp_path / "campaign.manifest.json").exists()
        assert (tmp_path / "campaign.alerts.jsonl").exists()
        from repro.io.resultstore import load_campaign

        assert load_campaign(str(tmp_path / "campaign.json")).months == 2

    def test_incremental_bytes_match_at_once_stream(self, capsys, tmp_path):
        incremental = tmp_path / "incremental"
        at_once = tmp_path / "at_once"
        incremental.mkdir()
        at_once.mkdir()
        code, _ = run_cli(
            capsys,
            *self._run_args(
                incremental,
                "--checkpoint-dir", str(incremental / "ckpt"),
                "--stream-artifact",
            ),
        )
        assert code == 0
        # Without a checkpoint dir the stream is encoded at once after
        # the run; the artifact bytes must not depend on the path taken.
        code, _ = run_cli(capsys, *self._run_args(at_once, "--stream-artifact"))
        assert code == 0
        assert (incremental / "campaign.json").read_bytes() == (
            at_once / "campaign.json"
        ).read_bytes()

    def test_interrupt_resume_stream_byte_identical(self, capsys, tmp_path):
        straight = tmp_path / "straight"
        broken = tmp_path / "broken"
        straight.mkdir()
        broken.mkdir()
        base = ["--stream-artifact", "--keyframe-every", "2"]
        code, _ = run_cli(
            capsys,
            *self._run_args(
                straight, "--checkpoint-dir", str(straight / "ckpt"), *base
            ),
        )
        assert code == 0
        code, _ = run_cli(
            capsys,
            *self._run_args(
                broken,
                "--checkpoint-dir", str(broken / "ckpt"),
                *base,
                "--abort-after-month", "1",
            ),
        )
        assert code == 3
        code, _ = run_cli(
            capsys,
            *self._run_args(
                broken, "--checkpoint-dir", str(broken / "ckpt"), *base, "--resume"
            ),
        )
        assert code == 0
        for name in ("campaign.json", "campaign.alerts.jsonl"):
            assert (straight / name).read_bytes() == (broken / name).read_bytes()

    def test_keyframe_every_flag_controls_cadence(self, capsys, tmp_path):
        import json

        code, _ = run_cli(
            capsys,
            *self._run_args(
                tmp_path,
                "--checkpoint-dir", str(tmp_path / "ckpt"),
                "--keyframe-every", "2",
            ),
        )
        assert code == 0
        kinds = {}
        for month in range(3):
            with open(tmp_path / "ckpt" / f"month-000{month}.json") as fh:
                kinds[month] = json.load(fh)["kind"]
        assert kinds == {0: "keyframe", 1: "delta", 2: "keyframe"}


class TestStoreDeepAndCompactCli:
    def _checkpointed_run(self, capsys, tmp_path, *extra):
        code, _ = run_cli(
            capsys,
            "run", *SMALL,
            "--save", str(tmp_path / "campaign.json"),
            "--checkpoint-dir", str(tmp_path / "ckpt"),
            *extra,
        )
        assert code == 0

    def test_inspect_deep_reports_healthy_chain(self, capsys, tmp_path):
        self._checkpointed_run(capsys, tmp_path, "--keyframe-every", "2")
        code, out = run_cli(
            capsys, "store", "inspect", str(tmp_path / "ckpt"), "--deep"
        )
        assert code == 0
        assert "checkpoint chain:" in out
        assert "resume point: keyframe month 2" in out
        assert "integrity: ok" in out

    def test_inspect_deep_flags_broken_chain(self, capsys, tmp_path):
        self._checkpointed_run(capsys, tmp_path, "--keyframe-every", "2")
        (tmp_path / "ckpt" / "month-0000.json").unlink()  # delta 1's base
        code, out = run_cli(
            capsys, "store", "inspect", str(tmp_path / "ckpt"), "--deep"
        )
        assert code == 1
        assert "broken chain" in out
        assert "PROBLEMS FOUND" in out

    def test_inspect_deep_without_checkpoints(self, capsys, tmp_path):
        code, out = run_cli(capsys, "store", "inspect", str(tmp_path), "--deep")
        assert code == 0
        assert "(no checkpoints to validate)" in out

    def test_compact_prunes_and_chain_stays_valid(self, capsys, tmp_path):
        self._checkpointed_run(capsys, tmp_path, "--keyframe-every", "1")
        code, out = run_cli(capsys, "store", "compact", str(tmp_path / "ckpt"))
        assert code == 0
        assert "removed month-0000.json" in out
        assert "2 checkpoint(s) removed" in out
        code, out = run_cli(
            capsys, "store", "inspect", str(tmp_path / "ckpt"), "--deep"
        )
        assert code == 0
        assert "resume point: keyframe month 2" in out

    def test_compact_refuses_empty_directory(self, capsys, tmp_path):
        code = main(["store", "compact", str(tmp_path)])
        captured = capsys.readouterr()
        assert code == 1
        assert "no checkpoints found" in captured.err


class TestPopulationCli:
    """The ``--profile`` / ``--population`` fleet-selection flags."""

    def test_unknown_profile_fails_with_the_menu(self, capsys):
        code = main(["fig6", "--profile", "bogus", *SMALL])
        captured = capsys.readouterr()
        assert code == 2
        assert "unknown device profile 'bogus'" in captured.err
        assert "known profiles:" in captured.err
        assert "ATmega32u4" in captured.err

    def test_profile_and_population_are_mutually_exclusive(self, capsys, tmp_path):
        import json

        spec = str(tmp_path / "pop.json")
        with open(spec, "w", encoding="utf-8") as handle:
            json.dump({"name": "m", "members": [{"profile": "dff-puf"}]}, handle)
        code = main(
            ["fig6", "--profile", "dff-puf", "--population", spec, *SMALL]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "--profile and --population are mutually exclusive" in captured.err

    def test_profile_flag_selects_the_named_device(self, capsys, tmp_path):
        from repro.io.resultstore import load_campaign

        path = str(tmp_path / "campaign.json")
        code, _ = run_cli(
            capsys, "fig6", "--save", path, "--profile", "dff-puf", *SMALL
        )
        assert code == 0
        assert load_campaign(path).profile_name == "dff-puf"

    def test_population_flag_runs_a_mixed_fleet(self, capsys, tmp_path):
        import json

        from repro.io.resultstore import load_campaign

        spec = str(tmp_path / "pop.json")
        with open(spec, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "name": "cli-mix",
                    "members": [
                        {"profile": "ATmega32u4", "weight": 2},
                        {"profile": "dff-puf"},
                    ],
                },
                handle,
            )
        path = str(tmp_path / "campaign.json")
        code, _ = run_cli(
            capsys, "fig6", "--save", path, "--population", spec, *SMALL
        )
        assert code == 0
        assert load_campaign(path).profile_name == "population:cli-mix"

    def test_missing_population_file_fails_cleanly(self, capsys, tmp_path):
        code = main(
            ["fig6", "--population", str(tmp_path / "nope.json"), *SMALL]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "cannot read population spec" in captured.err
