"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


SMALL = ["--devices", "2", "--months", "2", "--measurements", "100"]


class TestCommands:
    def test_table1(self, capsys):
        code, out = run_cli(capsys, "table1", *SMALL)
        assert code == 0
        assert "WCHD" in out and "AVG." in out

    def test_compare(self, capsys):
        code, out = run_cli(capsys, "compare", *SMALL)
        assert code == 0
        assert "Paper" in out and "Measured" in out

    def test_fig6(self, capsys):
        code, out = run_cli(capsys, "fig6", "--metric", "WCHD", *SMALL)
        assert code == 0
        assert "month  0" in out and "month  2" in out

    def test_fig6_save(self, capsys, tmp_path):
        path = str(tmp_path / "campaign.json")
        code, out = run_cli(capsys, "fig6", "--save", path, *SMALL)
        assert code == 0
        from repro.io.resultstore import load_campaign

        assert load_campaign(path).months == 2

    def test_calibrate(self, capsys):
        code, out = run_cli(capsys, "calibrate")
        assert code == 0
        assert "skew sigma" in out
        assert "62.700%" in out

    def test_accelerated(self, capsys):
        code, out = run_cli(
            capsys, "accelerated", "--devices", "2", "--months", "6"
        )
        assert code == 0
        assert "monthly rate" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    def test_metric_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig6", "--metric", "bogus"])
