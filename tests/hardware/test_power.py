"""Tests for the power-switch board."""

import pytest

from repro.errors import ProtocolError
from repro.hardware.power import PowerSwitch


class FakeClock:
    def __init__(self):
        self.time = 0.0

    def __call__(self) -> float:
        return self.time


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture
def switch(clock) -> PowerSwitch:
    power = PowerSwitch(clock)
    power.register_channel(0)
    power.register_channel(1)
    return power


class TestChannels:
    def test_initially_unpowered(self, switch):
        assert not switch.is_powered(0)

    def test_set_power(self, switch, clock):
        clock.time = 1.0
        switch.set_power(0, True)
        assert switch.is_powered(0)
        assert not switch.is_powered(1)

    def test_waveform_records_transitions(self, switch, clock):
        clock.time = 1.0
        switch.set_power(0, True)
        clock.time = 4.8
        switch.set_power(0, False)
        waveform = switch.waveform(0)
        assert waveform.transitions == [(1.0, 1), (4.8, 0)]

    def test_redundant_commands_not_recorded(self, switch, clock):
        switch.set_power(0, True)
        clock.time = 1.0
        switch.set_power(0, True)
        assert len(switch.waveform(0).transitions) == 1

    def test_layer_command(self, switch):
        switch.set_layer_power([0, 1], True)
        assert switch.is_powered(0) and switch.is_powered(1)

    def test_board_ids(self, switch):
        assert switch.board_ids == [0, 1]


class TestCallbacks:
    def test_power_change_notifies_board(self, clock):
        events = []
        switch = PowerSwitch(clock)
        switch.register_channel(7, on_power_change=events.append)
        switch.set_power(7, True)
        switch.set_power(7, False)
        assert events == [True, False]

    def test_no_notification_for_redundant_command(self, clock):
        events = []
        switch = PowerSwitch(clock)
        switch.register_channel(7, on_power_change=events.append)
        switch.set_power(7, True)
        switch.set_power(7, True)
        assert events == [True]


class TestErrors:
    def test_duplicate_channel_rejected(self, switch):
        with pytest.raises(ProtocolError):
            switch.register_channel(0)

    def test_unknown_channel_rejected(self, switch):
        with pytest.raises(ProtocolError):
            switch.set_power(99, True)
