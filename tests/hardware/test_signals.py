"""Tests for digital waveform recording."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hardware.signals import DigitalWaveform


def square_wave(period: float, on_time: float, cycles: int) -> DigitalWaveform:
    waveform = DigitalWaveform("test", initial_level=0)
    for cycle in range(cycles):
        start = cycle * period
        waveform.record(start, 1)
        waveform.record(start + on_time, 0)
    return waveform


class TestRecording:
    def test_level_at(self):
        waveform = square_wave(5.4, 3.8, 2)
        assert waveform.level_at(0.0) == 1
        assert waveform.level_at(3.9) == 0
        assert waveform.level_at(5.5) == 1

    def test_redundant_transitions_ignored(self):
        waveform = DigitalWaveform("x")
        waveform.record(1.0, 1)
        waveform.record(2.0, 1)
        assert len(waveform.transitions) == 1

    def test_time_travel_rejected(self):
        waveform = DigitalWaveform("x")
        waveform.record(5.0, 1)
        with pytest.raises(ConfigurationError):
            waveform.record(1.0, 0)

    def test_invalid_level_rejected(self):
        with pytest.raises(ConfigurationError):
            DigitalWaveform("x").record(0.0, 2)


class TestMeasurements:
    def test_period(self):
        assert square_wave(5.4, 3.8, 4).measured_period_s() == pytest.approx(5.4)

    def test_on_time(self):
        assert square_wave(5.4, 3.8, 4).measured_on_time_s() == pytest.approx(3.8)

    def test_off_time(self):
        assert square_wave(5.4, 3.8, 4).measured_off_time_s() == pytest.approx(1.6)

    def test_edges(self):
        waveform = square_wave(2.0, 1.0, 3)
        np.testing.assert_allclose(waveform.edges(rising=True), [0.0, 2.0, 4.0])
        np.testing.assert_allclose(waveform.edges(rising=False), [1.0, 3.0, 5.0])

    def test_period_needs_two_rising_edges(self):
        with pytest.raises(ConfigurationError):
            square_wave(5.4, 3.8, 1).measured_period_s()


class TestSampling:
    def test_sample_levels(self):
        waveform = square_wave(2.0, 1.0, 2)
        levels = waveform.sample(np.array([0.5, 1.5, 2.5, 3.5]))
        np.testing.assert_array_equal(levels, [1, 0, 1, 0])

    def test_full_overlap_with_itself(self):
        waveform = square_wave(2.0, 1.0, 5)
        assert waveform.overlap_fraction(waveform, 10.0) == pytest.approx(0.5, abs=0.02)

    def test_staggered_signals_overlap_less(self):
        a = square_wave(4.0, 2.0, 5)
        b = DigitalWaveform("b")
        for cycle in range(5):
            b.record(cycle * 4.0 + 2.0, 1)
            b.record(cycle * 4.0 + 4.0, 0)
        assert a.overlap_fraction(b, 20.0) < 0.05
