"""End-to-end: the firmware command protocol riding the I2C bus."""

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.hardware.firmware import (
    FirmwareState,
    FlakyFirmware,
    MasterProtocol,
    SlaveFirmware,
)
from repro.hardware.i2c import I2CBus
from repro.io.bitutil import unpack_bits
from repro.sram.chip import SRAMChip


@pytest.fixture
def bus() -> I2CBus:
    return I2CBus(clock=lambda: 0.0)


@pytest.fixture
def wired(bus, small_profile):
    """A powered firmware slave attached transactionally at 0x10."""
    firmware = SlaveFirmware(0, SRAMChip(0, small_profile, random_state=6))
    firmware.power_on()
    bus.attach_transactional_slave(0x10, firmware.handle_request)
    master = MasterProtocol(lambda frame: bus.write_read(0x10, frame))
    return firmware, master


class TestFirmwareOverI2C:
    def test_status_over_bus(self, wired):
        _firmware, master = wired
        assert master.read_status() is FirmwareState.READY

    def test_pattern_over_bus(self, wired, small_profile):
        firmware, master = wired
        payload = master.read_pattern()
        assert len(payload) == small_profile.read_bytes
        bits = unpack_bits(payload)
        assert set(np.unique(bits)) <= {0, 1}

    def test_transactions_logged_with_both_directions(self, bus, wired):
        _firmware, master = wired
        master.read_status()
        log = bus.transactions
        assert len(log) == 1
        # Request frame (4 bytes) + response frame (5 bytes).
        assert log[0].byte_count == 9

    def test_unpowered_slave_nacks_through_bus(self, bus, small_profile):
        firmware = SlaveFirmware(1, SRAMChip(1, small_profile, random_state=7))
        bus.attach_transactional_slave(0x11, firmware.handle_request)
        master = MasterProtocol(lambda frame: bus.write_read(0x11, frame))
        with pytest.raises(ProtocolError):
            master.read_status()

    def test_flaky_slave_recovers_over_bus(self, bus, small_profile):
        flaky = FlakyFirmware(
            2, SRAMChip(2, small_profile, random_state=8),
            corruption_rate=0.4, random_state=9,
        )
        flaky.power_on()
        bus.attach_transactional_slave(0x12, flaky.handle_request)
        master = MasterProtocol(
            lambda frame: bus.write_read(0x12, frame), max_attempts=10
        )
        for _ in range(10):
            assert master.read_status() is FirmwareState.READY
        assert master.retries > 0


class TestBusValidation:
    def test_unknown_transactional_address_nacks(self, bus):
        with pytest.raises(ProtocolError, match="NACK"):
            bus.write_read(0x55, b"\x01\x00\x00\x01")

    def test_address_collision_between_modes_rejected(self, bus):
        bus.attach_slave(0x10, lambda: b"")
        with pytest.raises(ProtocolError):
            bus.attach_transactional_slave(0x10, lambda request: b"")

    def test_reverse_collision_rejected(self, bus):
        bus.attach_transactional_slave(0x10, lambda request: b"")
        with pytest.raises(ProtocolError):
            bus.attach_slave(0x10, lambda: b"")
