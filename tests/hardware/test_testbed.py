"""Tests for the assembled two-layer testbed."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.testbed import Testbed, TestbedTiming


@pytest.fixture
def testbed(small_profile) -> Testbed:
    return Testbed(device_count=4, profile=small_profile, random_state=3)


class TestTiming:
    def test_paper_defaults(self):
        timing = TestbedTiming()
        assert timing.period_s == 5.4
        assert timing.on_time_s == 3.8
        assert timing.off_time_s == pytest.approx(1.6)
        assert timing.power_duty == pytest.approx(3.8 / 5.4)

    def test_handover_is_half_period(self):
        assert TestbedTiming().handover_s == pytest.approx(2.7)

    def test_on_time_must_fit_in_period(self):
        with pytest.raises(ConfigurationError):
            TestbedTiming(period_s=5.0, on_time_s=5.0)

    def test_read_delay_must_fit_in_on_phase(self):
        with pytest.raises(ConfigurationError):
            TestbedTiming(read_delay_s=4.0)


class TestDatabasePath:
    def test_database_path_streams_to_disk(self, small_profile, tmp_path):
        path = tmp_path / "measurements.jsonl"
        bed = Testbed(
            device_count=4,
            profile=small_profile,
            database_path=str(path),
            random_state=3,
        )
        assert bed.database.mode == "stream"
        bed.run_cycles(3)
        # run_cycles waits for the *slower* layer, so the leading layer
        # may have banked an extra collect — at least 3 per board.
        assert len(bed.database) >= 3 * 4
        # Records land on disk as they are taken, one JSON line each.
        assert path.exists()
        assert len(path.read_bytes().splitlines()) == len(bed.database)

    def test_database_and_database_path_are_exclusive(self, small_profile, tmp_path):
        from repro.io.jsonstore import MeasurementDatabase

        with pytest.raises(ConfigurationError, match="not both"):
            Testbed(
                device_count=4,
                profile=small_profile,
                database=MeasurementDatabase(),
                database_path=str(tmp_path / "m.jsonl"),
            )


class TestConstruction:
    def test_layer_numbering_matches_paper(self, testbed):
        """Layer 0 is S0..; layer 1 starts at S16."""
        assert [s.board_id for s in testbed.slaves] == [0, 1, 16, 17]

    def test_odd_device_count_rejected(self, small_profile):
        with pytest.raises(ConfigurationError):
            Testbed(device_count=5, profile=small_profile)

    def test_slave_lookup(self, testbed):
        assert testbed.slave(16).board_id == 16
        with pytest.raises(ConfigurationError):
            testbed.slave(99)

    def test_measurement_cadence_matches_paper(self, testbed):
        """The paper quotes ~10 measurements per minute per board."""
        assert 10.0 < testbed.measurements_per_minute() < 12.0


class TestOperation:
    def test_records_accumulate(self, testbed):
        testbed.run_seconds(60.0)
        # ~11 cycles/min x 4 boards, minus boundary effects.
        assert len(testbed.database) >= 40
        assert testbed.database.board_ids() == [0, 1, 16, 17]

    def test_waveform_reproduces_fig3(self, testbed):
        testbed.run_seconds(60.0)
        waveform = testbed.power_switch.waveform(0)
        assert waveform.measured_period_s() == pytest.approx(5.4, abs=0.01)
        assert waveform.measured_on_time_s() == pytest.approx(3.8, abs=0.01)
        assert waveform.measured_off_time_s() == pytest.approx(1.6, abs=0.01)

    def test_same_layer_boards_synchronized(self, testbed):
        testbed.run_seconds(60.0)
        a = testbed.power_switch.waveform(0)
        b = testbed.power_switch.waveform(1)
        assert a.overlap_fraction(b, 60.0) == pytest.approx(3.8 / 5.4, abs=0.03)

    def test_layers_phase_shifted(self, testbed):
        testbed.run_seconds(60.0)
        layer0 = testbed.power_switch.waveform(0)
        layer1 = testbed.power_switch.waveform(16)
        cross = layer0.overlap_fraction(layer1, 60.0)
        same = layer0.overlap_fraction(testbed.power_switch.waveform(1), 60.0)
        assert cross < same - 0.2

    def test_run_cycles(self, small_profile):
        bed = Testbed(device_count=2, profile=small_profile, random_state=4)
        bed.run_cycles(3)
        per_board = len(bed.database.for_board(0))
        assert per_board >= 3

    def test_records_carry_monotone_sequences(self, testbed):
        testbed.run_seconds(30.0)
        for board_id in testbed.database.board_ids():
            sequences = [r.sequence for r in testbed.database.for_board(board_id)]
            assert sequences == sorted(sequences)
            assert sequences[0] == 0

    def test_invalid_run_arguments(self, testbed):
        with pytest.raises(ConfigurationError):
            testbed.run_seconds(0.0)
        with pytest.raises(ConfigurationError):
            testbed.run_cycles(0)
