"""Tests for the I2C bus model."""

import pytest

from repro.errors import ProtocolError
from repro.hardware.i2c import I2CBus


@pytest.fixture
def bus() -> I2CBus:
    return I2CBus(clock=lambda: 1.5, clock_hz=100_000.0)


class TestTransfers:
    def test_read_returns_slave_payload(self, bus):
        bus.attach_slave(0x10, lambda: b"hello")
        assert bus.read(0x10) == b"hello"

    def test_read_unknown_address_nacks(self, bus):
        with pytest.raises(ProtocolError, match="NACK"):
            bus.read(0x20)

    def test_expected_bytes_enforced(self, bus):
        bus.attach_slave(0x10, lambda: b"abc")
        with pytest.raises(ProtocolError, match="expected"):
            bus.read(0x10, expected_bytes=4)

    def test_slave_failure_propagates(self, bus):
        def broken():
            raise ProtocolError("slave is unpowered")

        bus.attach_slave(0x11, broken)
        with pytest.raises(ProtocolError, match="unpowered"):
            bus.read(0x11)


class TestTransactionLog:
    def test_log_records_transfer(self, bus):
        bus.attach_slave(0x10, lambda: b"\x00" * 8)
        bus.read(0x10)
        log = bus.transactions
        assert len(log) == 1
        assert log[0].address == 0x10
        assert log[0].byte_count == 8
        assert log[0].time_s == 1.5

    def test_failed_reads_not_logged(self, bus):
        with pytest.raises(ProtocolError):
            bus.read(0x55)
        assert bus.transactions == []


class TestTiming:
    def test_transfer_time_includes_address_byte(self, bus):
        # (1 address + 2 payload) bytes x 9 bits at 100 kHz.
        assert bus.transfer_time_s(2) == pytest.approx(27 / 100_000.0)

    def test_kilobyte_read_takes_about_92ms(self, bus):
        assert bus.transfer_time_s(1024) == pytest.approx(0.0922, abs=1e-3)

    def test_negative_byte_count_rejected(self, bus):
        with pytest.raises(ProtocolError):
            bus.transfer_time_s(-1)


class TestValidation:
    def test_invalid_address_rejected(self, bus):
        with pytest.raises(ProtocolError):
            bus.attach_slave(0x80, lambda: b"")

    def test_duplicate_address_rejected(self, bus):
        bus.attach_slave(0x10, lambda: b"")
        with pytest.raises(ProtocolError):
            bus.attach_slave(0x10, lambda: b"")

    def test_nonpositive_clock_rejected(self):
        with pytest.raises(ProtocolError):
            I2CBus(clock=lambda: 0.0, clock_hz=0.0)
