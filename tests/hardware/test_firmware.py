"""Tests for the byte-level slave firmware protocol."""

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.hardware.firmware import (
    Command,
    FirmwareState,
    FlakyFirmware,
    MasterProtocol,
    SlaveFirmware,
    build_frame,
    parse_frame,
    xor_checksum,
)
from repro.io.bitutil import unpack_bits
from repro.sram.chip import SRAMChip


@pytest.fixture
def firmware(small_profile) -> SlaveFirmware:
    return SlaveFirmware(3, SRAMChip(3, small_profile, random_state=1))


class TestFraming:
    def test_roundtrip(self):
        frame = build_frame(0x02, b"hello")
        command, payload = parse_frame(frame)
        assert command == 0x02
        assert payload == b"hello"

    def test_empty_payload(self):
        command, payload = parse_frame(build_frame(0x01))
        assert (command, payload) == (0x01, b"")

    def test_checksum_is_xor(self):
        frame = build_frame(0x01, b"\x02\x03")
        assert frame[-1] == xor_checksum(frame[:-1])

    def test_corrupted_byte_detected(self):
        frame = bytearray(build_frame(0x02, b"data"))
        frame[4] ^= 0x10
        with pytest.raises(ProtocolError, match="checksum"):
            parse_frame(bytes(frame))

    def test_truncated_frame_detected(self):
        frame = build_frame(0x02, b"data")
        with pytest.raises(ProtocolError):
            parse_frame(frame[:-2])

    def test_length_mismatch_detected(self):
        frame = bytearray(build_frame(0x02, b"data"))
        frame[2] += 1  # claim one more payload byte
        with pytest.raises(ProtocolError, match="length"):
            parse_frame(bytes(frame))


class TestSlaveFirmware:
    def test_boot_sequence(self, firmware):
        assert firmware.state is FirmwareState.OFF
        firmware.power_on()
        assert firmware.state is FirmwareState.READY

    def test_unpowered_slave_nacks(self, firmware):
        with pytest.raises(ProtocolError, match="NACK"):
            firmware.handle_request(build_frame(int(Command.GET_STATUS)))

    def test_status_command(self, firmware):
        firmware.power_on()
        response = firmware.handle_request(build_frame(int(Command.GET_STATUS)))
        command, payload = parse_frame(response)
        assert FirmwareState(payload[0]) is FirmwareState.READY

    def test_info_command(self, firmware, small_profile):
        firmware.power_on()
        response = firmware.handle_request(build_frame(int(Command.GET_INFO)))
        _, payload = parse_frame(response)
        assert payload[0] == 3
        assert (payload[1] << 8) | payload[2] == small_profile.sram_bytes

    def test_read_pattern_returns_capture(self, firmware, small_profile):
        firmware.power_on()
        response = firmware.handle_request(build_frame(int(Command.READ_PATTERN)))
        _, payload = parse_frame(response)
        assert len(payload) == small_profile.read_bytes
        bits = unpack_bits(payload)
        assert set(np.unique(bits)) <= {0, 1}

    def test_power_cycle_clears_capture(self, firmware):
        firmware.power_on()
        firmware.power_off()
        with pytest.raises(ProtocolError):
            firmware.handle_request(build_frame(int(Command.READ_PATTERN)))

    def test_unknown_command_rejected(self, firmware):
        firmware.power_on()
        with pytest.raises(ProtocolError, match="unknown command"):
            firmware.handle_request(build_frame(0x7F))

    def test_unexpected_payload_rejected(self, firmware):
        firmware.power_on()
        with pytest.raises(ProtocolError, match="no payload"):
            firmware.handle_request(build_frame(int(Command.GET_STATUS), b"x"))


class TestMasterProtocol:
    def test_full_exchange(self, firmware, small_profile):
        firmware.power_on()
        master = MasterProtocol(firmware.handle_request)
        assert master.read_status() is FirmwareState.READY
        info = master.read_info()
        assert info["read_bytes"] == small_profile.read_bytes
        assert len(master.read_pattern()) == small_profile.read_bytes
        assert master.retries == 0

    def test_retry_recovers_from_flaky_slave(self, small_profile):
        chip = SRAMChip(0, small_profile, random_state=2)
        flaky = FlakyFirmware(0, chip, corruption_rate=0.5, random_state=3)
        flaky.power_on()
        master = MasterProtocol(flaky.handle_request, max_attempts=10)
        # Many requests: all eventually succeed, with retries recorded.
        for _ in range(20):
            assert master.read_status() is FirmwareState.READY
        assert master.retries > 0

    def test_hopeless_link_gives_up(self, small_profile):
        chip = SRAMChip(0, small_profile, random_state=4)
        broken = FlakyFirmware(0, chip, corruption_rate=1.0, random_state=5)
        broken.power_on()
        master = MasterProtocol(broken.handle_request, max_attempts=3)
        with pytest.raises(ProtocolError, match="after 3 attempts"):
            master.read_status()

    def test_mismatched_response_command_detected(self, firmware):
        firmware.power_on()

        def cross_wired(frame: bytes) -> bytes:
            return firmware.handle_request(build_frame(int(Command.GET_STATUS)))

        master = MasterProtocol(cross_wired)
        with pytest.raises(ProtocolError, match="does not match"):
            master.read_info()

    def test_invalid_attempts_rejected(self, firmware):
        with pytest.raises(ProtocolError):
            MasterProtocol(firmware.handle_request, max_attempts=0)
