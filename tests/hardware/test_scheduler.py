"""Tests for the discrete-event scheduler."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.scheduler import DiscreteEventScheduler


class TestScheduling:
    def test_events_run_in_time_order(self):
        sched = DiscreteEventScheduler()
        fired = []
        sched.schedule(3.0, lambda: fired.append("c"))
        sched.schedule(1.0, lambda: fired.append("a"))
        sched.schedule(2.0, lambda: fired.append("b"))
        sched.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_run_in_scheduling_order(self):
        sched = DiscreteEventScheduler()
        fired = []
        for label in "abc":
            sched.schedule(1.0, lambda lab=label: fired.append(lab))
        sched.run()
        assert fired == ["a", "b", "c"]

    def test_now_tracks_event_time(self):
        sched = DiscreteEventScheduler()
        seen = []
        sched.schedule(2.5, lambda: seen.append(sched.now))
        sched.run()
        assert seen == [2.5]

    def test_events_may_schedule_more_events(self):
        sched = DiscreteEventScheduler()
        fired = []

        def chain():
            fired.append(sched.now)
            if len(fired) < 3:
                sched.schedule_after(1.0, chain)

        sched.schedule(0.0, chain)
        sched.run()
        assert fired == [0.0, 1.0, 2.0]

    def test_scheduling_in_the_past_rejected(self):
        sched = DiscreteEventScheduler()
        sched.schedule(5.0, lambda: sched.schedule(1.0, lambda: None))
        with pytest.raises(ConfigurationError):
            sched.run()

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            DiscreteEventScheduler().schedule_after(-1.0, lambda: None)


class TestRunUntil:
    def test_stops_at_deadline(self):
        sched = DiscreteEventScheduler()
        fired = []
        sched.schedule(1.0, lambda: fired.append(1))
        sched.schedule(10.0, lambda: fired.append(10))
        sched.run(until=5.0)
        assert fired == [1]
        assert sched.now == 5.0
        assert sched.pending_count == 1

    def test_event_at_deadline_runs(self):
        sched = DiscreteEventScheduler()
        fired = []
        sched.schedule(5.0, lambda: fired.append(5))
        sched.run(until=5.0)
        assert fired == [5]

    def test_resume_after_deadline(self):
        sched = DiscreteEventScheduler()
        fired = []
        sched.schedule(10.0, lambda: fired.append(10))
        sched.run(until=5.0)
        sched.run()
        assert fired == [10]

    def test_time_advances_to_deadline_with_empty_queue(self):
        sched = DiscreteEventScheduler()
        sched.run(until=7.0)
        assert sched.now == 7.0
