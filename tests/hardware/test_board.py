"""Tests for slave and master boards."""

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.hardware.board import MasterBoard, SlaveBoard
from repro.hardware.i2c import I2CBus
from repro.hardware.power import PowerSwitch
from repro.io.bitutil import unpack_bits
from repro.sram.chip import SRAMChip


@pytest.fixture
def slave(small_profile) -> SlaveBoard:
    chip = SRAMChip(0, small_profile, random_state=1)
    return SlaveBoard(0, chip)


class TestSlaveBoard:
    def test_default_i2c_address(self, slave):
        assert slave.i2c_address == 0x10

    def test_power_on_captures_sram(self, slave):
        slave.on_power_change(True)
        assert slave.capture_count == 1
        payload = slave.i2c_read_handler()
        assert len(payload) == slave.chip.profile.read_bytes

    def test_unpowered_read_fails(self, slave):
        with pytest.raises(ProtocolError, match="unpowered"):
            slave.i2c_read_handler()

    def test_power_off_clears_capture(self, slave):
        slave.on_power_change(True)
        slave.on_power_change(False)
        with pytest.raises(ProtocolError):
            slave.i2c_read_handler()

    def test_each_power_cycle_is_fresh_capture(self, slave):
        slave.on_power_change(True)
        first = slave.i2c_read_handler()
        slave.on_power_change(False)
        slave.on_power_change(True)
        assert slave.capture_count == 2
        # Mostly equal (same device), but an independent measurement.
        second = slave.i2c_read_handler()
        assert len(first) == len(second)


class TestMasterBoard:
    @pytest.fixture
    def setup(self, small_profile):
        clock_value = {"now": 0.0}
        clock = lambda: clock_value["now"]  # noqa: E731
        switch = PowerSwitch(clock)
        bus = I2CBus(clock)
        slaves = [
            SlaveBoard(i, SRAMChip(i, small_profile, random_state=2)) for i in range(3)
        ]
        records = []
        master = MasterBoard("M0", slaves, switch, bus, clock, records.append)
        return master, switch, records, clock_value

    def test_power_on_layer_captures_all(self, setup):
        master, switch, records, _clock = setup
        master.power_on_layer()
        assert all(slave.powered for slave in master.slaves)
        assert all(slave.capture_count == 1 for slave in master.slaves)

    def test_collect_readouts_uplinks_records(self, setup):
        master, switch, records, clock = setup
        master.power_on_layer()
        clock["now"] = 0.5
        master.collect_readouts()
        assert len(records) == 3
        assert [r.board_id for r in records] == [0, 1, 2]
        assert all(r.timestamp_s == 0.5 for r in records)

    def test_sequence_numbers_advance(self, setup):
        master, switch, records, _clock = setup
        for _ in range(2):
            master.power_on_layer()
            master.collect_readouts()
            master.power_off_layer()
        assert [r.sequence for r in records if r.board_id == 0] == [0, 1]

    def test_record_payload_matches_capture(self, setup):
        master, switch, records, _clock = setup
        master.power_on_layer()
        payload = master.slaves[0].i2c_read_handler()
        master.collect_readouts()
        expected = unpack_bits(payload)
        np.testing.assert_array_equal(records[0].bits, expected)

    def test_collect_unpowered_layer_fails(self, setup):
        master, switch, records, _clock = setup
        with pytest.raises(ProtocolError):
            master.collect_readouts()

    def test_master_needs_slaves(self, setup):
        master, switch, _records, clock = setup
        with pytest.raises(ProtocolError):
            MasterBoard("M1", [], switch, I2CBus(lambda: 0.0), lambda: 0.0, print)
