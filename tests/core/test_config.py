"""Tests for the study configuration."""

import pytest

from repro.core.config import StudyConfig
from repro.errors import ConfigurationError
from repro.sram.profiles import ATMEGA32U4


class TestStudyConfig:
    def test_defaults_reproduce_paper_setup(self):
        config = StudyConfig()
        assert config.device_count == 16
        assert config.months == 24
        assert config.measurements == 1000
        assert config.profile is ATMEGA32U4

    def test_frozen(self):
        config = StudyConfig()
        with pytest.raises(AttributeError):
            config.months = 12

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"device_count": 1},
            {"months": 0},
            {"measurements": 1},
            {"initial_measurements": 1},
            {"temperature_walk_k": -0.5},
            {"aging_steps_per_month": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            StudyConfig(**kwargs)
