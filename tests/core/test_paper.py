"""Tests for the published-numbers constants."""

import pytest

from repro.core.paper import PAPER
from repro.metrics.summary import geometric_monthly_change


class TestPaperFacts:
    def test_setup_constants(self):
        assert PAPER.device_count == 16
        assert PAPER.months == 24
        assert PAPER.monthly_measurements == 1000
        assert PAPER.power_cycle_period_s == 5.4

    def test_power_cycle_times_sum(self):
        assert PAPER.power_on_time_s + PAPER.power_off_time_s == pytest.approx(
            PAPER.power_cycle_period_s
        )

    def test_table_rows_complete(self):
        rows = PAPER.table_rows()
        assert set(rows) == {
            "WCHD", "HW", "Ratio of Stable Cells", "Noise entropy",
            "BCHD", "PUF entropy",
        }

    def test_wchd_relative_change_is_19_3_percent(self):
        row = PAPER.wchd
        change = (row.end_avg - row.start_avg) / row.start_avg
        assert change == pytest.approx(0.193, abs=0.002)

    def test_published_monthly_rates_are_geometric(self):
        """Every printed monthly-change figure matches the geometric
        convention — the key to reproducing Table I exactly."""
        assert geometric_monthly_change(
            PAPER.wchd.start_avg, PAPER.wchd.end_avg, 24
        ) == pytest.approx(PAPER.nominal_monthly_wchd_rate, abs=5e-5)
        assert geometric_monthly_change(
            PAPER.accelerated_wchd_start, PAPER.accelerated_wchd_end, 24
        ) == pytest.approx(PAPER.accelerated_monthly_wchd_rate, abs=5e-5)

    def test_accelerated_degrades_faster_than_nominal(self):
        assert PAPER.accelerated_monthly_wchd_rate > PAPER.nominal_monthly_wchd_rate

    def test_stable_cell_worst_case_is_above_average(self):
        """Documents the direction quirk: the published WC stable-cell
        ratio exceeds the average (worst for TRNG = most stable)."""
        assert PAPER.stable_cells.start_worst > PAPER.stable_cells.start_avg
