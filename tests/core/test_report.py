"""Tests for Table I construction."""

import pytest

from repro.analysis.campaign import LongTermCampaign
from repro.core.report import WORST_DIRECTIONS, build_quality_report
from repro.metrics.summary import WorstDirection


@pytest.fixture(scope="module")
def report():
    result = LongTermCampaign(
        device_count=4, months=6, measurements=300, random_state=21
    ).run()
    return build_quality_report(result)


class TestReportStructure:
    def test_all_rows_present(self, report):
        assert set(report.summaries) == {
            "WCHD", "HW", "Ratio of Stable Cells", "Noise entropy",
            "BCHD", "PUF entropy",
        }

    def test_months_recorded(self, report):
        assert report.months == 6.0

    def test_render_contains_every_row(self, report):
        text = report.render()
        for name in report.summaries:
            assert name in text


class TestWorstCaseDirections:
    def test_direction_table(self):
        assert WORST_DIRECTIONS["WCHD"] is WorstDirection.HIGHEST
        assert WORST_DIRECTIONS["Ratio of Stable Cells"] is WorstDirection.HIGHEST
        assert WORST_DIRECTIONS["Noise entropy"] is WorstDirection.LOWEST
        assert WORST_DIRECTIONS["BCHD"] is WorstDirection.LOWEST

    def test_wchd_worst_above_average(self, report):
        row = report["WCHD"]
        assert row.start_worst >= row.start_avg

    def test_noise_entropy_worst_below_average(self, report):
        row = report["Noise entropy"]
        assert row.start_worst <= row.start_avg

    def test_stable_cells_worst_above_average(self, report):
        """Matches the published table's direction (87.2 % > 85.9 %)."""
        row = report["Ratio of Stable Cells"]
        assert row.start_worst >= row.start_avg

    def test_puf_entropy_has_no_independent_worst(self, report):
        row = report["PUF entropy"]
        assert row.start_worst == row.start_avg
