"""Tests for the headline assessment API."""

import pytest

from repro.core.assessment import LongTermAssessment
from repro.core.config import StudyConfig
from repro.core.paper import PAPER


@pytest.fixture(scope="module")
def result():
    config = StudyConfig(device_count=4, months=6, measurements=300, seed=17)
    return LongTermAssessment(config).run()


class TestAssessment:
    def test_default_config(self):
        assessment = LongTermAssessment()
        assert assessment.config.device_count == 16

    def test_result_carries_config(self, result):
        assert result.config.device_count == 4

    def test_table_built(self, result):
        assert result.table["WCHD"].start_avg > 0

    def test_series_accessible(self, result):
        wchd = result.series.metric("WCHD")
        assert wchd.per_board.shape == (7, 4)


class TestComparison:
    def test_every_published_cell_compared(self, result):
        rows = result.compare_with_paper()
        # 5 metrics x 4 cells + PUF entropy x 2 cells.
        assert len(rows) == 22

    def test_comparison_errors_computed(self, result):
        row = result.compare_with_paper()[0]
        assert row.absolute_error == pytest.approx(
            row.measured_value - row.paper_value
        )
        assert row.relative_error == pytest.approx(
            row.absolute_error / row.paper_value
        )

    def test_start_values_match_paper_within_tolerance(self, result):
        """Even a small 4-device fleet lands near the published start
        column (the population statistics are calibrated)."""
        for row in result.compare_with_paper():
            if row.column == "start_avg" and row.metric in ("WCHD", "HW"):
                assert abs(row.relative_error) < 0.15

    def test_render_comparison(self, result):
        text = result.render_comparison()
        assert "Paper" in text and "Measured" in text
        assert "WCHD" in text
