"""Tests for model calibration."""

import pytest

from repro.core.calibration import (
    CalibrationTargets,
    calibrate_aging,
    calibrate_skew_distribution,
    predicted_initial_metrics,
)
from repro.errors import CalibrationError
from repro.sram.profiles import ATMEGA32U4, NOISE_SIGMA_V


class TestPredictedInitialMetrics:
    def test_shipped_profile_predicts_paper_initials(self):
        """The ATmega profile's skew parameters predict Table I start
        values for *all four* initial metrics, two of which were never
        fitted — the model-consistency check from DESIGN.md."""
        mean = ATMEGA32U4.skew_mean_v / NOISE_SIGMA_V
        sigma = ATMEGA32U4.skew_sigma_v / NOISE_SIGMA_V
        metrics = predicted_initial_metrics(mean, sigma)
        assert metrics["fhw"] == pytest.approx(0.627, abs=0.001)
        assert metrics["wchd"] == pytest.approx(0.0249, abs=0.0002)
        assert metrics["stable_ratio"] == pytest.approx(0.859, abs=0.005)
        assert metrics["noise_entropy"] == pytest.approx(0.0305, abs=0.001)

    def test_unbiased_distribution_gives_half_fhw(self):
        metrics = predicted_initial_metrics(0.0, 8.0)
        assert metrics["fhw"] == pytest.approx(0.5, abs=1e-6)

    def test_narrower_skew_means_more_noise(self):
        wide = predicted_initial_metrics(0.0, 17.0)
        narrow = predicted_initial_metrics(0.0, 8.0)
        assert narrow["wchd"] > wide["wchd"]
        assert narrow["noise_entropy"] > wide["noise_entropy"]


class TestSkewCalibration:
    def test_recovers_shipped_parameters(self):
        mean, sigma = calibrate_skew_distribution(fhw=0.627, wchd=0.0249)
        assert mean == pytest.approx(ATMEGA32U4.skew_mean_v / NOISE_SIGMA_V, rel=0.01)
        assert sigma == pytest.approx(ATMEGA32U4.skew_sigma_v / NOISE_SIGMA_V, rel=0.01)

    def test_solves_65nm_targets(self):
        mean, sigma = calibrate_skew_distribution(
            fhw=0.50, wchd=0.053, initial_guess=(0.0, 8.0)
        )
        assert abs(mean) < 0.01
        metrics = predicted_initial_metrics(mean, sigma)
        assert metrics["wchd"] == pytest.approx(0.053, abs=1e-4)

    def test_invalid_targets_rejected(self):
        with pytest.raises(CalibrationError):
            calibrate_skew_distribution(fhw=1.5, wchd=0.02)
        with pytest.raises(CalibrationError):
            calibrate_skew_distribution(fhw=0.6, wchd=0.6)


@pytest.mark.slow
class TestAgingCalibration:
    def test_recovers_shipped_aging_parameters(self):
        mean = ATMEGA32U4.skew_mean_v / NOISE_SIGMA_V
        sigma = ATMEGA32U4.skew_sigma_v / NOISE_SIGMA_V
        amplitude, dispersion = calibrate_aging(
            mean, sigma, CalibrationTargets(), population=100_000
        )
        assert amplitude == pytest.approx(
            ATMEGA32U4.bti_amplitude_v / NOISE_SIGMA_V, rel=0.25
        )
        assert dispersion == pytest.approx(
            ATMEGA32U4.bti_dispersion_v / NOISE_SIGMA_V, rel=0.25
        )
