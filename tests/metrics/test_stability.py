"""Tests for cell-stability metrics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metrics.stability import (
    one_probabilities_from_counts,
    stable_cell_mask,
    stable_cell_ratio,
    stable_cell_ratio_from_counts,
)


class TestOneProbabilities:
    def test_basic(self):
        probs = one_probabilities_from_counts(np.array([0, 5, 10]), 10)
        np.testing.assert_allclose(probs, [0.0, 0.5, 1.0])

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            one_probabilities_from_counts(np.array([11]), 10)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            one_probabilities_from_counts(np.array([]), 10)


class TestStableCellMask:
    def test_definition(self):
        """Stable means one-probability exactly 0 or 1 over the block."""
        mask = stable_cell_mask(np.array([0, 1, 999, 1000]), 1000)
        np.testing.assert_array_equal(mask, [True, False, False, True])

    def test_ratio_from_counts(self):
        ratio = stable_cell_ratio_from_counts(np.array([0, 10, 5, 10]), 10)
        assert ratio == pytest.approx(0.75)

    def test_ratio_from_block(self):
        block = np.array(
            [[0, 1, 0], [0, 1, 1], [0, 1, 0]], dtype=np.uint8
        )
        assert stable_cell_ratio(block) == pytest.approx(2 / 3)

    def test_block_and_counts_agree(self):
        rng = np.random.default_rng(5)
        block = (rng.random((200, 64)) < 0.95).astype(np.uint8)
        from_block = stable_cell_ratio(block)
        from_counts = stable_cell_ratio_from_counts(
            block.sum(axis=0, dtype=np.int64), 200
        )
        assert from_block == from_counts

    def test_single_measurement_block_rejected(self):
        with pytest.raises(ConfigurationError):
            stable_cell_ratio(np.zeros((1, 4), dtype=np.uint8))

    def test_more_measurements_find_more_instability(self, chip):
        """Stability is protocol-relative: longer blocks catch rarer flips."""
        short = stable_cell_ratio_from_counts(chip.read_window_ones_counts(50), 50)
        long = stable_cell_ratio_from_counts(chip.read_window_ones_counts(5000), 5000)
        assert long < short
