"""Tests for spatial / cross-device bit statistics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metrics.spatial import (
    aliasing_extremes,
    autocorrelation,
    bit_aliasing,
    neighbourhood_correlation,
    uniformity,
)


class TestBitAliasing:
    def test_identical_devices_fully_aliased(self):
        pattern = np.array([1, 0, 1, 1], dtype=np.uint8)
        aliasing = bit_aliasing([pattern, pattern, pattern])
        np.testing.assert_allclose(aliasing, pattern.astype(float))

    def test_random_devices_near_half(self):
        rng = np.random.default_rng(1)
        readouts = [rng.integers(0, 2, 4096, dtype=np.uint8) for _ in range(32)]
        aliasing = bit_aliasing(readouts)
        assert abs(aliasing.mean() - 0.5) < 0.02

    def test_single_device_rejected(self):
        with pytest.raises(ConfigurationError):
            bit_aliasing([np.zeros(8, dtype=np.uint8)])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            bit_aliasing([np.zeros(8, dtype=np.uint8), np.zeros(4, dtype=np.uint8)])

    def test_simulated_fleet_reflects_bias(self, seeds):
        """The ATmega fleet aliases toward 1 on average (62.7 % bias)."""
        from repro.sram.chip import SRAMChip

        readouts = [SRAMChip(i, random_state=seeds).read_startup() for i in range(6)]
        aliasing = bit_aliasing(readouts)
        assert 0.58 < aliasing.mean() < 0.68


class TestAliasingExtremes:
    def test_identical_devices_are_all_extreme(self):
        pattern = np.array([1, 0, 1, 1], dtype=np.uint8)
        assert aliasing_extremes([pattern] * 12) == 1.0

    def test_random_devices_mostly_not_extreme(self):
        rng = np.random.default_rng(2)
        readouts = [rng.integers(0, 2, 2048, dtype=np.uint8) for _ in range(32)]
        assert aliasing_extremes(readouts) < 0.1

    def test_bad_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            aliasing_extremes([np.zeros(8, dtype=np.uint8)] * 2, threshold=0.6)


class TestUniformity:
    def test_matches_fhw(self):
        assert uniformity([1, 1, 0, 0]) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            uniformity([])


class TestAutocorrelation:
    def test_random_response_uncorrelated(self):
        rng = np.random.default_rng(3)
        response = rng.integers(0, 2, 16384, dtype=np.uint8)
        lags = autocorrelation(response, max_lag=32)
        assert np.abs(lags).max() < 0.05

    def test_periodic_response_detected(self):
        response = np.tile([1, 0], 4096).astype(np.uint8)
        lags = autocorrelation(response, max_lag=4)
        assert lags[0] == pytest.approx(-1.0, abs=0.01)  # lag 1 anti-correlated
        assert lags[1] == pytest.approx(1.0, abs=0.01)  # lag 2 correlated

    def test_constant_response_rejected(self):
        with pytest.raises(ConfigurationError):
            autocorrelation(np.ones(256, dtype=np.uint8))

    def test_simulated_chip_uncorrelated(self, chip):
        lags = autocorrelation(chip.read_startup(), max_lag=16)
        assert np.abs(lags).max() < 0.05


class TestNeighbourhoodCorrelation:
    def test_random_image_uncorrelated(self):
        rng = np.random.default_rng(4)
        response = rng.integers(0, 2, 8192, dtype=np.uint8)
        result = neighbourhood_correlation(response, width=128)
        assert abs(result["horizontal"]) < 0.05
        assert abs(result["vertical"]) < 0.05

    def test_striped_image_vertically_correlated(self):
        image = np.tile(np.arange(64) % 2, (16, 1)).astype(np.uint8)
        result = neighbourhood_correlation(image.ravel(), width=64)
        assert result["vertical"] == pytest.approx(1.0)
        assert result["horizontal"] == pytest.approx(-1.0)

    def test_bad_width_rejected(self):
        with pytest.raises(ConfigurationError):
            neighbourhood_correlation(np.zeros(10, dtype=np.uint8), width=3)
