"""Tests for histogram summaries."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metrics.histograms import fractional_histogram


class TestFractionalHistogram:
    def test_percentages_sum_to_100(self):
        summary = fractional_histogram(np.linspace(0, 1, 500), bins=20)
        assert summary.percentages.sum() == pytest.approx(100.0)

    def test_bin_count(self):
        summary = fractional_histogram([0.5], bins=10)
        assert summary.percentages.size == 10
        assert summary.bin_edges.size == 11

    def test_mode_center(self):
        values = np.concatenate([np.full(90, 0.45), np.full(10, 0.9)])
        summary = fractional_histogram(values, bins=10)
        assert summary.mode_center() == pytest.approx(0.45)

    def test_mass_between(self):
        values = np.array([0.1, 0.1, 0.1, 0.9])
        summary = fractional_histogram(values, bins=10)
        assert summary.mass_between(0.0, 0.2) == pytest.approx(75.0)

    def test_sample_count(self):
        assert fractional_histogram([0.2, 0.3]).sample_count == 2

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            fractional_histogram([1.5])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            fractional_histogram([])

    def test_bad_bins_rejected(self):
        with pytest.raises(ConfigurationError):
            fractional_histogram([0.5], bins=0)
