"""Tests for min-entropy metrics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metrics.entropy import (
    average_min_entropy,
    min_entropy_bits,
    noise_min_entropy,
    noise_min_entropy_from_counts,
    puf_min_entropy,
)


class TestMinEntropyBits:
    def test_fair_source_gives_one_bit(self):
        assert min_entropy_bits(np.array([0.5]))[0] == pytest.approx(1.0)

    def test_deterministic_source_gives_zero(self):
        np.testing.assert_allclose(min_entropy_bits(np.array([0.0, 1.0])), [0.0, 0.0])

    def test_symmetry(self):
        assert min_entropy_bits(np.array([0.3]))[0] == pytest.approx(
            min_entropy_bits(np.array([0.7]))[0]
        )

    def test_paper_bias_value(self):
        """A 62.7 % one-probability yields -log2(0.627) = 0.6735 bits."""
        assert min_entropy_bits(np.array([0.627]))[0] == pytest.approx(0.6735, abs=1e-4)

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            min_entropy_bits(np.array([1.2]))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            min_entropy_bits(np.array([]))

    def test_average(self):
        assert average_min_entropy(np.array([0.5, 1.0])) == pytest.approx(0.5)


class TestPufEntropy:
    def test_identical_devices_give_zero(self):
        readouts = [np.ones(16, dtype=np.uint8)] * 4
        assert puf_min_entropy(readouts) == 0.0

    def test_uniform_devices_approach_one(self):
        rng = np.random.default_rng(2)
        readouts = [rng.integers(0, 2, 8192, dtype=np.uint8) for _ in range(16)]
        assert puf_min_entropy(readouts) > 0.6

    def test_alternating_devices(self):
        a = np.array([0, 1], dtype=np.uint8)
        b = np.array([1, 0], dtype=np.uint8)
        assert puf_min_entropy([a, b]) == pytest.approx(1.0)

    def test_single_device_rejected(self):
        with pytest.raises(ConfigurationError):
            puf_min_entropy([np.zeros(8, dtype=np.uint8)])


class TestNoiseEntropy:
    def test_stable_block_gives_zero(self):
        block = np.tile(np.array([1, 0, 1], dtype=np.uint8), (10, 1))
        assert noise_min_entropy(block) == 0.0

    def test_noisy_block_positive(self):
        rng = np.random.default_rng(3)
        block = rng.integers(0, 2, (100, 64), dtype=np.uint8)
        assert noise_min_entropy(block) > 0.5

    def test_counts_equivalence(self):
        rng = np.random.default_rng(4)
        block = rng.integers(0, 2, (50, 32), dtype=np.uint8)
        direct = noise_min_entropy(block)
        from_counts = noise_min_entropy_from_counts(
            block.sum(axis=0, dtype=np.int64), 50
        )
        assert from_counts == pytest.approx(direct)

    def test_single_measurement_rejected(self):
        with pytest.raises(ConfigurationError):
            noise_min_entropy(np.zeros((1, 8), dtype=np.uint8))

    def test_1d_rejected(self):
        with pytest.raises(ConfigurationError):
            noise_min_entropy(np.zeros(8, dtype=np.uint8))

    def test_counts_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            noise_min_entropy_from_counts(np.array([5]), 4)
