"""Tests for Hamming distance/weight metrics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metrics.hamming import (
    between_class_hd,
    fractional_hamming_distance,
    fractional_hamming_weight,
    fractional_hamming_weight_from_counts,
    hamming_distance,
    within_class_hd,
    within_class_hd_from_counts,
)


class TestHammingDistance:
    def test_identical_vectors(self):
        assert hamming_distance([1, 0, 1], [1, 0, 1]) == 0

    def test_complement(self):
        assert hamming_distance([1, 0, 1], [0, 1, 0]) == 3

    def test_fractional(self):
        assert fractional_hamming_distance([1, 1, 0, 0], [1, 0, 0, 0]) == 0.25

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            hamming_distance([1, 0], [1, 0, 1])

    def test_empty_fhd_rejected(self):
        with pytest.raises(ConfigurationError):
            fractional_hamming_distance([], [])


class TestHammingWeight:
    def test_vector(self):
        assert fractional_hamming_weight([1, 1, 0, 0]) == 0.5

    def test_matrix_averages_all_entries(self):
        matrix = np.array([[1, 1], [0, 0]], dtype=np.uint8)
        assert fractional_hamming_weight(matrix) == 0.5

    def test_from_counts(self):
        counts = np.array([10, 0, 5])
        assert fractional_hamming_weight_from_counts(counts, 10) == pytest.approx(0.5)

    def test_from_counts_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            fractional_hamming_weight_from_counts(np.array([11]), 10)

    def test_non_binary_rejected(self):
        with pytest.raises(ConfigurationError):
            fractional_hamming_weight([0, 2])


class TestWithinClassHD:
    def test_block_mean(self):
        reference = np.array([1, 1, 0, 0], dtype=np.uint8)
        block = np.array([[1, 1, 0, 0], [0, 1, 0, 0]], dtype=np.uint8)
        assert within_class_hd(block, reference) == pytest.approx(0.125)

    def test_single_vector_accepted(self):
        assert within_class_hd([1, 0], [0, 0]) == pytest.approx(0.5)

    def test_counts_equivalence(self):
        """Counts formulation equals the full-block formulation."""
        rng = np.random.default_rng(0)
        reference = rng.integers(0, 2, 64, dtype=np.uint8)
        block = rng.integers(0, 2, (20, 64), dtype=np.uint8)
        full = within_class_hd(block, reference)
        counts = within_class_hd_from_counts(
            block.sum(axis=0, dtype=np.int64), 20, reference
        )
        assert counts == pytest.approx(full)

    def test_counts_all_agree_is_zero(self):
        reference = np.array([1, 0, 1], dtype=np.uint8)
        counts = np.array([10, 0, 10])
        assert within_class_hd_from_counts(counts, 10, reference) == 0.0

    def test_counts_all_disagree_is_one(self):
        reference = np.array([1, 0], dtype=np.uint8)
        counts = np.array([0, 10])
        assert within_class_hd_from_counts(counts, 10, reference) == 1.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            within_class_hd_from_counts(np.array([1, 2]), 10, [1, 0, 1])


class TestBetweenClassHD:
    def test_pair_count(self):
        readouts = [np.zeros(8, dtype=np.uint8) for _ in range(5)]
        assert between_class_hd(readouts).size == 10  # C(5,2)

    def test_identical_devices_give_zero(self):
        readouts = [np.ones(8, dtype=np.uint8)] * 3
        np.testing.assert_array_equal(between_class_hd(readouts), [0, 0, 0])

    def test_complementary_devices_give_one(self):
        a = np.zeros(8, dtype=np.uint8)
        b = np.ones(8, dtype=np.uint8)
        np.testing.assert_array_equal(between_class_hd([a, b]), [1.0])

    def test_random_devices_near_half(self):
        rng = np.random.default_rng(1)
        readouts = [rng.integers(0, 2, 4096, dtype=np.uint8) for _ in range(6)]
        values = between_class_hd(readouts)
        assert np.all(np.abs(values - 0.5) < 0.05)

    def test_single_device_rejected(self):
        with pytest.raises(ConfigurationError):
            between_class_hd([np.zeros(8, dtype=np.uint8)])

    def test_unequal_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            between_class_hd([np.zeros(8, dtype=np.uint8), np.zeros(4, dtype=np.uint8)])


class TestBetweenClassHDVectorization:
    """The Gram-matrix path must equal the per-pair loop bit for bit."""

    @staticmethod
    def loop_reference(matrix: np.ndarray) -> np.ndarray:
        """The original itertools.combinations implementation."""
        from itertools import combinations

        pairs = list(combinations(range(len(matrix)), 2))
        return np.array(
            [float((matrix[i] != matrix[j]).mean()) for i, j in pairs], dtype=float
        )

    def test_exact_equality_with_loop_on_random_fleet(self):
        rng = np.random.default_rng(2026)
        for devices, cells in [(2, 8), (5, 64), (16, 1024), (33, 4096)]:
            matrix = rng.integers(0, 2, size=(devices, cells), dtype=np.uint8)
            vectorized = between_class_hd(list(matrix))
            looped = self.loop_reference(matrix)
            assert vectorized.dtype == looped.dtype
            np.testing.assert_array_equal(vectorized, looped)

    def test_pair_ordering_is_combinations_order(self):
        # Three distinguishable devices: FHD(0,1)=1/8, FHD(0,2)=2/8,
        # FHD(1,2)=3/8 -- the result must arrive in exactly that order.
        base = np.zeros(8, dtype=np.uint8)
        one = base.copy(); one[:1] = 1
        two = base.copy(); two[1:3] = 1
        values = between_class_hd([base, one, two])
        np.testing.assert_array_equal(values, [1 / 8, 2 / 8, 3 / 8])

    def test_biased_fleet_exact(self):
        rng = np.random.default_rng(7)
        # The paper's ~62.7% ones bias, not the uniform-random case.
        matrix = (rng.random((12, 512)) < 0.627).astype(np.uint8)
        np.testing.assert_array_equal(
            between_class_hd(list(matrix)), self.loop_reference(matrix)
        )
