"""Tests for Hamming distance/weight metrics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metrics.hamming import (
    between_class_hd,
    fractional_hamming_distance,
    fractional_hamming_weight,
    fractional_hamming_weight_from_counts,
    hamming_distance,
    within_class_hd,
    within_class_hd_from_counts,
)


class TestHammingDistance:
    def test_identical_vectors(self):
        assert hamming_distance([1, 0, 1], [1, 0, 1]) == 0

    def test_complement(self):
        assert hamming_distance([1, 0, 1], [0, 1, 0]) == 3

    def test_fractional(self):
        assert fractional_hamming_distance([1, 1, 0, 0], [1, 0, 0, 0]) == 0.25

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            hamming_distance([1, 0], [1, 0, 1])

    def test_empty_fhd_rejected(self):
        with pytest.raises(ConfigurationError):
            fractional_hamming_distance([], [])


class TestHammingWeight:
    def test_vector(self):
        assert fractional_hamming_weight([1, 1, 0, 0]) == 0.5

    def test_matrix_averages_all_entries(self):
        matrix = np.array([[1, 1], [0, 0]], dtype=np.uint8)
        assert fractional_hamming_weight(matrix) == 0.5

    def test_from_counts(self):
        counts = np.array([10, 0, 5])
        assert fractional_hamming_weight_from_counts(counts, 10) == pytest.approx(0.5)

    def test_from_counts_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            fractional_hamming_weight_from_counts(np.array([11]), 10)

    def test_non_binary_rejected(self):
        with pytest.raises(ConfigurationError):
            fractional_hamming_weight([0, 2])


class TestWithinClassHD:
    def test_block_mean(self):
        reference = np.array([1, 1, 0, 0], dtype=np.uint8)
        block = np.array([[1, 1, 0, 0], [0, 1, 0, 0]], dtype=np.uint8)
        assert within_class_hd(block, reference) == pytest.approx(0.125)

    def test_single_vector_accepted(self):
        assert within_class_hd([1, 0], [0, 0]) == pytest.approx(0.5)

    def test_counts_equivalence(self):
        """Counts formulation equals the full-block formulation."""
        rng = np.random.default_rng(0)
        reference = rng.integers(0, 2, 64, dtype=np.uint8)
        block = rng.integers(0, 2, (20, 64), dtype=np.uint8)
        full = within_class_hd(block, reference)
        counts = within_class_hd_from_counts(
            block.sum(axis=0, dtype=np.int64), 20, reference
        )
        assert counts == pytest.approx(full)

    def test_counts_all_agree_is_zero(self):
        reference = np.array([1, 0, 1], dtype=np.uint8)
        counts = np.array([10, 0, 10])
        assert within_class_hd_from_counts(counts, 10, reference) == 0.0

    def test_counts_all_disagree_is_one(self):
        reference = np.array([1, 0], dtype=np.uint8)
        counts = np.array([0, 10])
        assert within_class_hd_from_counts(counts, 10, reference) == 1.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            within_class_hd_from_counts(np.array([1, 2]), 10, [1, 0, 1])


class TestBetweenClassHD:
    def test_pair_count(self):
        readouts = [np.zeros(8, dtype=np.uint8) for _ in range(5)]
        assert between_class_hd(readouts).size == 10  # C(5,2)

    def test_identical_devices_give_zero(self):
        readouts = [np.ones(8, dtype=np.uint8)] * 3
        np.testing.assert_array_equal(between_class_hd(readouts), [0, 0, 0])

    def test_complementary_devices_give_one(self):
        a = np.zeros(8, dtype=np.uint8)
        b = np.ones(8, dtype=np.uint8)
        np.testing.assert_array_equal(between_class_hd([a, b]), [1.0])

    def test_random_devices_near_half(self):
        rng = np.random.default_rng(1)
        readouts = [rng.integers(0, 2, 4096, dtype=np.uint8) for _ in range(6)]
        values = between_class_hd(readouts)
        assert np.all(np.abs(values - 0.5) < 0.05)

    def test_single_device_rejected(self):
        with pytest.raises(ConfigurationError):
            between_class_hd([np.zeros(8, dtype=np.uint8)])

    def test_unequal_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            between_class_hd([np.zeros(8, dtype=np.uint8), np.zeros(4, dtype=np.uint8)])
