"""Tests for Table I aggregation."""

import pytest

from repro.errors import ConfigurationError
from repro.metrics.summary import (
    MetricSummary,
    QualityReport,
    WorstDirection,
    geometric_monthly_change,
    relative_change,
)


class TestGeometricMonthlyChange:
    def test_reproduces_paper_wchd_rate(self):
        """2.49 % -> 2.97 % over 24 months must print +0.74 %/month."""
        assert geometric_monthly_change(0.0249, 0.0297, 24) == pytest.approx(
            0.0074, abs=5e-5
        )

    def test_reproduces_paper_stable_cell_rate(self):
        assert geometric_monthly_change(0.859, 0.837, 24) == pytest.approx(
            -0.0011, abs=5e-5
        )

    def test_reproduces_accelerated_rate(self):
        assert geometric_monthly_change(0.053, 0.072, 24) == pytest.approx(
            0.0128, abs=5e-5
        )

    def test_no_change_is_zero(self):
        assert geometric_monthly_change(0.5, 0.5, 24) == 0.0

    def test_nonpositive_values_rejected(self):
        with pytest.raises(ConfigurationError):
            geometric_monthly_change(0.0, 0.1, 24)

    def test_zero_months_rejected(self):
        with pytest.raises(ConfigurationError):
            geometric_monthly_change(0.1, 0.2, 0)


class TestRelativeChange:
    def test_basic(self):
        assert relative_change(0.0249, 0.0297) == pytest.approx(0.193, abs=1e-3)

    def test_zero_start_rejected(self):
        with pytest.raises(ConfigurationError):
            relative_change(0.0, 0.1)


class TestMetricSummary:
    def test_from_device_values_highest(self):
        summary = MetricSummary.from_device_values(
            "WCHD", [0.02, 0.03], [0.025, 0.04], 24, WorstDirection.HIGHEST
        )
        assert summary.start_avg == pytest.approx(0.025)
        assert summary.start_worst == pytest.approx(0.03)
        assert summary.end_worst == pytest.approx(0.04)

    def test_from_device_values_lowest(self):
        summary = MetricSummary.from_device_values(
            "Noise entropy", [0.03, 0.02], [0.04, 0.035], 24, WorstDirection.LOWEST
        )
        assert summary.start_worst == pytest.approx(0.02)
        assert summary.end_worst == pytest.approx(0.035)

    def test_negligible_change_reported_as_none(self):
        summary = MetricSummary("HW", 24, 0.627, 0.62701, 0.65, 0.65)
        assert summary.relative_change_avg is None
        assert summary.monthly_change_avg is None

    def test_significant_change_reported(self):
        summary = MetricSummary("WCHD", 24, 0.0249, 0.0297, 0.0272, 0.0325)
        assert summary.relative_change_avg == pytest.approx(0.193, abs=1e-3)
        assert summary.monthly_change_avg == pytest.approx(0.0074, abs=5e-5)

    def test_empty_device_values_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricSummary.from_device_values("x", [], [], 24, WorstDirection.HIGHEST)

    def test_format_rows_renders_both_lines(self):
        summary = MetricSummary("WCHD", 24, 0.0249, 0.0297, 0.0272, 0.0325)
        rows = summary.format_rows()
        assert len(rows) == 2
        assert "AVG." in rows[0] and "WC." in rows[1]


class TestQualityReport:
    def test_lookup_and_render(self):
        summary = MetricSummary("WCHD", 24, 0.0249, 0.0297, 0.0272, 0.0325)
        report = QualityReport(24, {"WCHD": summary})
        assert report["WCHD"] is summary
        assert "WCHD" in report.render()

    def test_missing_metric_raises_keyerror(self):
        report = QualityReport(24, {})
        with pytest.raises(KeyError):
            report["WCHD"]
