"""Tests for bit-vector utilities."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.io.bitutil import (
    bits_from_hex,
    bits_to_hex,
    ensure_bits,
    hamming_weight,
    pack_bits,
    random_bits,
    unpack_bits,
    xor_bits,
)


class TestEnsureBits:
    def test_accepts_lists(self):
        result = ensure_bits([0, 1, 1, 0])
        assert result.dtype == np.uint8
        np.testing.assert_array_equal(result, [0, 1, 1, 0])

    def test_accepts_bool_arrays(self):
        result = ensure_bits(np.array([True, False, True]))
        np.testing.assert_array_equal(result, [1, 0, 1])

    def test_rejects_non_binary_values(self):
        with pytest.raises(ConfigurationError):
            ensure_bits([0, 1, 2])

    def test_rejects_negative_values(self):
        with pytest.raises(ConfigurationError):
            ensure_bits([-1, 0])

    def test_rejects_floats(self):
        with pytest.raises(ConfigurationError):
            ensure_bits(np.array([0.0, 1.0]))

    def test_rejects_2d(self):
        with pytest.raises(ConfigurationError):
            ensure_bits(np.zeros((2, 2), dtype=np.uint8))

    def test_length_check(self):
        with pytest.raises(ConfigurationError):
            ensure_bits([0, 1], length=3)

    def test_empty_allowed(self):
        assert ensure_bits([]).size == 0


class TestPackUnpack:
    def test_roundtrip(self):
        bits = random_bits(64, random_state=1)
        np.testing.assert_array_equal(unpack_bits(pack_bits(bits)), bits)

    def test_msb_first_convention(self):
        assert pack_bits([1, 0, 0, 0, 0, 0, 0, 0]) == b"\x80"
        assert pack_bits([0, 0, 0, 0, 0, 0, 0, 1]) == b"\x01"

    def test_non_byte_aligned_rejected(self):
        with pytest.raises(ConfigurationError):
            pack_bits([1, 0, 1])

    def test_unpack_with_bit_count_trims(self):
        bits = unpack_bits(b"\xff", bit_count=3)
        np.testing.assert_array_equal(bits, [1, 1, 1])

    def test_unpack_overlong_request_rejected(self):
        with pytest.raises(ConfigurationError):
            unpack_bits(b"\x00", bit_count=9)


class TestHex:
    def test_roundtrip(self):
        bits = random_bits(128, random_state=2)
        np.testing.assert_array_equal(bits_from_hex(bits_to_hex(bits)), bits)

    def test_known_value(self):
        assert bits_to_hex([1, 0, 1, 0, 1, 0, 1, 0]) == "aa"

    def test_invalid_hex_rejected(self):
        with pytest.raises(ConfigurationError):
            bits_from_hex("zz")


class TestHelpers:
    def test_hamming_weight(self):
        assert hamming_weight([1, 0, 1, 1]) == 3

    def test_random_bits_are_binary(self):
        bits = random_bits(1000, random_state=3)
        assert set(np.unique(bits)) <= {0, 1}

    def test_random_bits_roughly_balanced(self):
        bits = random_bits(10_000, random_state=4)
        assert 0.45 < bits.mean() < 0.55

    def test_random_bits_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            random_bits(-1)

    def test_xor_bits(self):
        np.testing.assert_array_equal(
            xor_bits([1, 1, 0, 0], [1, 0, 1, 0]), [0, 1, 1, 0]
        )

    def test_xor_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            xor_bits([1, 0], [1, 0, 1])
