"""Tests for the measurement record schema."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.io.bitutil import random_bits
from repro.io.records import MeasurementRecord


@pytest.fixture
def record() -> MeasurementRecord:
    return MeasurementRecord(
        board_id=3, sequence=17, timestamp_s=42.5, bits=random_bits(64, random_state=1)
    )


class TestMeasurementRecord:
    def test_json_roundtrip(self, record):
        restored = MeasurementRecord.from_json_dict(record.to_json_dict())
        assert restored == record

    def test_json_dict_shape(self, record):
        doc = record.to_json_dict()
        assert set(doc) == {"board", "seq", "t", "bits", "data"}
        assert doc["bits"] == 64

    def test_bit_count(self, record):
        assert record.bit_count == 64

    def test_negative_board_rejected(self):
        with pytest.raises(StorageError):
            MeasurementRecord(-1, 0, 0.0, random_bits(8))

    def test_negative_sequence_rejected(self):
        with pytest.raises(StorageError):
            MeasurementRecord(0, -1, 0.0, random_bits(8))

    def test_negative_timestamp_rejected(self):
        with pytest.raises(StorageError):
            MeasurementRecord(0, 0, -0.1, random_bits(8))

    def test_malformed_document_rejected(self):
        with pytest.raises(StorageError):
            MeasurementRecord.from_json_dict({"board": 0})

    def test_corrupt_payload_rejected(self):
        with pytest.raises(StorageError):
            MeasurementRecord.from_json_dict(
                {"board": 0, "seq": 0, "t": 0.0, "bits": 8, "data": "not-hex"}
            )

    def test_equality_compares_payload(self, record):
        other = MeasurementRecord(
            record.board_id, record.sequence, record.timestamp_s,
            np.zeros(64, dtype=np.uint8),
        )
        assert record != other
