"""Tests for campaign result persistence."""

import numpy as np
import pytest

from repro.analysis.campaign import LongTermCampaign
from repro.errors import StorageError
from repro.io.resultstore import (
    campaign_from_dict,
    campaign_to_dict,
    load_campaign,
    save_campaign,
)


@pytest.fixture(scope="module")
def result():
    return LongTermCampaign(
        device_count=3, months=2, measurements=100, random_state=44
    ).run()


class TestRoundtrip:
    def test_dict_roundtrip(self, result):
        restored = campaign_from_dict(campaign_to_dict(result))
        assert restored.profile_name == result.profile_name
        assert restored.months == result.months
        assert restored.board_ids == result.board_ids

    def test_references_preserved(self, result):
        restored = campaign_from_dict(campaign_to_dict(result))
        for board in result.board_ids:
            np.testing.assert_array_equal(
                restored.references[board], result.references[board]
            )

    def test_snapshots_preserved(self, result):
        restored = campaign_from_dict(campaign_to_dict(result))
        for original, loaded in zip(result.snapshots, restored.snapshots):
            assert loaded.month == original.month
            np.testing.assert_allclose(loaded.wchd, original.wchd)
            np.testing.assert_allclose(loaded.noise_entropy, original.noise_entropy)
            np.testing.assert_allclose(loaded.bchd_pairs, original.bchd_pairs)
            assert loaded.puf_entropy == pytest.approx(original.puf_entropy)

    def test_file_roundtrip(self, result, tmp_path):
        path = str(tmp_path / "campaign.json")
        save_campaign(result, path)
        restored = load_campaign(path)
        assert restored.months == result.months
        np.testing.assert_allclose(restored.end.wchd, result.end.wchd)

    def test_report_rebuilds_from_loaded_result(self, result, tmp_path):
        """A loaded campaign supports the full analysis pipeline."""
        from repro.core.report import build_quality_report

        path = str(tmp_path / "campaign.json")
        save_campaign(result, path)
        report = build_quality_report(load_campaign(path))
        original = build_quality_report(result)
        assert report["WCHD"].start_avg == pytest.approx(original["WCHD"].start_avg)


class TestErrorHandling:
    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(StorageError):
            load_campaign(str(tmp_path / "nope.json"))

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(StorageError):
            load_campaign(str(path))

    def test_wrong_version_rejected(self, result):
        doc = campaign_to_dict(result)
        doc["format_version"] = 99
        with pytest.raises(StorageError):
            campaign_from_dict(doc)

    def test_missing_field_rejected(self, result):
        doc = campaign_to_dict(result)
        del doc["references"]
        with pytest.raises(StorageError):
            campaign_from_dict(doc)
