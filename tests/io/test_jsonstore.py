"""Tests for the JSON-lines measurement database."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.io.bitutil import random_bits
from repro.io.jsonstore import MeasurementDatabase
from repro.io.records import MeasurementRecord


def make_record(board: int, seq: int) -> MeasurementRecord:
    return MeasurementRecord(board, seq, float(seq), random_bits(32, random_state=seq))


class TestInMemoryDatabase:
    def test_append_and_len(self):
        db = MeasurementDatabase()
        db.append(make_record(0, 0))
        assert len(db) == 1

    def test_extend(self):
        db = MeasurementDatabase()
        db.extend([make_record(0, i) for i in range(5)])
        assert len(db) == 5

    def test_for_board_filters(self):
        db = MeasurementDatabase()
        db.extend([make_record(0, 0), make_record(1, 0), make_record(0, 1)])
        assert len(db.for_board(0)) == 2

    def test_board_ids_sorted(self):
        db = MeasurementDatabase()
        db.extend([make_record(5, 0), make_record(1, 0), make_record(3, 0)])
        assert db.board_ids() == [1, 3, 5]

    def test_first_for_board(self):
        db = MeasurementDatabase()
        db.extend([make_record(0, 0), make_record(0, 1)])
        assert db.first_for_board(0).sequence == 0

    def test_first_for_missing_board_raises(self):
        with pytest.raises(StorageError):
            MeasurementDatabase().first_for_board(99)

    def test_append_wrong_type_rejected(self):
        with pytest.raises(StorageError):
            MeasurementDatabase().append("not a record")

    def test_iteration_preserves_order(self):
        db = MeasurementDatabase()
        records = [make_record(0, i) for i in range(3)]
        db.extend(records)
        assert list(db) == records


class TestFileBackedDatabase:
    def test_persistence_roundtrip(self, tmp_path):
        path = str(tmp_path / "measurements.jsonl")
        db = MeasurementDatabase(path)
        db.extend([make_record(0, i) for i in range(4)])
        reloaded = MeasurementDatabase(path)
        assert len(reloaded) == 4
        assert list(reloaded) == list(db)

    def test_append_after_reload(self, tmp_path):
        path = str(tmp_path / "measurements.jsonl")
        MeasurementDatabase(path).append(make_record(0, 0))
        db = MeasurementDatabase(path)
        db.append(make_record(0, 1))
        assert len(MeasurementDatabase(path)) == 2

    def test_corrupt_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(StorageError):
            MeasurementDatabase(str(path))

    def test_blank_lines_skipped(self, tmp_path):
        path = str(tmp_path / "gaps.jsonl")
        db = MeasurementDatabase(path)
        db.append(make_record(0, 0))
        with open(path, "a") as handle:
            handle.write("\n\n")
        db.append(make_record(0, 1))
        assert len(MeasurementDatabase(path)) == 2


class TestStreamingDatabase:
    def test_stream_mode_requires_path(self):
        with pytest.raises(StorageError, match="path"):
            MeasurementDatabase(mode="stream")

    def test_unknown_mode_rejected(self, tmp_path):
        with pytest.raises(StorageError, match="mode"):
            MeasurementDatabase(str(tmp_path / "db.jsonl"), mode="turbo")

    def test_append_and_stream_back(self, tmp_path):
        path = str(tmp_path / "db.jsonl")
        db = MeasurementDatabase(path, mode="stream")
        records = [make_record(0, i) for i in range(4)]
        for record in records:
            db.append(record)
        assert len(db) == 4
        assert list(db.iter_records()) == records

    def test_nothing_held_in_memory(self, tmp_path):
        db = MeasurementDatabase(str(tmp_path / "db.jsonl"), mode="stream")
        db.extend([make_record(0, i) for i in range(10)])
        assert db._records == []

    def test_reopen_counts_existing_records(self, tmp_path):
        path = str(tmp_path / "db.jsonl")
        MeasurementDatabase(path, mode="stream").extend(
            [make_record(0, i) for i in range(3)]
        )
        reopened = MeasurementDatabase(path, mode="stream")
        assert len(reopened) == 3
        reopened.append(make_record(0, 3))
        assert len(reopened) == 4

    def test_for_board_and_first_stream_from_disk(self, tmp_path):
        db = MeasurementDatabase(str(tmp_path / "db.jsonl"), mode="stream")
        db.extend([make_record(0, 0), make_record(1, 0), make_record(0, 1)])
        assert [r.sequence for r in db.for_board(0)] == [0, 1]
        assert db.board_ids() == [0, 1]
        assert db.first_for_board(1).board_id == 1

    def test_stream_file_bytes_identical_to_memory_mode(self, tmp_path):
        """The line format is pinned: both modes write identical files."""
        records = [make_record(b, s) for b in range(2) for s in range(3)]
        memory_path = tmp_path / "memory.jsonl"
        stream_path = tmp_path / "stream.jsonl"
        MeasurementDatabase(str(memory_path)).extend(records)
        MeasurementDatabase(str(stream_path), mode="stream").extend(records)
        assert memory_path.read_bytes() == stream_path.read_bytes()

    def test_mode_property(self, tmp_path):
        assert MeasurementDatabase().mode == "memory"
        db = MeasurementDatabase(str(tmp_path / "db.jsonl"), mode="stream")
        assert db.mode == "stream"
