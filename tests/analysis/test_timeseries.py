"""Tests for time-series extraction."""

import numpy as np
import pytest

from repro.analysis.campaign import LongTermCampaign
from repro.analysis.timeseries import QualityTimeSeries
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def series() -> QualityTimeSeries:
    result = LongTermCampaign(
        device_count=4, months=5, measurements=200, random_state=8
    ).run()
    return QualityTimeSeries(result)


class TestMetricSeries:
    def test_per_board_matrix_shape(self, series):
        wchd = series.metric("WCHD")
        assert wchd.per_board.shape == (6, 4)
        assert not wchd.is_fleet_metric

    def test_fleet_metric_vector(self, series):
        puf = series.metric("PUF entropy")
        assert puf.per_board.shape == (6,)
        assert puf.is_fleet_metric

    def test_bchd_has_pair_columns(self, series):
        bchd = series.metric("BCHD")
        assert bchd.per_board.shape == (6, 6)  # C(4,2) pairs

    def test_mean_over_boards(self, series):
        wchd = series.metric("WCHD")
        np.testing.assert_allclose(wchd.mean, wchd.per_board.mean(axis=1))

    def test_board_series_lookup(self, series):
        wchd = series.metric("WCHD")
        line = wchd.board_series(wchd.board_ids[0])
        assert line.shape == (6,)

    def test_board_series_on_fleet_metric_rejected(self, series):
        with pytest.raises(ConfigurationError):
            series.metric("PUF entropy").board_series(0)

    def test_unknown_board_rejected(self, series):
        with pytest.raises(ConfigurationError):
            series.metric("WCHD").board_series(42)

    def test_start_end_values(self, series):
        wchd = series.metric("WCHD")
        np.testing.assert_array_equal(wchd.start_values, wchd.per_board[0])
        np.testing.assert_array_equal(wchd.end_values, wchd.per_board[-1])

    def test_unknown_metric_rejected(self, series):
        with pytest.raises(ConfigurationError):
            series.metric("Bogus")

    def test_all_metrics_complete(self, series):
        names = {metric.name for metric in series.all_metrics()}
        assert names == {
            "WCHD", "HW", "Ratio of Stable Cells", "Noise entropy",
            "BCHD", "PUF entropy",
        }
