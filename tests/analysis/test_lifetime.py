"""Tests for device-lifetime projection."""

import numpy as np
import pytest

from repro.analysis.lifetime import LifetimeProjection
from repro.analysis.trends import fit_power_law_trend
from repro.errors import ConfigurationError
from repro.keygen.ecc import (
    ConcatenatedCode,
    ExtendedGolayCode,
    HammingCode,
    RepetitionCode,
)


@pytest.fixture(scope="module")
def paper_like_trend():
    months = np.arange(25, dtype=float)
    wchd = 0.0249 + 0.00135 * months**0.35  # ends near 2.97 %
    return fit_power_law_trend(months, wchd)


@pytest.fixture
def strong_code():
    return ConcatenatedCode(ExtendedGolayCode(), RepetitionCode(5))


class TestProjection:
    def test_error_rate_grows_with_age(self, paper_like_trend, strong_code):
        projection = LifetimeProjection(paper_like_trend, strong_code)
        assert projection.bit_error_rate_at(24.0) > projection.bit_error_rate_at(0.0)

    def test_worst_case_factor_applied(self, paper_like_trend, strong_code):
        nominal = LifetimeProjection(
            paper_like_trend, strong_code, worst_case_factor=1.0
        )
        margined = LifetimeProjection(
            paper_like_trend, strong_code, worst_case_factor=1.5
        )
        assert margined.bit_error_rate_at(12.0) == pytest.approx(
            1.5 * nominal.bit_error_rate_at(12.0)
        )

    def test_error_rate_clamped_at_half(self, strong_code):
        months = np.arange(25, dtype=float)
        runaway = fit_power_law_trend(months, 0.2 + 0.05 * months**0.9)
        projection = LifetimeProjection(runaway, strong_code, worst_case_factor=2.0)
        assert projection.bit_error_rate_at(24.0) == 0.5

    def test_strong_code_survives_decades(self, paper_like_trend, strong_code):
        """The paper's conclusion, quantified: with a production code
        the measured aging never threatens a 1e-6 failure budget."""
        projection = LifetimeProjection(paper_like_trend, strong_code, secret_bits=128)
        assert projection.failure_probability_at(120.0) < 1e-6
        assert projection.months_until(1e-6) == float("inf")

    def test_weak_code_fails_early(self, paper_like_trend):
        projection = LifetimeProjection(
            paper_like_trend, HammingCode(3), secret_bits=128
        )
        assert projection.months_until(1e-6) < 1.0

    def test_project_trajectory(self, paper_like_trend, strong_code):
        projection = LifetimeProjection(paper_like_trend, strong_code)
        points = projection.project(np.array([0.0, 12.0, 24.0]))
        assert [point.month for point in points] == [0.0, 12.0, 24.0]
        failures = [point.key_failure_probability for point in points]
        assert failures == sorted(failures)

    def test_from_campaign_series(self, strong_code):
        months = np.arange(25, dtype=float)
        wchd = 0.0249 + 0.001 * months**0.4
        projection = LifetimeProjection.from_campaign_series(
            months, wchd, strong_code
        )
        assert projection.bit_error_rate_at(0.0) == pytest.approx(
            1.2 * 0.0249, rel=0.05
        )


class TestValidation:
    def test_negative_month_rejected(self, paper_like_trend, strong_code):
        projection = LifetimeProjection(paper_like_trend, strong_code)
        with pytest.raises(ConfigurationError):
            projection.bit_error_rate_at(-1.0)

    def test_bad_budget_rejected(self, paper_like_trend, strong_code):
        projection = LifetimeProjection(paper_like_trend, strong_code)
        with pytest.raises(ConfigurationError):
            projection.months_until(0.0)

    def test_bad_factor_rejected(self, paper_like_trend, strong_code):
        with pytest.raises(ConfigurationError):
            LifetimeProjection(paper_like_trend, strong_code, worst_case_factor=0.5)
