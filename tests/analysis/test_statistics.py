"""Tests for campaign statistical inference."""

import numpy as np
import pytest

from repro.analysis.campaign import LongTermCampaign
from repro.analysis.statistics import (
    CampaignInference,
    bootstrap_mean_ci,
    paired_change_test,
)
from repro.errors import ConfigurationError


class TestBootstrapCI:
    def test_interval_contains_mean(self, rng):
        values = rng.normal(0.025, 0.001, size=16)
        interval = bootstrap_mean_ci(values, random_state=1)
        assert interval.lower <= interval.mean <= interval.upper

    def test_coverage_on_synthetic_data(self):
        """~95 % of 95 % intervals cover the true mean."""
        covered = 0
        trials = 200
        master = np.random.default_rng(7)
        for trial in range(trials):
            values = master.normal(0.5, 0.1, size=16)
            interval = bootstrap_mean_ci(
                values, resamples=500, random_state=int(master.integers(1 << 30))
            )
            covered += interval.contains(0.5)
        assert 0.85 <= covered / trials <= 1.0

    def test_more_devices_tighter_interval(self, rng):
        small = bootstrap_mean_ci(rng.normal(0.5, 0.1, 4), random_state=2)
        large = bootstrap_mean_ci(rng.normal(0.5, 0.1, 64), random_state=3)
        assert large.halfwidth < small.halfwidth

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bootstrap_mean_ci(np.array([1.0]))
        with pytest.raises(ConfigurationError):
            bootstrap_mean_ci(np.array([1.0, 2.0]), confidence=1.5)
        with pytest.raises(ConfigurationError):
            bootstrap_mean_ci(np.array([1.0, 2.0]), resamples=10)


class TestPairedChangeTest:
    def test_clear_change_detected(self, rng):
        start = rng.normal(0.025, 0.001, size=16)
        end = start + 0.005 + rng.normal(0.0, 0.0005, size=16)
        test = paired_change_test(start, end)
        assert test.significant()
        assert test.mean_change == pytest.approx(0.005, abs=0.001)

    def test_no_change_not_detected(self, rng):
        start = rng.normal(0.627, 0.01, size=16)
        end = start + rng.normal(0.0, 0.001, size=16)
        test = paired_change_test(start, end)
        assert not test.significant(alpha=0.001)

    def test_constant_shift_degenerate_case(self):
        start = np.full(8, 0.5)
        test = paired_change_test(start, start + 0.01)
        assert test.p_value == 0.0
        test_null = paired_change_test(start, start)
        assert test_null.p_value == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            paired_change_test(np.ones(2), np.ones(2))
        with pytest.raises(ConfigurationError):
            paired_change_test(np.ones(4), np.ones(5))


class TestCampaignInference:
    @pytest.fixture(scope="class")
    def inference(self):
        result = LongTermCampaign(
            device_count=8, months=12, measurements=500, random_state=31
        ).run()
        return CampaignInference(result)

    def test_wchd_change_is_significant(self, inference):
        """The paper's reliability conclusion survives a paired test."""
        test = inference.change_test("WCHD")
        assert test.mean_change > 0
        assert test.significant()

    def test_noise_entropy_change_is_significant(self, inference):
        test = inference.change_test("Noise entropy")
        assert test.mean_change > 0
        assert test.significant()

    def test_hw_change_not_significant_at_strict_level(self, inference):
        """The uniqueness conclusion: HW change is tiny; its mean shift
        must be an order of magnitude below WCHD's."""
        hw = abs(inference.change_test("HW").mean_change)
        wchd = abs(inference.change_test("WCHD").mean_change)
        assert hw < wchd / 5

    def test_intervals_ordered(self, inference):
        start = inference.start_interval("WCHD", random_state=4)
        end = inference.end_interval("WCHD", random_state=5)
        assert end.mean > start.mean

    def test_summary_and_render(self, inference):
        summary = inference.summary(random_state=6)
        assert set(summary) == set(CampaignInference.METRICS)
        text = inference.render(random_state=7)
        assert "WCHD" in text and "p(change)" in text
