"""Tests for trend fitting."""

import numpy as np
import pytest

from repro.analysis.trends import fit_power_law_trend, monthly_rates
from repro.errors import ConfigurationError


class TestMonthlyRates:
    def test_constant_series_gives_zero(self):
        np.testing.assert_allclose(monthly_rates(np.full(5, 0.5)), 0.0)

    def test_geometric_series_gives_constant_rate(self):
        series = 0.02 * 1.01 ** np.arange(6)
        np.testing.assert_allclose(monthly_rates(series), 0.01, rtol=1e-9)

    def test_nonpositive_values_rejected(self):
        with pytest.raises(ConfigurationError):
            monthly_rates(np.array([0.1, 0.0]))

    def test_short_series_rejected(self):
        with pytest.raises(ConfigurationError):
            monthly_rates(np.array([0.1]))


class TestPowerLawFit:
    def test_recovers_known_parameters(self):
        months = np.arange(25, dtype=float)
        truth = 0.0249 + 0.001 * months**0.35
        fit = fit_power_law_trend(months, truth)
        assert fit.y0 == pytest.approx(0.0249, abs=1e-4)
        assert fit.amplitude == pytest.approx(0.001, rel=0.05)
        assert fit.exponent == pytest.approx(0.35, abs=0.03)
        assert fit.residual_rms < 1e-6

    def test_predict_matches_fit(self):
        months = np.arange(25, dtype=float)
        values = 0.03 + 0.002 * months**0.5
        fit = fit_power_law_trend(months, values)
        np.testing.assert_allclose(fit.predict(months), values, atol=1e-5)

    def test_rate_ratio_exceeds_one_for_saturating_trend(self):
        months = np.arange(25, dtype=float)
        values = 0.0249 + 0.001 * months**0.35
        fit = fit_power_law_trend(months, values)
        assert fit.rate_ratio(1.0, 12.0) > 1.0

    def test_slope_decreases_with_age(self):
        months = np.arange(25, dtype=float)
        values = 0.0249 + 0.001 * months**0.35
        fit = fit_power_law_trend(months, values)
        assert fit.slope(1.0) > fit.slope(20.0)

    def test_slope_at_zero_rejected(self):
        months = np.arange(10, dtype=float)
        fit = fit_power_law_trend(months, 0.1 + 0.01 * months**0.4)
        with pytest.raises(ConfigurationError):
            fit.slope(0.0)

    def test_months_must_start_at_zero(self):
        with pytest.raises(ConfigurationError):
            fit_power_law_trend(np.arange(1, 10, dtype=float), np.ones(9))

    def test_too_few_points_rejected(self):
        with pytest.raises(ConfigurationError):
            fit_power_law_trend(np.array([0.0, 1.0]), np.array([1.0, 2.0]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            fit_power_law_trend(np.arange(5, dtype=float), np.ones(4))
