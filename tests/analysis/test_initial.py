"""Tests for the initial quality evaluation (Fig. 4 / Fig. 5)."""

import numpy as np
import pytest

from repro.analysis.initial import InitialQualityEvaluation, startup_pattern_image
from repro.errors import ConfigurationError
from repro.rng import SeedHierarchy
from repro.sram.chip import SRAMChip


class TestStartupPatternImage:
    def test_shape(self):
        image = startup_pattern_image(np.zeros(8192, dtype=np.uint8), width=128)
        assert image.shape == (64, 128)

    def test_values_preserved(self):
        bits = np.arange(16) % 2
        image = startup_pattern_image(bits.astype(np.uint8), width=4)
        np.testing.assert_array_equal(image.ravel(), bits)

    def test_non_tiling_width_rejected(self):
        with pytest.raises(ConfigurationError):
            startup_pattern_image(np.zeros(10, dtype=np.uint8), width=3)

    def test_2d_input_rejected(self):
        with pytest.raises(ConfigurationError):
            startup_pattern_image(np.zeros((2, 4), dtype=np.uint8))


class TestInitialEvaluation:
    @pytest.fixture(scope="class")
    def evaluation(self, request):
        seeds = SeedHierarchy(55)
        profile_chips = [SRAMChip(i, random_state=seeds) for i in range(4)]
        return InitialQualityEvaluation.measure(profile_chips, measurements=60)

    def test_sample_counts(self, evaluation):
        assert evaluation.board_count == 4
        assert evaluation.wchd_samples.size == 4 * 59
        assert evaluation.bchd_samples.size == 6
        assert evaluation.fhw_samples.size == 4 * 60

    def test_wchd_below_fig5_band(self, evaluation):
        """Fig. 5: within-class HD mass stays below ~3 %."""
        assert evaluation.wchd_samples.mean() < 0.04

    def test_bchd_in_fig5_band(self, evaluation):
        assert np.all(evaluation.bchd_samples > 0.35)
        assert np.all(evaluation.bchd_samples < 0.55)

    def test_fhw_in_fig5_band(self, evaluation):
        assert np.all(evaluation.fhw_samples > 0.55)
        assert np.all(evaluation.fhw_samples < 0.72)

    def test_histograms_well_separated(self, evaluation):
        """The Fig. 5 shape: WCHD, BCHD and FHW occupy distinct bands."""
        wchd = evaluation.wchd_histogram(bins=50)
        bchd = evaluation.bchd_histogram(bins=50)
        fhw = evaluation.fhw_histogram(bins=50)
        assert wchd.mode_center() < 0.1
        assert 0.4 < bchd.mode_center() < 0.5
        assert 0.55 < fhw.mode_center() < 0.72

    def test_single_chip_rejected(self):
        with pytest.raises(ConfigurationError):
            InitialQualityEvaluation.measure([SRAMChip(0, random_state=1)])
