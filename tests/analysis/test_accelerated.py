"""Tests for the accelerated-aging study."""

import pytest

from repro.analysis.accelerated import AcceleratedAgingStudy
from repro.errors import ConfigurationError
from repro.sram.profiles import TESTCHIP_65NM


@pytest.fixture(scope="module")
def study_result():
    study = AcceleratedAgingStudy(
        device_count=4, measurements=400, random_state=6
    )
    return study.run(equivalent_months=24, checkpoints=5)


class TestAcceleratedStudy:
    def test_initial_wchd_matches_host14(self, study_result):
        """HOST 2014 baseline starts around 5.3 % WCHD."""
        assert study_result.wchd_mean[0] == pytest.approx(0.053, abs=0.006)

    def test_final_wchd_matches_host14(self, study_result):
        assert study_result.wchd_mean[-1] == pytest.approx(0.072, abs=0.008)

    def test_monthly_rate_near_published(self, study_result):
        """The paper quotes +1.28 %/month for accelerated aging."""
        assert study_result.monthly_rate == pytest.approx(0.0128, abs=0.003)

    def test_wchd_monotone_growth(self, study_result):
        means = study_result.wchd_mean
        assert all(later >= earlier - 0.002 for earlier, later in
                   zip(means[:-1], means[1:]))

    def test_stress_time_much_shorter_than_field_time(self, study_result):
        """85C/1.44V compresses two years into a short oven run."""
        field_hours = 24 * 730.5
        assert study_result.stress_hours_total < field_hours / 50

    def test_acceleration_factor_substantial(self, study_result):
        """85C + 20% overvoltage gives tens of times faster drift."""
        assert study_result.acceleration_factor > 10.0


class TestValidation:
    def test_understress_voltage_rejected(self):
        with pytest.raises(ConfigurationError):
            AcceleratedAgingStudy(stress_voltage_v=0.5 * TESTCHIP_65NM.supply_v)

    def test_bad_checkpoints_rejected(self):
        study = AcceleratedAgingStudy(device_count=2, measurements=100)
        with pytest.raises(ConfigurationError):
            study.run(equivalent_months=6, checkpoints=1)

    def test_bad_duration_rejected(self):
        study = AcceleratedAgingStudy(device_count=2, measurements=100)
        with pytest.raises(ConfigurationError):
            study.run(equivalent_months=0)
