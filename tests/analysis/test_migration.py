"""Tests for the cell-migration study (paper Section IV-D)."""

import numpy as np
import pytest

from repro.analysis.migration import (
    CellCategory,
    CellMigrationStudy,
    classify_cells,
)
from repro.errors import ConfigurationError


class TestClassifyCells:
    def test_categories(self):
        probs = np.array([0.0, 1.0, 0.95, 0.05, 0.5, 0.35])
        categories = classify_cells(probs, measurements=1000)
        assert categories[0] == CellCategory.FULLY_SKEWED
        assert categories[1] == CellCategory.FULLY_SKEWED
        assert categories[2] == CellCategory.PARTIALLY_SKEWED
        assert categories[3] == CellCategory.PARTIALLY_SKEWED
        assert categories[4] == CellCategory.BALANCED
        assert categories[5] == CellCategory.BALANCED

    def test_fully_skewed_threshold_scales_with_measurements(self):
        """One observed flip disqualifies a cell from 'fully skewed'."""
        one_flip_in_1000 = np.array([0.999])
        assert classify_cells(one_flip_in_1000, 1000)[0] == (
            CellCategory.PARTIALLY_SKEWED
        )
        one_flip_in_100 = np.array([0.99])
        assert classify_cells(one_flip_in_100, 100)[0] == (
            CellCategory.PARTIALLY_SKEWED
        )
        no_flips = np.array([1.0])
        assert classify_cells(no_flips, 100)[0] == CellCategory.FULLY_SKEWED

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            classify_cells(np.array([1.5]), 100)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            classify_cells(np.array([]), 100)


class TestMigrationStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return CellMigrationStudy(measurements=1000, random_state=12).run(
            months=24, snapshot_every=6
        )

    def test_snapshot_months(self, result):
        np.testing.assert_array_equal(result.months, [0, 6, 12, 18, 24])

    def test_populations_sum_to_one(self, result):
        np.testing.assert_allclose(result.populations.sum(axis=1), 1.0)

    def test_initial_populations_match_paper(self, result):
        """~85.9 % of cells are fully skewed at the start of the test."""
        fully = result.population(CellCategory.FULLY_SKEWED)
        assert fully[0] == pytest.approx(0.859, abs=0.02)

    def test_fully_skewed_population_shrinks(self, result):
        """The paper's IV-D mechanism: NBTI converts fully-skewed cells
        into partially-skewed ones."""
        fully = result.population(CellCategory.FULLY_SKEWED)
        assert fully[-1] < fully[0]
        assert result.net_destabilisation() > 0.0

    def test_partially_skewed_population_grows(self, result):
        partially = result.population(CellCategory.PARTIALLY_SKEWED)
        assert partially[-1] > partially[0]

    def test_transitions_are_stochastic_matrices(self, result):
        np.testing.assert_allclose(result.transitions.sum(axis=2), 1.0)
        assert result.transitions.min() >= 0.0

    def test_fully_to_partial_flux_exceeds_reverse(self, result):
        """Net migration goes from fully-skewed toward partially-skewed
        (individual cells can wobble back, but not in aggregate)."""
        fully_idx = int(CellCategory.FULLY_SKEWED)
        partial_idx = int(CellCategory.PARTIALLY_SKEWED)
        fully_pop = result.population(CellCategory.FULLY_SKEWED)[:-1]
        partial_pop = result.population(CellCategory.PARTIALLY_SKEWED)[:-1]
        outflow = (result.transitions[:, fully_idx, partial_idx] * fully_pop).sum()
        inflow = (result.transitions[:, partial_idx, fully_idx] * partial_pop).sum()
        assert outflow > inflow

    def test_validation(self):
        study = CellMigrationStudy(measurements=100)
        with pytest.raises(ConfigurationError):
            study.run(months=0)
        with pytest.raises(ConfigurationError):
            study.run(months=6, snapshot_every=0)
        with pytest.raises(ConfigurationError):
            CellMigrationStudy(measurements=1)
