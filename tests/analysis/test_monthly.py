"""Tests for the monthly evaluation protocol."""

import numpy as np
import pytest

from repro.analysis.monthly import evaluate_month
from repro.errors import ConfigurationError
from repro.rng import SeedHierarchy
from repro.sram.chip import SRAMChip


@pytest.fixture
def fleet(small_profile):
    seeds = SeedHierarchy(77)
    return [SRAMChip(i, small_profile, random_state=seeds) for i in range(4)]


@pytest.fixture
def references(fleet):
    return {chip.chip_id: chip.read_startup() for chip in fleet}


class TestEvaluateMonth:
    def test_snapshot_shape(self, fleet, references):
        snap = evaluate_month(fleet, references, month=0, measurements=100)
        assert snap.month == 0
        assert snap.board_ids == [0, 1, 2, 3]
        assert snap.wchd.shape == (4,)
        assert snap.bchd_pairs.shape == (6,)  # C(4,2)

    def test_metrics_in_plausible_ranges(self, fleet, references):
        snap = evaluate_month(fleet, references, month=0, measurements=200)
        assert np.all(snap.wchd < 0.10)
        assert np.all(snap.fhw > 0.5)
        assert np.all((snap.stable_ratio > 0.5) & (snap.stable_ratio <= 1.0))
        assert np.all(snap.noise_entropy > 0.0)
        assert 0.3 < snap.bchd_mean < 0.6

    def test_bchd_min_is_minimum(self, fleet, references):
        snap = evaluate_month(fleet, references, month=0, measurements=100)
        assert snap.bchd_min == pytest.approx(snap.bchd_pairs.min())

    def test_measurement_fidelity_agrees(self, fleet, references):
        stat = evaluate_month(fleet, references, 0, measurements=300, statistical=True)
        meas = evaluate_month(fleet, references, 0, measurements=300, statistical=False)
        np.testing.assert_allclose(stat.fhw, meas.fhw, atol=0.03)
        np.testing.assert_allclose(stat.wchd, meas.wchd, atol=0.02)

    def test_missing_reference_rejected(self, fleet):
        with pytest.raises(ConfigurationError, match="reference"):
            evaluate_month(fleet, {}, month=0, measurements=10)

    def test_empty_fleet_rejected(self, references):
        with pytest.raises(ConfigurationError):
            evaluate_month([], references, month=0)

    def test_too_few_measurements_rejected(self, fleet, references):
        with pytest.raises(ConfigurationError):
            evaluate_month(fleet, references, month=0, measurements=1)

    def test_single_chip_has_no_uniqueness_metrics(self, small_profile):
        chip = SRAMChip(0, small_profile, random_state=1)
        references = {0: chip.read_startup()}
        snap = evaluate_month([chip], references, month=0, measurements=50)
        assert snap.bchd_pairs.size == 0
        assert np.isnan(snap.puf_entropy)
