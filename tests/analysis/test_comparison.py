"""Tests for the cross-source comparison study."""

import pytest

from repro.analysis.comparison import SourceComparisonStudy
from repro.errors import ConfigurationError
from repro.sram.profiles import ATMEGA32U4, BUSKEEPER_PUF, DFF_PUF


@pytest.fixture(scope="module")
def report():
    study = SourceComparisonStudy(
        devices_per_source=3, measurements=500, random_state=19
    )
    return study.run(months=24.0)


class TestComparison:
    def test_all_sources_reported(self, report):
        assert set(report) == {"ATmega32u4", "dff-puf", "buskeeper-puf"}

    def test_two_snapshots_per_source(self, report):
        for snapshots in report.values():
            assert [snap.month for snap in snapshots] == [0.0, 24.0]

    def test_bias_ordering(self, report):
        """DFF most biased, buskeeper near-unbiased, SRAM in between."""
        start = {name: snaps[0] for name, snaps in report.items()}
        assert start["dff-puf"].fhw > start["ATmega32u4"].fhw
        assert abs(start["buskeeper-puf"].fhw - 0.5) < abs(
            start["ATmega32u4"].fhw - 0.5
        )

    def test_sram_is_most_reliable(self, report):
        """The paper's device has the lowest initial WCHD of the trio."""
        start = {name: snaps[0] for name, snaps in report.items()}
        assert start["ATmega32u4"].wchd < start["dff-puf"].wchd
        assert start["ATmega32u4"].wchd < start["buskeeper-puf"].wchd

    def test_buskeeper_richest_noise_source(self, report):
        start = {name: snaps[0] for name, snaps in report.items()}
        assert start["buskeeper-puf"].noise_entropy > start["ATmega32u4"].noise_entropy

    def test_every_source_ages_the_same_direction(self, report):
        for snapshots in report.values():
            start, end = snapshots
            assert end.wchd > start.wchd
            assert end.noise_entropy > start.noise_entropy
            assert end.stable_ratio < start.stable_ratio

    def test_render(self, report):
        text = SourceComparisonStudy.render(report)
        assert "dff-puf" in text and "WCHD" in text

    def test_zero_months_gives_single_snapshot(self):
        study = SourceComparisonStudy(
            sources=[ATMEGA32U4], devices_per_source=2, measurements=100,
            random_state=20,
        )
        report = study.run(months=0.0)
        assert len(report["ATmega32u4"]) == 1


class TestValidation:
    def test_empty_sources_rejected(self):
        with pytest.raises(ConfigurationError):
            SourceComparisonStudy(sources=[])

    def test_duplicate_sources_rejected(self):
        with pytest.raises(ConfigurationError):
            SourceComparisonStudy(sources=[DFF_PUF, DFF_PUF])

    def test_negative_months_rejected(self):
        study = SourceComparisonStudy(
            sources=[BUSKEEPER_PUF], devices_per_source=2, measurements=100
        )
        with pytest.raises(ConfigurationError):
            study.run(months=-1.0)
