"""Tests for environmental sensitivity studies."""

import numpy as np
import pytest

from repro.analysis.environment import EnvironmentStudy
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def study():
    return EnvironmentStudy(measurements=400, random_state=5)


class TestTemperatureSweep:
    def test_sweep_shape(self, study):
        points = study.temperature_sweep([278.15, 298.15, 348.15])
        assert [point.condition for point in points] == [278.15, 298.15, 348.15]

    def test_hot_corner_is_worse(self, study):
        points = study.temperature_sweep([298.15, 398.15])
        assert points[1].measured_wchd > points[0].measured_wchd
        assert points[1].predicted_wchd > points[0].predicted_wchd

    def test_model_matches_measurement(self, study):
        for point in study.temperature_sweep([298.15, 358.15]):
            assert point.measured_wchd == pytest.approx(
                point.predicted_wchd, abs=0.006
            )

    def test_empty_sweep_rejected(self, study):
        with pytest.raises(ConfigurationError):
            study.temperature_sweep([])


class TestRampSweep:
    def test_slower_ramp_is_quieter(self, study):
        """The [17] mechanism: longer ramp times reduce WCHD."""
        points = study.ramp_sweep([10.0, 50.0, 250.0])
        wchd = [point.measured_wchd for point in points]
        assert wchd[0] > wchd[2]

    def test_nominal_ramp_matches_nominal_wchd(self, study):
        point = study.ramp_sweep([50.0])[0]
        assert point.measured_wchd == pytest.approx(0.0249, abs=0.006)

    def test_model_matches_measurement(self, study):
        for point in study.ramp_sweep([20.0, 100.0]):
            assert point.measured_wchd == pytest.approx(
                point.predicted_wchd, abs=0.006
            )

    def test_empty_sweep_rejected(self, study):
        with pytest.raises(ConfigurationError):
            study.ramp_sweep([])


class TestValidation:
    def test_bad_measurements_rejected(self):
        with pytest.raises(ConfigurationError):
            EnvironmentStudy(measurements=1)
