"""Tests for the analytic reliability model."""

import numpy as np
import pytest

from repro.analysis.reliability import (
    CellReliabilityModel,
    block_failure_probability,
    key_failure_probability,
)
from repro.errors import ConfigurationError
from repro.keygen.ecc import (
    ConcatenatedCode,
    ExtendedGolayCode,
    HammingCode,
    RepetitionCode,
)
from repro.sram.profiles import ATMEGA32U4, TESTCHIP_65NM


@pytest.fixture(scope="module")
def model() -> CellReliabilityModel:
    return CellReliabilityModel(ATMEGA32U4)


class TestCellModel:
    def test_predicts_paper_bias(self, model):
        assert model.expected_bias() == pytest.approx(0.627, abs=0.001)

    def test_predicts_paper_wchd(self, model):
        assert model.expected_error_rate() == pytest.approx(0.0249, abs=0.0003)

    def test_predicts_paper_stable_ratio(self, model):
        assert model.expected_stable_ratio(1000) == pytest.approx(0.859, abs=0.005)

    def test_predicts_paper_noise_entropy(self, model):
        assert model.expected_noise_entropy() == pytest.approx(0.0305, abs=0.001)

    def test_matches_monte_carlo(self, model, chip):
        """Analytic WCHD matches an empirical chip within sampling noise."""
        from repro.metrics.hamming import within_class_hd_from_counts

        reference = chip.read_startup()
        counts = chip.read_window_ones_counts(1000)
        empirical = within_class_hd_from_counts(counts, 1000, reference)
        assert empirical == pytest.approx(model.expected_error_rate(), abs=0.005)

    def test_65nm_profile(self):
        model = CellReliabilityModel(TESTCHIP_65NM)
        assert model.expected_bias() == pytest.approx(0.5, abs=0.001)
        assert model.expected_error_rate() == pytest.approx(0.053, abs=0.001)

    def test_hotter_measurement_is_noisier(self, model):
        cold = model.expected_error_rate(temperature_k=258.15)
        nominal = model.expected_error_rate()
        hot = model.expected_error_rate(temperature_k=358.15)
        assert cold < nominal < hot

    def test_cross_condition_exceeds_same_condition(self, model):
        same = model.expected_error_rate()
        cross = model.cross_condition_error_rate(measurement_temperature_k=358.15)
        assert cross > same * 0.99

    def test_error_rate_quantiles_monotone(self, model):
        q50 = model.error_rate_quantile(0.5)
        q99 = model.error_rate_quantile(0.99)
        assert 0.0 <= q50 < q99 <= 0.5

    def test_temperature_sensitivity_vector(self, model):
        temps = np.array([258.15, 298.15, 358.15])
        rates = model.temperature_sensitivity(temps)
        assert rates.shape == (3,)
        assert rates[0] < rates[1] < rates[2]

    def test_quadrature_resolution_validated(self):
        with pytest.raises(ConfigurationError):
            CellReliabilityModel(ATMEGA32U4, quadrature_points=10)


class TestBlockFailure:
    def test_zero_error_rate_never_fails(self):
        assert block_failure_probability(ExtendedGolayCode(), 0.0) == 0.0

    def test_certain_errors_always_fail(self):
        assert block_failure_probability(ExtendedGolayCode(), 1.0) == pytest.approx(1.0)

    def test_binomial_tail_formula(self):
        """Repetition-5 (t=2) at p: P[Bin(5, p) >= 3], checked by hand."""
        from scipy import stats

        p = 0.1
        expected = float(stats.binom.sf(2, 5, p))
        assert block_failure_probability(RepetitionCode(5), p) == pytest.approx(expected)

    def test_concatenated_uses_two_stage_formula(self):
        """The exact concatenation model beats the naive radius bound
        by orders of magnitude at PUF-like error rates."""
        code = ConcatenatedCode(ExtendedGolayCode(), RepetitionCode(5))
        from scipy import stats

        naive = float(stats.binom.sf(code.correctable_errors, 120, 0.03))
        exact = block_failure_probability(code, 0.03)
        assert exact < naive / 100.0

    def test_stronger_code_fails_less(self):
        weak = block_failure_probability(HammingCode(3), 0.03)
        strong = block_failure_probability(
            ConcatenatedCode(ExtendedGolayCode(), RepetitionCode(5)), 0.03
        )
        assert strong < weak

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            block_failure_probability(ExtendedGolayCode(), 1.5)


class TestKeyFailure:
    def test_more_blocks_fail_more(self):
        code = ExtendedGolayCode()
        small = key_failure_probability(code, 0.03, 12)
        large = key_failure_probability(code, 0.03, 120)
        assert large > small

    def test_production_code_at_paper_error_rates(self):
        """At the paper's worst-case end-of-life WCHD (3.25 %), the
        default production code keeps a 128-bit key below 1e-8."""
        code = ConcatenatedCode(ExtendedGolayCode(), RepetitionCode(5))
        assert key_failure_probability(code, 0.0325, 128) < 1e-8

    def test_invalid_secret_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            key_failure_probability(ExtendedGolayCode(), 0.03, 0)
