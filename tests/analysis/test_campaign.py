"""Tests for the long-term campaign driver."""

import numpy as np
import pytest

from repro.analysis.campaign import CampaignResult, LongTermCampaign
from repro.errors import ConfigurationError
from repro.sram.profiles import ATMEGA32U4


@pytest.fixture(scope="module")
def result() -> CampaignResult:
    campaign = LongTermCampaign(
        device_count=4, months=6, measurements=300, random_state=5
    )
    return campaign.run()


class TestCampaignRun:
    def test_snapshot_count(self, result):
        assert len(result.snapshots) == 7  # months 0..6

    def test_month_indices(self, result):
        assert [snap.month for snap in result.snapshots] == list(range(7))

    def test_references_cover_fleet(self, result):
        assert sorted(result.references) == result.board_ids

    def test_start_end_accessors(self, result):
        assert result.start is result.snapshots[0]
        assert result.end is result.snapshots[-1]

    def test_wchd_grows_with_age(self, result):
        assert result.end.wchd.mean() > result.start.wchd.mean()

    def test_noise_entropy_grows_with_age(self, result):
        assert result.end.noise_entropy.mean() > result.start.noise_entropy.mean()

    def test_stability_falls_with_age(self, result):
        assert result.end.stable_ratio.mean() < result.start.stable_ratio.mean()

    def test_hamming_weight_roughly_constant(self, result):
        drift = abs(result.end.fhw.mean() - result.start.fhw.mean())
        assert drift < 0.01

    def test_bchd_roughly_constant(self, result):
        drift = abs(result.end.bchd_mean - result.start.bchd_mean)
        assert drift < 0.01


class TestDeterminism:
    def test_same_seed_same_result(self):
        def run():
            return LongTermCampaign(
                device_count=2, months=2, measurements=100, random_state=9
            ).run()

        a, b = run(), run()
        np.testing.assert_array_equal(a.end.wchd, b.end.wchd)
        np.testing.assert_array_equal(a.end.noise_entropy, b.end.noise_entropy)

    def test_different_seeds_differ(self):
        a = LongTermCampaign(device_count=2, months=1, measurements=100,
                             random_state=1).run()
        b = LongTermCampaign(device_count=2, months=1, measurements=100,
                             random_state=2).run()
        assert not np.array_equal(a.end.wchd, b.end.wchd)


class TestOptions:
    def test_external_fleet_injection(self, small_profile):
        from repro.sram.chip import SRAMChip

        chips = [SRAMChip(i, small_profile, random_state=4) for i in range(2)]
        campaign = LongTermCampaign(
            device_count=2, months=1, measurements=50, profile=small_profile
        )
        result = campaign.run(chips=chips)
        assert result.board_ids == [0, 1]

    def test_temperature_walk_runs(self):
        campaign = LongTermCampaign(
            device_count=2, months=2, measurements=100,
            temperature_walk_k=1.0, random_state=3,
        )
        result = campaign.run()
        assert len(result.snapshots) == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LongTermCampaign(device_count=0)
        with pytest.raises(ConfigurationError):
            LongTermCampaign(months=0)
        with pytest.raises(ConfigurationError):
            LongTermCampaign(measurements=1)
        with pytest.raises(ConfigurationError):
            LongTermCampaign(temperature_walk_k=-1.0)
        with pytest.raises(ConfigurationError):
            LongTermCampaign(aging_steps_per_month=0)

    def test_result_snapshot_count_validated(self):
        campaign = LongTermCampaign(device_count=2, months=2, measurements=50)
        result = campaign.run()
        with pytest.raises(ConfigurationError):
            CampaignResult(
                profile_name=ATMEGA32U4.name,
                months=5,
                measurements=50,
                board_ids=result.board_ids,
                references=result.references,
                snapshots=result.snapshots,
            )
