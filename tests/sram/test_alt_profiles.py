"""Tests for the alternative memory-PUF profiles (paper ref. [16])."""

import numpy as np
import pytest

from repro.metrics.hamming import fractional_hamming_weight
from repro.rng import SeedHierarchy
from repro.sram.chip import SRAMChip
from repro.sram.profiles import ATMEGA32U4, BUSKEEPER_PUF, DFF_PUF


def fleet_bias(profile, devices: int = 6) -> float:
    seeds = SeedHierarchy(123)
    values = []
    for index in range(devices):
        chip = SRAMChip(index, profile, random_state=seeds)
        values.append(fractional_hamming_weight(chip.read_startup()))
    return float(np.mean(values))


class TestDFFProfile:
    def test_strong_bias(self):
        assert fleet_bias(DFF_PUF) == pytest.approx(0.75, abs=0.03)

    def test_noisier_than_sram(self, seeds):
        from repro.metrics.hamming import within_class_hd_from_counts

        def wchd(profile):
            chip = SRAMChip(0, profile, random_state=seeds)
            reference = chip.read_startup()
            counts = chip.read_window_ones_counts(500)
            return within_class_hd_from_counts(counts, 500, reference)

        assert wchd(DFF_PUF) > wchd(ATMEGA32U4)

    def test_bias_at_debias_boundary(self):
        """DFF PUFs sit right at the paper's 25/75 boundary."""
        from repro.keygen.accounting import bias_within_boundary

        assert bias_within_boundary(0.75)


class TestBuskeeperProfile:
    def test_near_unbiased(self):
        assert fleet_bias(BUSKEEPER_PUF) == pytest.approx(0.52, abs=0.03)

    def test_higher_noise_entropy_than_sram(self, seeds):
        """Ref [16]'s selling point: buskeepers are a rich noise source."""
        from repro.metrics.entropy import noise_min_entropy_from_counts

        def entropy(profile):
            chip = SRAMChip(0, profile, random_state=seeds)
            counts = chip.read_window_ones_counts(1000)
            return noise_min_entropy_from_counts(counts, 1000)

        assert entropy(BUSKEEPER_PUF) > entropy(ATMEGA32U4)

    def test_keygen_works_on_buskeeper(self, seeds):
        from repro.keygen.keygen import SRAMKeyGenerator

        chip = SRAMChip(0, BUSKEEPER_PUF, random_state=seeds)
        generator = SRAMKeyGenerator(chip, key_bits=128, secret_bits=48)
        key, record = generator.enroll(random_state=1)
        assert generator.reconstruction_succeeds(record, key)
