"""Population layer: named-profile registry and deterministic mixtures."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.sram.population import (
    PopulationMember,
    PopulationSpec,
    load_population,
    single_profile_population,
)
from repro.sram.profiles import (
    ATMEGA32U4,
    REGISTRY,
    DeviceProfile,
    profile_by_name,
    register_profile,
)


class TestRegistry:
    def test_shipped_profiles_resolve(self):
        for name, profile in REGISTRY.items():
            assert profile_by_name(name) is profile

    def test_unknown_name_lists_known_profiles(self):
        with pytest.raises(ConfigurationError) as excinfo:
            profile_by_name("atmega")
        message = str(excinfo.value)
        assert "atmega" in message
        for name in REGISTRY:
            assert name in message

    def test_register_profile_idempotent_for_equal_values(self):
        register_profile(ATMEGA32U4)
        assert profile_by_name(ATMEGA32U4.name) is not None

    def test_register_profile_rejects_conflicting_redefinition(self):
        imposter = ATMEGA32U4.with_overrides(noise_sigma_v=0.1)
        with pytest.raises(ConfigurationError):
            register_profile(imposter)


def mixed_spec() -> PopulationSpec:
    return PopulationSpec(
        name="mix3",
        members=(
            PopulationMember(
                "ATmega32u4",
                weight=2.0,
                lots=2,
                skew_mean_spread_v=0.002,
                skew_sigma_spread=0.05,
            ),
            PopulationMember("dff-puf", noise_sigma_spread=0.1),
            PopulationMember(
                "65nm-testchip", lots=3, sram_bytes_choices=(4096, 8192)
            ),
        ),
    )


class TestPopulationSpec:
    def test_board_profile_is_pure_in_seed_and_board(self):
        spec = mixed_spec()
        for board in range(16):
            assert spec.profile_for_board(7, board) == spec.profile_for_board(
                7, board
            )

    def test_different_seeds_redraw_the_fleet(self):
        spec = mixed_spec()
        fleets = {
            tuple(p.name for p in spec.materialize(seed, range(32))[0])
            for seed in range(4)
        }
        assert len(fleets) > 1

    def test_draws_independent_of_materialization_order(self):
        spec = mixed_spec()
        full_table, full_index = spec.materialize(7, range(12))
        expanded = [full_table[i] for i in full_index]
        # Materializing any subset, in any order, yields the same
        # per-board profiles: draws are pure in (spec, seed, board).
        sub_table, sub_index = spec.materialize(7, [11, 3, 5])
        assert [sub_table[i] for i in sub_index] == [
            expanded[11], expanded[3], expanded[5]
        ]

    def test_lot_quantization_bounds_distinct_profiles(self):
        spec = mixed_spec()
        table, index = spec.materialize(3, range(200))
        assert len(table) <= sum(m.lots for m in spec.members)
        assert len(index) == 200
        assert set(index) == set(range(len(table)))

    def test_member_labels_use_base_names(self):
        spec = mixed_spec()
        labels = spec.member_labels(7, range(64))
        bases = {m.profile for m in spec.members}
        assert set(labels) <= bases
        table, index = spec.materialize(7, range(64))
        for board, label in enumerate(labels):
            assert table[index[board]].name.startswith(label)

    def test_lot_profiles_are_named_and_spread(self):
        spec = mixed_spec()
        table, _ = spec.materialize(7, range(300))
        atmega_lots = [p for p in table if p.name.startswith("ATmega32u4.lot")]
        assert atmega_lots, "expected at least one materialized ATmega lot"
        for lot in atmega_lots:
            assert lot.read_bits == ATMEGA32U4.read_bits
            assert lot.skew_sigma_v > 0
            assert lot.noise_sigma_v > 0

    def test_cell_count_choices_respected(self):
        spec = mixed_spec()
        table, _ = spec.materialize(7, range(500))
        testchip = [p for p in table if p.name.startswith("65nm-testchip")]
        assert testchip
        assert {p.sram_bytes for p in testchip} <= {4096, 8192}

    def test_doc_roundtrip_preserves_digest(self):
        spec = mixed_spec()
        clone = PopulationSpec.from_doc(spec.to_doc())
        assert clone == spec
        assert clone.digest() == spec.digest()
        assert clone.manifest_token == spec.manifest_token

    def test_manifest_token_commits_to_content(self):
        spec = mixed_spec()
        other = PopulationSpec(
            name="mix3", members=spec.members[:2]
        )
        assert spec.manifest_token != other.manifest_token
        assert spec.manifest_token.startswith("mix3:")

    def test_display_name(self):
        assert mixed_spec().display_name == "population:mix3"

    def test_load_population(self, tmp_path):
        path = tmp_path / "pop.json"
        path.write_text(json.dumps(mixed_spec().to_doc()))
        assert load_population(str(path)) == mixed_spec()

    def test_load_population_bad_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_population(str(path))

    def test_single_profile_population_is_degenerate(self):
        spec = single_profile_population(ATMEGA32U4)
        table, index = spec.materialize(5, range(8))
        assert table == (ATMEGA32U4,)
        assert index == (0,) * 8
        assert spec.temperature_k == ATMEGA32U4.temperature_k


class TestValidation:
    def test_unknown_member_profile(self):
        with pytest.raises(ConfigurationError, match="known profiles"):
            PopulationMember("nope")

    def test_negative_weight(self):
        with pytest.raises(ConfigurationError, match="weight"):
            PopulationMember("ATmega32u4", weight=0.0)

    def test_fractional_spread_cap(self):
        with pytest.raises(ConfigurationError, match="skew_sigma_spread"):
            PopulationMember("ATmega32u4", skew_sigma_spread=0.6)

    def test_sram_choice_below_read_bytes(self):
        with pytest.raises(ConfigurationError, match="read_bytes"):
            PopulationMember("ATmega32u4", sram_bytes_choices=(512,))

    def test_empty_members(self):
        with pytest.raises(ConfigurationError, match="at least one member"):
            PopulationSpec(members=())

    def test_member_doc_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown keys"):
            PopulationMember.from_doc({"profile": "ATmega32u4", "wieght": 2})

    def test_mixed_read_bytes_rejected(self):
        wide = DeviceProfile(
            name="wide-readout-test",
            technology="test",
            sram_bytes=4096,
            read_bytes=2048,
            supply_v=ATMEGA32U4.supply_v,
            temperature_k=ATMEGA32U4.temperature_k,
            skew_mean_v=ATMEGA32U4.skew_mean_v,
            skew_sigma_v=ATMEGA32U4.skew_sigma_v,
            chip_mean_sigma_v=ATMEGA32U4.chip_mean_sigma_v,
            noise_sigma_v=ATMEGA32U4.noise_sigma_v,
            bti_amplitude_v=ATMEGA32U4.bti_amplitude_v,
            bti_dispersion_v=ATMEGA32U4.bti_dispersion_v,
            bti_time_exponent=ATMEGA32U4.bti_time_exponent,
            power_duty=ATMEGA32U4.power_duty,
        )
        register_profile(wide)
        try:
            with pytest.raises(ConfigurationError, match="read_bytes"):
                PopulationSpec(
                    members=(
                        PopulationMember("ATmega32u4"),
                        PopulationMember("wide-readout-test"),
                    )
                )
        finally:
            REGISTRY.pop("wide-readout-test", None)
