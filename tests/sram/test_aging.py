"""Tests for the NBTI aging simulator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.physics.constants import SECONDS_PER_MONTH
from repro.sram.aging import AgingSimulator
from repro.sram.array import SRAMArray
from repro.sram.profiles import ATMEGA32U4


@pytest.fixture
def simulator() -> AgingSimulator:
    return AgingSimulator(ATMEGA32U4)


def fresh_array(seed: int = 7, cells: int = 8192) -> SRAMArray:
    return SRAMArray(ATMEGA32U4, cell_count=cells, random_state=seed)


class TestAccelerationFactor:
    def test_unity_at_nominal(self, simulator):
        assert simulator.acceleration_factor() == pytest.approx(1.0)

    def test_temperature_accelerates(self, simulator):
        assert simulator.acceleration_factor(temperature_k=358.15) > 5.0

    def test_voltage_accelerates(self, simulator):
        assert simulator.acceleration_factor(voltage_v=6.0) == pytest.approx(
            (6.0 / 5.0) ** 3, rel=1e-6
        )

    def test_continuous_power_accelerates_over_duty_cycle(self, simulator):
        factor = simulator.acceleration_factor(duty=1.0)
        assert factor == pytest.approx((1.0 / ATMEGA32U4.power_duty) ** 0.35, rel=1e-6)


class TestAgingEffects:
    def test_mean_absolute_skew_shrinks(self, simulator):
        array = fresh_array()
        before = np.abs(array.skew_v).mean()
        simulator.age_array_months(array, 24.0, steps=4)
        assert np.abs(array.skew_v).mean() < before

    def test_aging_preserves_bias_direction(self, simulator):
        array = fresh_array()
        simulator.age_array_months(array, 24.0, steps=4)
        probs = array.one_probabilities()
        assert 0.55 < probs.mean() < 0.72

    def test_stability_decreases(self, simulator):
        array = fresh_array()
        probs_before = array.one_probabilities()
        simulator.age_array_months(array, 24.0, steps=4)
        probs_after = array.one_probabilities()
        stable = lambda p: ((p < 1e-9) | (p > 1 - 1e-9)).mean()  # noqa: E731
        assert stable(probs_after) < stable(probs_before)

    def test_early_aging_faster_than_late(self, simulator):
        """The paper's IV-D observation: degradation decelerates."""
        array = fresh_array()
        skew_0 = array.skew_v.copy()
        simulator.age_array_months(array, 1.0)
        delta_early = np.abs(array.skew_v - skew_0).mean()
        simulator.age_array_months(array, 22.0, steps=22)
        skew_23 = array.skew_v.copy()
        simulator.age_array_months(array, 1.0)
        delta_late = np.abs(array.skew_v - skew_23).mean()
        assert delta_early > delta_late

    def test_age_advances_clock(self, simulator):
        array = fresh_array()
        simulator.age_array_months(array, 2.0)
        assert array.age_seconds == pytest.approx(2 * SECONDS_PER_MONTH)

    def test_zero_seconds_is_noop(self, simulator):
        array = fresh_array()
        before = array.skew_v.copy()
        simulator.age_array(array, 0.0)
        np.testing.assert_array_equal(array.skew_v, before)

    def test_accelerated_stress_advances_equivalent_age(self, simulator):
        array = fresh_array()
        simulator.age_array(array, 3600.0, temperature_k=358.15)
        assert array.age_seconds > 3600.0


class TestValidation:
    def test_negative_seconds_rejected(self, simulator):
        with pytest.raises(ConfigurationError):
            simulator.age_array(fresh_array(), -1.0)

    def test_zero_steps_rejected(self, simulator):
        with pytest.raises(ConfigurationError):
            simulator.age_array(fresh_array(), 100.0, steps=0)

    def test_negative_months_rejected(self, simulator):
        with pytest.raises(ConfigurationError):
            simulator.age_array_months(fresh_array(), -1.0)


class TestDeterminism:
    def test_same_seed_same_trajectory(self, simulator):
        a, b = fresh_array(3, 1024), fresh_array(3, 1024)
        simulator.age_array_months(a, 6.0, steps=6)
        simulator.age_array_months(b, 6.0, steps=6)
        np.testing.assert_array_equal(a.skew_v, b.skew_v)

    def test_step_granularity_small_effect(self, simulator):
        """The drift is self-limiting: coarse stepping stays accurate."""
        profile = ATMEGA32U4.with_overrides(bti_dispersion_v=0.0)
        sim = AgingSimulator(profile)
        coarse = SRAMArray(profile, cell_count=4096, random_state=9)
        fine = SRAMArray(profile, cell_count=4096, random_state=9)
        sim.age_array_months(coarse, 24.0, steps=2)
        sim.age_array_months(fine, 24.0, steps=96)
        np.testing.assert_allclose(coarse.skew_v, fine.skew_v, atol=5e-4)
