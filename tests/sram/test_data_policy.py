"""Tests for aging data policies, including the anti-aging countermeasure."""

import numpy as np
import pytest

from repro.sram.aging import AgingSimulator, DataPolicy
from repro.sram.array import SRAMArray
from repro.sram.profiles import ATMEGA32U4


@pytest.fixture
def simulator() -> AgingSimulator:
    return AgingSimulator(ATMEGA32U4)


def fresh_array(seed: int = 21) -> SRAMArray:
    return SRAMArray(ATMEGA32U4, cell_count=8192, random_state=seed)


def mean_abs_skew(array: SRAMArray) -> float:
    return float(np.abs(array.skew_v).mean())


class TestDataPolicies:
    def test_power_up_policy_degrades(self, simulator):
        array = fresh_array()
        before = mean_abs_skew(array)
        simulator.age_array_months(array, 24.0, steps=8)
        assert mean_abs_skew(array) < before

    def test_inverted_policy_reinforces(self, simulator):
        """The HOST 2014 anti-aging trick: storing the complement makes
        NBTI strengthen every cell's preference."""
        array = fresh_array()
        before = mean_abs_skew(array)
        simulator.age_array_months(
            array, 24.0, steps=8, data_policy=DataPolicy.INVERTED
        )
        assert mean_abs_skew(array) > before

    def test_anti_aging_improves_reliability(self, simulator):
        """WCHD against the day-0 reference *shrinks* under anti-aging."""
        from repro.metrics.hamming import within_class_hd_from_counts

        degraded = fresh_array(5)
        reinforced = SRAMArray(ATMEGA32U4, cell_count=8192, random_state=5)
        reference = degraded.power_up_once()
        reinforced.power_up_once()  # consume the same draw

        simulator.age_array_months(degraded, 24.0, steps=8)
        simulator.age_array_months(
            reinforced, 24.0, steps=8, data_policy=DataPolicy.INVERTED
        )
        wchd_degraded = within_class_hd_from_counts(
            degraded.sample_ones_counts(500), 500, reference
        )
        wchd_reinforced = within_class_hd_from_counts(
            reinforced.sample_ones_counts(500), 500, reference
        )
        assert wchd_reinforced < wchd_degraded

    def test_anti_aging_reduces_trng_entropy(self, simulator):
        """The countermeasure's cost: fewer unstable cells to harvest."""
        from repro.metrics.entropy import noise_min_entropy_from_counts

        reinforced = fresh_array(9)
        simulator.age_array_months(
            reinforced, 24.0, steps=8, data_policy=DataPolicy.INVERTED
        )
        baseline = fresh_array(9)
        entropy_fresh = noise_min_entropy_from_counts(
            baseline.sample_ones_counts(1000), 1000
        )
        entropy_reinforced = noise_min_entropy_from_counts(
            reinforced.sample_ones_counts(1000), 1000
        )
        assert entropy_reinforced < entropy_fresh

    def test_all_zero_policy_shifts_bias_up(self, simulator):
        """Constantly storing 0 stresses every P2: skews drift up, so
        the power-up bias toward 1 increases."""
        array = fresh_array(13)
        bias_before = float(array.one_probabilities().mean())
        simulator.age_array_months(
            array, 24.0, steps=8, data_policy=DataPolicy.ALL_ZERO
        )
        assert float(array.one_probabilities().mean()) > bias_before

    def test_all_one_policy_shifts_bias_down(self, simulator):
        array = fresh_array(17)
        bias_before = float(array.one_probabilities().mean())
        simulator.age_array_months(
            array, 24.0, steps=8, data_policy=DataPolicy.ALL_ONE
        )
        assert float(array.one_probabilities().mean()) < bias_before
