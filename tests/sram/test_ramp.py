"""Tests for the voltage ramp-up model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sram.ramp import VoltageRamp, read_startup_with_ramp


class TestVoltageRamp:
    def test_nominal_ramp_is_identity(self):
        assert VoltageRamp(50.0).noise_scale() == pytest.approx(1.0)

    def test_steeper_ramp_is_noisier(self):
        assert VoltageRamp(10.0).noise_scale() > 1.0

    def test_slower_ramp_is_quieter(self):
        assert VoltageRamp(200.0).noise_scale() < 1.0

    def test_power_law(self):
        ramp = VoltageRamp(12.5, nominal_ramp_time_us=50.0, exponent=0.5)
        assert ramp.noise_scale() == pytest.approx(2.0)

    def test_scale_clamped(self):
        assert VoltageRamp(1e-6).noise_scale() == VoltageRamp.MAX_SCALE
        assert VoltageRamp(1e9).noise_scale() == VoltageRamp.MIN_SCALE

    def test_equivalent_temperature(self):
        ramp = VoltageRamp(12.5, exponent=0.5)  # scale 2 -> T x4
        assert ramp.equivalent_temperature_k(300.0) == pytest.approx(1200.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            VoltageRamp(0.0)
        with pytest.raises(ConfigurationError):
            VoltageRamp(50.0, nominal_ramp_time_us=-1.0)
        with pytest.raises(ConfigurationError):
            VoltageRamp(50.0, exponent=0.0)


class TestRampedReadout:
    def test_shape(self, chip):
        bits = read_startup_with_ramp(chip, VoltageRamp(50.0))
        assert bits.shape == (8192,)
        block = read_startup_with_ramp(chip, VoltageRamp(50.0), count=3)
        assert block.shape == (3, 8192)

    def test_steep_ramp_flips_more_cells(self, chip):
        reference = chip.read_startup()
        slow = np.mean([
            (read_startup_with_ramp(chip, VoltageRamp(500.0)) != reference).mean()
            for _ in range(10)
        ])
        steep = np.mean([
            (read_startup_with_ramp(chip, VoltageRamp(5.0)) != reference).mean()
            for _ in range(10)
        ])
        assert steep > slow
