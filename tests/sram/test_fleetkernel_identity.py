"""Scalar ≡ vector identity at the kernel level.

The :class:`~repro.sram.fleetkernel.FleetKernel` contract is absolute:
for the same seed, every batched operation — manufacture, power-up
reads, measurement blocks at either fidelity, aging, state export —
produces **bit-identical** per-board results to a fleet of scalar
:class:`~repro.sram.chip.SRAMChip` objects, and leaves every board's
random stream at the same position.  These tests enforce the contract
operation by operation; the campaign-level suites (``tests/exec``,
``tests/store``) then inherit it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rng import SeedHierarchy
from repro.sram.aging import AgingSimulator, DataPolicy
from repro.sram.chip import SRAMChip
from repro.sram.fleetkernel import KERNELS, FleetKernel, validate_kernel
from repro.sram.powerup import sample_measurement_block
from repro.sram.profiles import ATMEGA32U4

SEED = 11
BOARD_IDS = (0, 1, 2, 5)
#: Small enough to keep every test fast, big enough to be a real array.
PROFILE = ATMEGA32U4.with_overrides(
    name="atmega32u4-kerneltest", sram_bytes=48, read_bytes=24
)


def scalar_fleet(board_ids=BOARD_IDS, profile=PROFILE, seed=SEED):
    seeds = SeedHierarchy(seed)
    return [SRAMChip(b, profile, random_state=seeds) for b in board_ids]


def vector_fleet(board_ids=BOARD_IDS, profile=PROFILE, seed=SEED):
    return FleetKernel.manufacture(board_ids, profile, root_seed=seed)


def assert_streams_aligned(kernel: FleetKernel, chips) -> None:
    """Both kernels' generators must sit at the same stream position."""
    states = kernel.export_states()
    for chip in chips:
        scalar_state = chip.array.export_state()
        assert states[chip.chip_id]["rng_state"] == scalar_state["rng_state"]


class TestManufacture:
    def test_skew_rows_equal_scalar_chips(self):
        kernel = vector_fleet()
        chips = scalar_fleet()
        for index, chip in enumerate(chips):
            np.testing.assert_array_equal(
                kernel.skew_v[index], chip.array.export_state()["skew_v"]
            )
        assert_streams_aligned(kernel, chips)

    def test_board_order_is_caller_order_not_sorted(self):
        ids = (3, 0, 7)
        kernel = FleetKernel.manufacture(ids, PROFILE, root_seed=SEED)
        assert kernel.board_ids == ids
        for index, board_id in enumerate(ids):
            chip = SRAMChip(board_id, PROFILE, random_state=SeedHierarchy(SEED))
            np.testing.assert_array_equal(
                kernel.skew_v[index], chip.array.export_state()["skew_v"]
            )

    def test_rejects_empty_duplicate_and_negative_fleets(self):
        with pytest.raises(ConfigurationError):
            FleetKernel.manufacture((), PROFILE)
        with pytest.raises(ConfigurationError):
            FleetKernel.manufacture((1, 1), PROFILE)
        with pytest.raises(ConfigurationError):
            FleetKernel.manufacture((-1, 0), PROFILE)


class TestReadStartup:
    def test_rows_equal_scalar_read_startup(self):
        kernel = vector_fleet()
        chips = scalar_fleet()
        for _ in range(3):  # repeated reads must stay in lockstep
            rows = kernel.read_startup()
            for index, chip in enumerate(chips):
                np.testing.assert_array_equal(rows[index], chip.read_startup())
        assert_streams_aligned(kernel, chips)

    def test_temperature_override_matches_scalar(self):
        kernel = vector_fleet()
        chips = scalar_fleet()
        rows = kernel.read_startup(temperature_k=320.0)
        for index, chip in enumerate(chips):
            np.testing.assert_array_equal(
                rows[index], chip.read_startup(temperature_k=320.0)
            )


class TestMeasureBlock:
    @pytest.mark.parametrize("statistical", [True, False], ids=["statistical", "full-sim"])
    def test_counts_and_first_readout_equal_scalar(self, statistical):
        kernel = vector_fleet()
        chips = scalar_fleet()
        counts, first = kernel.measure_block(60, statistical=statistical)
        for index, chip in enumerate(chips):
            sample = sample_measurement_block(chip, 60, statistical=statistical)
            np.testing.assert_array_equal(counts[index], sample.ones_counts)
            assert counts[index].dtype == sample.ones_counts.dtype
            np.testing.assert_array_equal(first[index], sample.first_readout)
            assert first[index].dtype == sample.first_readout.dtype
        assert_streams_aligned(kernel, chips)

    def test_single_measurement_block(self):
        kernel = vector_fleet()
        chips = scalar_fleet()
        counts, first = kernel.measure_block(1)
        for index, chip in enumerate(chips):
            sample = sample_measurement_block(chip, 1)
            np.testing.assert_array_equal(counts[index], sample.ones_counts)
            np.testing.assert_array_equal(first[index], sample.first_readout)

    def test_temperature_override_matches_scalar(self):
        kernel = vector_fleet()
        chips = scalar_fleet()
        counts, _ = kernel.measure_block(40, temperature_k=310.0)
        for index, chip in enumerate(chips):
            sample = sample_measurement_block(chip, 40, temperature_k=310.0)
            np.testing.assert_array_equal(counts[index], sample.ones_counts)

    def test_rejects_nonpositive_measurements(self):
        with pytest.raises(ConfigurationError):
            vector_fleet().measure_block(0)


class TestAging:
    @pytest.mark.parametrize("policy", list(DataPolicy))
    def test_drift_equals_scalar_simulator(self, policy):
        kernel = vector_fleet()
        chips = scalar_fleet()
        simulator = AgingSimulator(PROFILE)
        for months in (1.0, 2.5):
            kernel.age_months(months, steps=2, data_policy=policy)
            for chip in chips:
                simulator.age_array_months(
                    chip.array, months, steps=2, data_policy=policy
                )
            for index, chip in enumerate(chips):
                scalar_state = chip.array.export_state()
                np.testing.assert_array_equal(
                    kernel.skew_v[index], scalar_state["skew_v"]
                )
                assert kernel.age_seconds[index] == scalar_state["age_seconds"]
        assert_streams_aligned(kernel, chips)

    def test_stress_overrides_match_scalar(self):
        kernel = vector_fleet()
        chips = scalar_fleet()
        simulator = AgingSimulator(PROFILE)
        kernel.age_months(1.0, steps=3, temperature_k=350.0, voltage_v=5.5)
        for chip in chips:
            simulator.age_array_months(
                chip.array, 1.0, steps=3, temperature_k=350.0, voltage_v=5.5
            )
        for index, chip in enumerate(chips):
            np.testing.assert_array_equal(
                kernel.skew_v[index], chip.array.export_state()["skew_v"]
            )

    def test_aging_after_measurement_stays_aligned(self):
        """The campaign's interleaving: measure, age, measure again."""
        kernel = vector_fleet()
        chips = scalar_fleet()
        simulator = AgingSimulator(PROFILE)
        for _ in range(2):
            counts, _ = kernel.measure_block(30)
            samples = [sample_measurement_block(chip, 30) for chip in chips]
            for index, sample in enumerate(samples):
                np.testing.assert_array_equal(counts[index], sample.ones_counts)
            kernel.age_months(1.0, steps=2)
            for chip in chips:
                simulator.age_array_months(chip.array, 1.0, steps=2)
        assert_streams_aligned(kernel, chips)

    def test_zero_months_is_a_no_op(self):
        kernel = vector_fleet()
        before = kernel.export_states()
        kernel.age_months(0.0)
        after = kernel.export_states()
        for board_id in kernel.board_ids:
            assert before[board_id]["rng_state"] == after[board_id]["rng_state"]
            np.testing.assert_array_equal(
                before[board_id]["skew_v"], after[board_id]["skew_v"]
            )

    def test_rejects_bad_arguments(self):
        kernel = vector_fleet()
        with pytest.raises(ConfigurationError):
            kernel.age_months(-1.0)
        with pytest.raises(ConfigurationError):
            kernel.age_months(1.0, steps=0)


class TestStateRoundTrip:
    def test_export_states_equal_scalar_exports(self):
        kernel = vector_fleet()
        chips = scalar_fleet()
        kernel.read_startup()
        for chip in chips:
            chip.read_startup()
        states = kernel.export_states()
        for chip in chips:
            scalar_state = chip.array.export_state()
            state = states[chip.chip_id]
            assert state["rng_state"] == scalar_state["rng_state"]
            np.testing.assert_array_equal(state["skew_v"], scalar_state["skew_v"])
            assert state["age_seconds"] == scalar_state["age_seconds"]
            assert state["power_up_count"] == scalar_state["power_up_count"]

    def test_from_states_continues_bit_identically(self):
        kernel = vector_fleet()
        kernel.measure_block(25)
        kernel.age_months(1.0, steps=2)
        restored = FleetKernel.from_states(
            kernel.board_ids, PROFILE, kernel.export_states()
        )
        counts_a, first_a = kernel.measure_block(25)
        counts_b, first_b = restored.measure_block(25)
        np.testing.assert_array_equal(counts_a, counts_b)
        np.testing.assert_array_equal(first_a, first_b)

    def test_from_states_rejects_missing_board_and_bad_shape(self):
        kernel = vector_fleet()
        states = kernel.export_states()
        with pytest.raises(ConfigurationError):
            FleetKernel.from_states((0, 99), PROFILE, states)
        states[BOARD_IDS[0]]["skew_v"] = np.zeros(3)
        with pytest.raises(ConfigurationError):
            FleetKernel.from_states(kernel.board_ids, PROFILE, states)


class TestValidateKernel:
    def test_accepts_the_registered_kernels(self):
        for kernel in KERNELS:
            assert validate_kernel(kernel) == kernel

    def test_rejects_unknown_kernel(self):
        with pytest.raises(ConfigurationError, match="kernel"):
            validate_kernel("simd")
