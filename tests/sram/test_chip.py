"""Tests for the SRAM chip wrapper."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rng import SeedHierarchy
from repro.sram.chip import SRAMChip
from repro.sram.profiles import ATMEGA32U4


class TestIdentity:
    def test_same_hierarchy_same_chip(self):
        a = SRAMChip(2, random_state=SeedHierarchy(11))
        b = SRAMChip(2, random_state=SeedHierarchy(11))
        np.testing.assert_array_equal(a.array.skew_v, b.array.skew_v)

    def test_different_ids_are_independent_devices(self):
        seeds = SeedHierarchy(11)
        a = SRAMChip(0, random_state=seeds)
        b = SRAMChip(1, random_state=seeds)
        assert not np.array_equal(a.array.skew_v, b.array.skew_v)

    def test_int_seed_accepted(self):
        a = SRAMChip(0, random_state=5)
        b = SRAMChip(0, random_state=5)
        np.testing.assert_array_equal(a.array.skew_v, b.array.skew_v)

    def test_negative_id_rejected(self):
        with pytest.raises(ConfigurationError):
            SRAMChip(-1)


class TestReadStartup:
    def test_single_read_is_1d(self, chip):
        bits = chip.read_startup()
        assert bits.shape == (ATMEGA32U4.read_bits,)

    def test_multi_read_is_2d(self, chip):
        bits = chip.read_startup(3)
        assert bits.shape == (3, ATMEGA32U4.read_bits)

    def test_reads_only_first_kilobyte(self, chip):
        assert chip.read_startup().size == 8192
        assert chip.array.cell_count == 20480

    def test_power_up_counter(self, chip):
        chip.read_startup(5)
        assert chip.power_up_count == 5


class TestWindowStatistics:
    def test_ones_counts_window_size(self, chip):
        counts = chip.read_window_ones_counts(50)
        assert counts.shape == (8192,)
        assert counts.max() <= 50

    def test_window_probabilities(self, chip):
        probs = chip.window_one_probabilities()
        assert probs.shape == (8192,)
        assert 0.55 < probs.mean() < 0.72


class TestAging:
    def test_age_months_advances(self, chip):
        chip.age_months(3.0)
        assert chip.age_seconds > 0

    def test_aging_increases_reference_distance(self, chip):
        reference = chip.read_startup()
        counts_fresh = chip.read_window_ones_counts(500)
        chip.age_months(24.0, steps=12)
        counts_aged = chip.read_window_ones_counts(500)
        from repro.metrics.hamming import within_class_hd_from_counts

        fresh = within_class_hd_from_counts(counts_fresh, 500, reference)
        aged = within_class_hd_from_counts(counts_aged, 500, reference)
        assert aged > fresh
