"""Tests for device profiles."""

import pytest

from repro.errors import ConfigurationError
from repro.physics.constants import ROOM_TEMPERATURE_K
from repro.sram.profiles import ATMEGA32U4, TESTCHIP_65NM, DeviceProfile


class TestShippedProfiles:
    def test_atmega_geometry_matches_paper(self):
        assert ATMEGA32U4.sram_bytes == 2560  # 2.5 KByte
        assert ATMEGA32U4.read_bytes == 1024  # first 1 KByte
        assert ATMEGA32U4.supply_v == 5.0

    def test_atmega_cell_and_read_bits(self):
        assert ATMEGA32U4.cell_count == 20480
        assert ATMEGA32U4.read_bits == 8192

    def test_atmega_power_duty_matches_fig3(self):
        assert ATMEGA32U4.power_duty == pytest.approx(3.8 / 5.4)

    def test_atmega_biased_toward_one(self):
        assert ATMEGA32U4.skew_mean_v > 0

    def test_testchip_unbiased(self):
        assert TESTCHIP_65NM.skew_mean_v == 0.0

    def test_testchip_noisier_population(self):
        """65 nm initial WCHD (5.3 %) >> ATmega (2.49 %): narrower skew."""
        assert TESTCHIP_65NM.skew_sigma_v < ATMEGA32U4.skew_sigma_v

    def test_room_temperature_operation(self):
        assert ATMEGA32U4.temperature_k == pytest.approx(ROOM_TEMPERATURE_K)


class TestProfileHelpers:
    def test_noise_model_reference(self):
        model = ATMEGA32U4.noise_model()
        assert model.sigma_v == ATMEGA32U4.noise_sigma_v
        assert model.reference_temperature_k == ATMEGA32U4.temperature_k

    def test_bti_model_amplitude(self):
        model = ATMEGA32U4.bti_model()
        assert model.amplitude_v == ATMEGA32U4.bti_amplitude_v
        assert model.time_exponent == ATMEGA32U4.bti_time_exponent

    def test_nominal_stress_condition_factor_is_unity(self):
        model = ATMEGA32U4.bti_model()
        stress = ATMEGA32U4.nominal_stress()
        # The amplitude is referenced to the nominal *voltage/temperature*
        # but the duty enters through the stress itself.
        assert model.condition_factor(stress) == pytest.approx(
            ATMEGA32U4.power_duty**ATMEGA32U4.bti_time_exponent
        )

    def test_with_overrides(self):
        shrunk = ATMEGA32U4.with_overrides(sram_bytes=64, read_bytes=32)
        assert shrunk.sram_bytes == 64
        assert shrunk.skew_mean_v == ATMEGA32U4.skew_mean_v


class TestValidation:
    def test_read_larger_than_sram_rejected(self):
        with pytest.raises(ConfigurationError):
            ATMEGA32U4.with_overrides(read_bytes=4096)

    def test_negative_chip_sigma_rejected(self):
        with pytest.raises(ConfigurationError):
            ATMEGA32U4.with_overrides(chip_mean_sigma_v=-0.001)

    def test_bad_time_exponent_rejected(self):
        with pytest.raises(ConfigurationError):
            ATMEGA32U4.with_overrides(bti_time_exponent=1.5)

    def test_bad_duty_rejected(self):
        with pytest.raises(ConfigurationError):
            ATMEGA32U4.with_overrides(power_duty=0.0)
