"""Tests for power-up sampling helpers and the two fidelities."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sram.chip import SRAMChip
from repro.sram.powerup import (
    PowerUpSample,
    binomial_ones_counts,
    measure_power_ups,
    sample_measurement_block,
)


class TestPowerUpSample:
    def test_probability_estimates(self):
        sample = PowerUpSample(
            measurements=4,
            ones_counts=np.array([0, 2, 4]),
            first_readout=np.array([0, 1, 1], dtype=np.uint8),
        )
        np.testing.assert_allclose(
            sample.one_probability_estimates, [0.0, 0.5, 1.0]
        )

    def test_counts_exceeding_measurements_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerUpSample(
                measurements=2,
                ones_counts=np.array([3]),
                first_readout=np.array([1], dtype=np.uint8),
            )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerUpSample(
                measurements=2,
                ones_counts=np.array([1, 1]),
                first_readout=np.array([1], dtype=np.uint8),
            )


class TestSamplingHelpers:
    def test_measure_power_ups_always_2d(self, chip):
        assert measure_power_ups(chip, 1).shape == (1, 8192)
        assert measure_power_ups(chip, 4).shape == (4, 8192)

    def test_binomial_counts_shape(self, chip):
        assert binomial_ones_counts(chip, 100).shape == (8192,)


class TestMeasurementBlock:
    def test_statistical_block(self, chip):
        block = sample_measurement_block(chip, 200, statistical=True)
        assert block.measurements == 200
        assert block.ones_counts.max() <= 200
        assert block.first_readout.shape == (8192,)

    def test_measurement_level_block(self, small_chip):
        block = sample_measurement_block(small_chip, 50, statistical=False)
        assert block.measurements == 50
        assert block.ones_counts.max() <= 50

    def test_single_measurement_statistical(self, chip):
        block = sample_measurement_block(chip, 1)
        np.testing.assert_array_equal(block.ones_counts, block.first_readout)

    def test_fidelities_agree_in_distribution(self, small_chip):
        """Mean ones-fraction of both fidelities matches the true bias."""
        expected = small_chip.window_one_probabilities().mean()
        stat = sample_measurement_block(small_chip, 500, statistical=True)
        meas = sample_measurement_block(small_chip, 500, statistical=False)
        assert stat.ones_counts.mean() / 500 == pytest.approx(expected, abs=0.05)
        assert meas.ones_counts.mean() / 500 == pytest.approx(expected, abs=0.05)

    def test_invalid_measurements_rejected(self, chip):
        with pytest.raises(ConfigurationError):
            sample_measurement_block(chip, 0)
