"""Tests for the single 6T cell model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.physics.constants import ROOM_TEMPERATURE_K, SECONDS_PER_MONTH
from repro.physics.nbti import BTIModel, BTIStress
from repro.physics.noise import NoiseModel
from repro.sram.cell import SixTransistorCell


def make_cell(p1=0.0, p2=0.0, n1=0.0, n2=0.0, sigma=0.025) -> SixTransistorCell:
    return SixTransistorCell(
        p1_offset_v=p1, p2_offset_v=p2, n1_offset_v=n1, n2_offset_v=n2,
        noise=NoiseModel(sigma_v=sigma),
    )


class TestSkew:
    def test_symmetric_cell_has_zero_skew(self):
        assert make_cell().skew_v == pytest.approx(0.0)

    def test_weak_p1_prefers_zero(self):
        """Higher Vth on P1 (Q-side pull-up) biases toward Q=0."""
        cell = make_cell(p1=0.05)
        assert cell.skew_v < 0
        assert cell.one_probability() < 0.5

    def test_weak_p2_prefers_one(self):
        cell = make_cell(p2=0.05)
        assert cell.skew_v > 0
        assert cell.one_probability() > 0.5

    def test_nmos_mismatch_has_reduced_weight(self):
        pmos_cell = make_cell(p2=0.04)
        nmos_cell = make_cell(n1=0.04)
        assert 0 < nmos_cell.skew_v < pmos_cell.skew_v


class TestPowerUp:
    def test_strongly_skewed_cell_is_deterministic(self):
        cell = make_cell(p2=0.5)  # 20 sigma of skew
        rng = np.random.default_rng(0)
        assert all(cell.power_up(random_state=rng) == 1 for _ in range(100))

    def test_balanced_cell_is_random(self):
        cell = make_cell()
        rng = np.random.default_rng(1)
        outcomes = [cell.power_up(random_state=rng) for _ in range(500)]
        assert 0.4 < np.mean(outcomes) < 0.6

    def test_power_up_counter(self):
        cell = make_cell()
        rng = np.random.default_rng(2)
        for _ in range(7):
            cell.power_up(random_state=rng)
        assert cell.power_up_count == 7

    def test_one_probability_matches_empirical(self):
        cell = make_cell(p2=0.02)
        rng = np.random.default_rng(3)
        empirical = np.mean([cell.power_up(random_state=rng) for _ in range(5000)])
        assert empirical == pytest.approx(cell.one_probability(), abs=0.02)


class TestBTIStress:
    @pytest.fixture
    def aging(self):
        model = BTIModel(amplitude_v=0.01, time_exponent=0.35,
                         reference_voltage_v=5.0)
        stress = BTIStress(ROOM_TEMPERATURE_K, 5.0, duty=1.0)
        return model, stress

    def test_storing_zero_stresses_p2_toward_balance(self, aging):
        model, stress = aging
        cell = make_cell(p1=0.05)  # prefers 0: skew < 0
        before = cell.skew_v
        cell.apply_bti_stress(0, 0.0, SECONDS_PER_MONTH, model, stress)
        # Vth,P2 rises -> skew = (Vth,P2 - Vth,P1) grows -> toward 0.
        assert cell.skew_v > before

    def test_storing_one_stresses_p1_toward_balance(self, aging):
        model, stress = aging
        cell = make_cell(p2=0.05)  # prefers 1: skew > 0
        before = cell.skew_v
        cell.apply_bti_stress(1, 0.0, SECONDS_PER_MONTH, model, stress)
        assert cell.skew_v < before

    def test_stress_reduces_one_probability_margin(self, aging):
        model, stress = aging
        cell = make_cell(p2=0.05)
        p_before = cell.one_probability()
        cell.apply_bti_stress(1, 0.0, 6 * SECONDS_PER_MONTH, model, stress)
        assert 0.5 < cell.one_probability() < p_before

    def test_invalid_state_rejected(self, aging):
        model, stress = aging
        with pytest.raises(ConfigurationError):
            make_cell().apply_bti_stress(2, 0.0, 1.0, model, stress)
