"""Tests for the vectorized SRAM array."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sram.array import SRAMArray
from repro.sram.profiles import ATMEGA32U4


@pytest.fixture
def array() -> SRAMArray:
    return SRAMArray(ATMEGA32U4, cell_count=4096, random_state=42)


class TestConstruction:
    def test_default_cell_count_is_full_sram(self):
        assert SRAMArray(ATMEGA32U4, random_state=1).cell_count == 20480

    def test_same_seed_same_device(self):
        a = SRAMArray(ATMEGA32U4, cell_count=256, random_state=5)
        b = SRAMArray(ATMEGA32U4, cell_count=256, random_state=5)
        np.testing.assert_array_equal(a.skew_v, b.skew_v)

    def test_different_seeds_different_devices(self):
        a = SRAMArray(ATMEGA32U4, cell_count=256, random_state=5)
        b = SRAMArray(ATMEGA32U4, cell_count=256, random_state=6)
        assert not np.array_equal(a.skew_v, b.skew_v)

    def test_skew_view_is_readonly(self, array):
        with pytest.raises(ValueError):
            array.skew_v[0] = 0.0

    def test_invalid_cell_count_rejected(self):
        with pytest.raises(ConfigurationError):
            SRAMArray(ATMEGA32U4, cell_count=0)


class TestPowerUp:
    def test_shape(self, array):
        bits = array.power_up(5)
        assert bits.shape == (5, 4096)
        assert bits.dtype == np.uint8

    def test_bias_matches_profile(self, array):
        bits = array.power_up(20)
        assert 0.55 < bits.mean() < 0.72  # ~62.7 % expected

    def test_strongly_skewed_cells_reproducible(self, array):
        probs = array.one_probabilities()
        stable = (probs > 0.999999) | (probs < 0.000001)
        first = array.power_up_once()
        second = array.power_up_once()
        np.testing.assert_array_equal(first[stable], second[stable])

    def test_counter_advances(self, array):
        array.power_up(3)
        array.power_up_once()
        assert array.power_up_count == 4

    def test_invalid_count_rejected(self, array):
        with pytest.raises(ConfigurationError):
            array.power_up(0)


class TestOneProbabilities:
    def test_range(self, array):
        probs = array.one_probabilities()
        assert probs.min() >= 0.0 and probs.max() <= 1.0

    def test_empirical_agreement(self, array):
        probs = array.one_probabilities()
        empirical = array.power_up(400).mean(axis=0)
        # Cells with moderate probabilities should match closely.
        moderate = (probs > 0.2) & (probs < 0.8)
        if moderate.any():
            np.testing.assert_allclose(
                empirical[moderate], probs[moderate], atol=0.12
            )

    def test_hotter_measurement_flattens_probabilities(self, array):
        cold = array.one_probabilities(temperature_k=250.0)
        hot = array.one_probabilities(temperature_k=400.0)
        # Higher noise pulls every probability toward 1/2.
        distance_cold = np.abs(cold - 0.5)
        distance_hot = np.abs(hot - 0.5)
        assert (distance_hot <= distance_cold + 1e-12).all()


class TestBinomialSampling:
    def test_counts_in_range(self, array):
        counts = array.sample_ones_counts(100)
        assert counts.min() >= 0 and counts.max() <= 100

    def test_mean_tracks_probabilities(self, array):
        probs = array.one_probabilities()
        counts = array.sample_ones_counts(1000)
        np.testing.assert_allclose(counts.mean() / 1000, probs.mean(), atol=0.01)

    def test_counter_counts_measurements(self, array):
        array.sample_ones_counts(250)
        assert array.power_up_count == 250

    def test_invalid_measurements_rejected(self, array):
        with pytest.raises(ConfigurationError):
            array.sample_ones_counts(0)


class TestAgeBookkeeping:
    def test_age_advances(self, array):
        array.age_by(3600.0)
        assert array.age_seconds == pytest.approx(3600.0)

    def test_age_cannot_decrease(self, array):
        array.age_by(100.0)
        with pytest.raises(ConfigurationError):
            array._advance_age(50.0)

    def test_skew_delta_shape_checked(self, array):
        with pytest.raises(ConfigurationError):
            array._apply_skew_delta(np.zeros(3))
