"""Tests for raw noise harvesting."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, EntropyExhausted
from repro.trng.harvester import NoiseHarvester


class TestReferenceXor:
    def test_harvest_length(self, chip):
        harvester = NoiseHarvester(chip, strategy="reference-xor")
        assert harvester.harvest(10_000).size == 10_000

    def test_output_is_sparse_noise(self, chip):
        """Reference-XOR leaves ~WCHD-level density of ones."""
        harvester = NoiseHarvester(chip, strategy="reference-xor")
        raw = harvester.harvest(80_000)
        assert 0.005 < raw.mean() < 0.08

    def test_bits_per_power_up(self, chip):
        harvester = NoiseHarvester(chip, strategy="reference-xor")
        assert harvester.bits_per_power_up() == 8192


class TestUnstableMask:
    def test_characterization_finds_unstable_cells(self, chip):
        harvester = NoiseHarvester(chip, strategy="unstable-mask")
        harvester.characterize()
        count = harvester.unstable_cell_count
        # ~10-15 % of 8192 cells flip within 100 power-ups.
        assert 300 < count < 2500

    def test_harvested_bits_much_denser(self, chip):
        harvester = NoiseHarvester(chip, strategy="unstable-mask")
        raw = harvester.harvest(20_000)
        # Unstable cells carry real signal in both directions.
        assert 0.2 < raw.mean() < 0.9

    def test_stable_only_device_exhausts(self, small_profile):
        """A hypothetical perfectly stable device cannot feed a TRNG."""
        from repro.sram.chip import SRAMChip

        frozen_profile = small_profile.with_overrides(
            noise_sigma_v=1e-9, chip_mean_sigma_v=0.0
        )
        chip = SRAMChip(0, frozen_profile, random_state=1)
        harvester = NoiseHarvester(chip, strategy="unstable-mask")
        with pytest.raises(EntropyExhausted):
            harvester.harvest(100)


class TestLimits:
    def test_power_up_budget_enforced(self, chip):
        harvester = NoiseHarvester(chip, strategy="reference-xor", max_power_ups=2)
        with pytest.raises(EntropyExhausted):
            harvester.harvest(100_000)

    def test_invalid_strategy_rejected(self, chip):
        with pytest.raises(ConfigurationError):
            NoiseHarvester(chip, strategy="magic")

    def test_invalid_request_rejected(self, chip):
        harvester = NoiseHarvester(chip)
        with pytest.raises(ConfigurationError):
            harvester.harvest(0)
