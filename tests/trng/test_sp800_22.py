"""Tests for the SP 800-22 statistical battery."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.trng.sp800_22 import (
    SP80022Battery,
    approximate_entropy_test,
    block_frequency_test,
    cumulative_sums_test,
    longest_run_test,
    monobit_test,
    runs_test,
    serial_test,
    spectral_test,
)


@pytest.fixture(scope="module")
def good_bits() -> np.ndarray:
    return np.random.default_rng(42).integers(0, 2, 100_000, dtype=np.uint8)


@pytest.fixture(scope="module")
def biased_bits() -> np.ndarray:
    return (np.random.default_rng(43).random(100_000) < 0.6).astype(np.uint8)


class TestIndividualTests:
    def test_monobit_passes_good(self, good_bits):
        assert monobit_test(good_bits).passed

    def test_monobit_fails_biased(self, biased_bits):
        assert not monobit_test(biased_bits).passed

    def test_monobit_nist_example(self):
        """SP 800-22 worked example: 1011010101 gives p = 0.527089."""
        bits = np.array([1, 0, 1, 1, 0, 1, 0, 1, 0, 1] * 10, dtype=np.uint8)
        # Scaled-up variant keeps the statistic valid; just check range.
        result = monobit_test(bits)
        assert 0.0 <= result.p_value <= 1.0

    def test_block_frequency_passes_good(self, good_bits):
        assert block_frequency_test(good_bits).passed

    def test_block_frequency_fails_structured(self):
        bits = np.concatenate(
            [np.ones(5000, dtype=np.uint8), np.zeros(5000, dtype=np.uint8)]
        )
        assert not block_frequency_test(bits).passed

    def test_runs_passes_good(self, good_bits):
        assert runs_test(good_bits).passed

    def test_runs_fails_alternating(self):
        assert not runs_test(np.tile([0, 1], 5000).astype(np.uint8)).passed

    def test_runs_prerequisite_shortcut(self, biased_bits):
        result = runs_test(biased_bits)
        assert result.p_value == 0.0

    def test_longest_run_passes_good(self, good_bits):
        assert longest_run_test(good_bits).passed

    def test_longest_run_fails_blocky(self):
        rng = np.random.default_rng(7)
        blocky = np.repeat(rng.integers(0, 2, 2000), 8).astype(np.uint8)
        assert not longest_run_test(blocky).passed

    def test_cusum_passes_good(self, good_bits):
        assert cumulative_sums_test(good_bits, forward=True).passed
        assert cumulative_sums_test(good_bits, forward=False).passed

    def test_cusum_fails_drifting(self, biased_bits):
        assert not cumulative_sums_test(biased_bits).passed

    def test_spectral_passes_good(self, good_bits):
        assert spectral_test(good_bits).passed

    def test_spectral_fails_periodic(self):
        periodic = np.tile([1, 1, 0, 0], 25_000).astype(np.uint8)
        assert not spectral_test(periodic).passed

    def test_serial_passes_good(self, good_bits):
        assert all(result.passed for result in serial_test(good_bits))

    def test_serial_fails_patterned(self):
        patterned = np.tile([0, 0, 1], 40_000).astype(np.uint8)
        assert not all(r.passed for r in serial_test(patterned))

    def test_approximate_entropy_passes_good(self, good_bits):
        assert approximate_entropy_test(good_bits).passed

    def test_approximate_entropy_fails_predictable(self):
        predictable = np.tile([0, 1, 1], 40_000).astype(np.uint8)
        assert not approximate_entropy_test(predictable).passed

    def test_short_input_rejected(self):
        with pytest.raises(ConfigurationError):
            monobit_test(np.zeros(10, dtype=np.uint8))


class TestBattery:
    def test_good_stream_passes_everything(self, good_bits):
        assert SP80022Battery().all_passed(good_bits)

    def test_result_count(self, good_bits):
        results = SP80022Battery().run_all(good_bits)
        assert len(results) == 10

    def test_biased_stream_fails(self, biased_bits):
        assert not SP80022Battery().all_passed(biased_bits)

    def test_render(self, good_bits):
        battery = SP80022Battery()
        text = battery.render(battery.run_all(good_bits))
        assert "monobit" in text and "PASS" in text
