"""Tests for noise conditioning."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.trng.conditioner import hash_condition, von_neumann_condition, xor_fold


def biased(p: float, count: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.random(count) < p).astype(np.uint8)


class TestVonNeumann:
    def test_unbiased_output(self):
        out = von_neumann_condition(biased(0.9, 200_000, 1))
        assert abs(out.mean() - 0.5) < 0.02


class TestXorFold:
    def test_fold_reduces_bias(self):
        raw = biased(0.9, 400_000, 2)
        light = xor_fold(raw, 2)
        heavy = xor_fold(raw, 8)
        assert abs(heavy.mean() - 0.5) < abs(light.mean() - 0.5)

    def test_piling_up_prediction(self):
        """Bias after folding follows 2^(k-1) e^k for i.i.d. input."""
        raw = biased(0.8, 1_000_000, 3)
        folded = xor_fold(raw, 4)
        # Pr(XOR = 1) = (1 - (1 - 2p)^4) / 2 for i.i.d. bits.
        expected = (1.0 - (1.0 - 2 * 0.8) ** 4) / 2.0
        assert folded.mean() == pytest.approx(expected, abs=0.01)

    def test_output_length(self):
        assert xor_fold(np.zeros(100, dtype=np.uint8), 8).size == 12

    def test_identity_fold(self):
        raw = biased(0.5, 64, 4)
        np.testing.assert_array_equal(xor_fold(raw, 1), raw)

    def test_insufficient_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            xor_fold(np.zeros(3, dtype=np.uint8), 8)

    def test_bad_fold_rejected(self):
        with pytest.raises(ConfigurationError):
            xor_fold(np.zeros(8, dtype=np.uint8), 0)


class TestHashCondition:
    def test_output_length(self):
        raw = biased(0.9, 50_000, 5)
        assert hash_condition(raw, 1000).size == 1000

    def test_output_balanced_even_for_biased_input(self):
        raw = biased(0.95, 100_000, 6)
        out = hash_condition(raw, 4096)
        assert abs(out.mean() - 0.5) < 0.03

    def test_deterministic(self):
        raw = biased(0.9, 10_000, 7)
        np.testing.assert_array_equal(
            hash_condition(raw, 256), hash_condition(raw, 256)
        )

    def test_different_inputs_different_outputs(self):
        a = hash_condition(biased(0.9, 10_000, 8), 256)
        b = hash_condition(biased(0.9, 10_000, 9), 256)
        assert not np.array_equal(a, b)

    def test_stretching_rejected(self):
        """Conditioning cannot output more bits than it consumes."""
        with pytest.raises(ConfigurationError):
            hash_condition(np.zeros(100, dtype=np.uint8), 200)

    def test_bad_output_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            hash_condition(np.zeros(100, dtype=np.uint8), 0)
