"""Tests for the HMAC-DRBG."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, EntropyExhausted
from repro.trng.drbg import HmacDrbg, SeededDrbg
from repro.trng.trng import SRAMTRNG


def make_drbg(seed_byte: int = 7, **kwargs) -> HmacDrbg:
    return HmacDrbg(bytes([seed_byte]) * 32, **kwargs)


class TestHmacDrbg:
    def test_deterministic_for_same_seed(self):
        assert make_drbg().generate(64) == make_drbg().generate(64)

    def test_different_seeds_differ(self):
        assert make_drbg(1).generate(64) != make_drbg(2).generate(64)

    def test_personalization_separates(self):
        a = HmacDrbg(b"\x07" * 32, personalization=b"a").generate(32)
        b = HmacDrbg(b"\x07" * 32, personalization=b"b").generate(32)
        assert a != b

    def test_consecutive_outputs_differ(self):
        drbg = make_drbg()
        assert drbg.generate(32) != drbg.generate(32)

    def test_output_length(self):
        assert len(make_drbg().generate(100)) == 100

    def test_output_statistically_flat(self):
        data = np.frombuffer(make_drbg().generate(65536), dtype=np.uint8)
        bits = np.unpackbits(data)
        assert abs(bits.mean() - 0.5) < 0.01

    def test_output_passes_sp800_22(self):
        from repro.trng.sp800_22 import SP80022Battery

        bits = np.unpackbits(np.frombuffer(make_drbg().generate(12500), np.uint8))
        results = SP80022Battery().run_all(bits)
        assert sum(not result.passed for result in results) <= 1

    def test_reseed_interval_enforced(self):
        drbg = make_drbg(reseed_interval=3)
        for _ in range(3):
            drbg.generate(8)
        with pytest.raises(EntropyExhausted):
            drbg.generate(8)

    def test_reseed_resets_counter_and_changes_stream(self):
        drbg = make_drbg(reseed_interval=3)
        before = drbg.generate(32)
        drbg.reseed(b"\x55" * 32)
        assert drbg.generate_count == 0
        assert drbg.generate(32) != before

    def test_additional_input_changes_output(self):
        a = make_drbg().generate(32, additional=b"x")
        b = make_drbg().generate(32, additional=b"y")
        assert a != b

    def test_short_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            HmacDrbg(b"\x00" * 8)

    def test_oversized_request_rejected(self):
        with pytest.raises(ConfigurationError):
            make_drbg().generate(1 << 20)


class TestSeededDrbg:
    def test_generates_from_puf_seed(self, chip):
        drbg = SeededDrbg(SRAMTRNG(chip))
        assert len(drbg.generate(64)) == 64

    def test_automatic_reseed(self, chip):
        drbg = SeededDrbg(SRAMTRNG(chip), reseed_interval=2)
        for _ in range(5):
            drbg.generate(8)
        assert drbg.reseed_count >= 1

    def test_random_bits_shape(self, chip):
        drbg = SeededDrbg(SRAMTRNG(chip))
        bits = drbg.random_bits(100)
        assert bits.shape == (100,)
        assert set(np.unique(bits)) <= {0, 1}

    def test_different_devices_different_streams(self, seeds):
        from repro.sram.chip import SRAMChip

        a = SeededDrbg(SRAMTRNG(SRAMChip(0, random_state=seeds)))
        b = SeededDrbg(SRAMTRNG(SRAMChip(1, random_state=seeds)))
        assert a.generate(32) != b.generate(32)
