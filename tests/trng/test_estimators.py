"""Tests for min-entropy estimators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.trng.estimators import (
    assessed_entropy,
    collision_estimate,
    markov_estimate,
    most_common_value_estimate,
)


def biased(p: float, count: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.random(count) < p).astype(np.uint8)


class TestMCV:
    def test_fair_source_near_one(self):
        assert most_common_value_estimate(biased(0.5, 200_000, 1)) > 0.95

    def test_biased_source(self):
        estimate = most_common_value_estimate(biased(0.9, 200_000, 2))
        assert estimate == pytest.approx(-np.log2(0.9), abs=0.02)

    def test_constant_source_is_zero(self):
        assert most_common_value_estimate(np.ones(1000, dtype=np.uint8)) == 0.0

    def test_estimate_is_conservative(self):
        """The upper confidence bound keeps the estimate below truth."""
        estimates = [
            most_common_value_estimate(biased(0.8, 10_000, seed))
            for seed in range(10)
        ]
        assert np.mean(estimates) < -np.log2(0.8) + 0.001

    def test_too_short_rejected(self):
        with pytest.raises(ConfigurationError):
            most_common_value_estimate(np.array([1], dtype=np.uint8))


class TestCollision:
    def test_fair_source_high(self):
        assert collision_estimate(biased(0.5, 100_000, 3)) > 0.6

    def test_biased_source_low(self):
        assert collision_estimate(biased(0.95, 100_000, 4)) < 0.4

    def test_ordering_tracks_bias(self):
        fair = collision_estimate(biased(0.5, 100_000, 5))
        skewed = collision_estimate(biased(0.8, 100_000, 6))
        assert fair > skewed

    def test_too_short_rejected(self):
        with pytest.raises(ConfigurationError):
            collision_estimate(np.zeros(8, dtype=np.uint8))


class TestMarkov:
    def test_fair_source_near_one(self):
        assert markov_estimate(biased(0.5, 200_000, 7)) > 0.95

    def test_biased_source(self):
        estimate = markov_estimate(biased(0.9, 200_000, 8))
        assert estimate == pytest.approx(-np.log2(0.9), abs=0.02)

    def test_detects_correlation_mcv_misses(self):
        """An alternating source is balanced but fully predictable."""
        alternating = np.tile([0, 1], 5000).astype(np.uint8)
        assert most_common_value_estimate(alternating) > 0.9
        assert markov_estimate(alternating) < 0.05

    def test_constant_source_is_zero(self):
        assert markov_estimate(np.zeros(1000, dtype=np.uint8)) == pytest.approx(
            0.0, abs=1e-6
        )

    def test_too_short_rejected(self):
        with pytest.raises(ConfigurationError):
            markov_estimate(np.zeros(50, dtype=np.uint8))


class TestAssessment:
    def test_takes_minimum(self):
        bits = biased(0.7, 100_000, 9)
        assessment = assessed_entropy(bits)
        assert assessment <= most_common_value_estimate(bits) + 1e-12
        assert assessment <= markov_estimate(bits) + 1e-12

    def test_sram_noise_assessment_matches_paper_scale(self, chip):
        """Raw SRAM noise assesses to a few percent min-entropy per bit,
        the scale of the paper's noise-entropy column."""
        from repro.trng.harvester import NoiseHarvester

        raw = NoiseHarvester(chip).harvest(100_000)
        assessment = assessed_entropy(raw)
        assert 0.005 < assessment < 0.10
