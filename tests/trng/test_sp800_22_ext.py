"""Tests for the extended SP 800-22 battery."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.trng.sp800_22_ext import (
    berlekamp_massey_length,
    binary_matrix_rank_test,
    gf2_rank,
    linear_complexity_test,
    non_overlapping_template_test,
    run_extended_battery,
)


@pytest.fixture(scope="module")
def good_bits() -> np.ndarray:
    return np.random.default_rng(7).integers(0, 2, 120_000, dtype=np.uint8)


class TestGF2Rank:
    def test_identity_full_rank(self):
        assert gf2_rank(np.eye(8, dtype=np.uint8)) == 8

    def test_zero_matrix(self):
        assert gf2_rank(np.zeros((8, 8), dtype=np.uint8)) == 0

    def test_duplicate_rows_reduce_rank(self):
        matrix = np.eye(4, dtype=np.uint8)
        matrix[3] = matrix[0]
        assert gf2_rank(matrix) == 3

    def test_xor_dependence_detected(self):
        """Row 2 = row 0 XOR row 1 is dependent over GF(2) even though
        the real-valued rank would be full."""
        matrix = np.array([[1, 1, 0], [0, 1, 1], [1, 0, 1]], dtype=np.uint8)
        assert gf2_rank(matrix) == 2

    def test_random_matrices_mostly_full_rank(self):
        rng = np.random.default_rng(8)
        full = sum(
            gf2_rank(rng.integers(0, 2, (32, 32), dtype=np.uint8)) == 32
            for _ in range(100)
        )
        assert 15 <= full <= 45  # asymptotic probability is 0.2888


class TestBerlekampMassey:
    def test_lfsr_sequence_recovers_degree(self):
        sequence = np.zeros(64, dtype=np.uint8)
        sequence[0] = 1
        for index in range(3, 64):
            sequence[index] = sequence[index - 1] ^ sequence[index - 3]
        assert berlekamp_massey_length(sequence) == 3

    def test_all_ones(self):
        assert berlekamp_massey_length(np.ones(32, dtype=np.uint8)) == 1

    def test_all_zeros(self):
        assert berlekamp_massey_length(np.zeros(32, dtype=np.uint8)) == 0

    def test_random_sequence_near_half_length(self):
        rng = np.random.default_rng(9)
        sequence = rng.integers(0, 2, 200, dtype=np.uint8)
        assert abs(berlekamp_massey_length(sequence) - 100) <= 3


class TestExtendedTests:
    def test_rank_passes_good(self, good_bits):
        assert binary_matrix_rank_test(good_bits).passed

    def test_rank_fails_degenerate(self):
        assert not binary_matrix_rank_test(np.zeros(50_000, dtype=np.uint8)).passed

    def test_rank_needs_enough_bits(self):
        with pytest.raises(ConfigurationError):
            binary_matrix_rank_test(np.zeros(1000, dtype=np.uint8))

    def test_linear_complexity_passes_good(self, good_bits):
        assert linear_complexity_test(good_bits).passed

    def test_linear_complexity_fails_lfsr(self):
        sequence = np.zeros(40_000, dtype=np.uint8)
        sequence[0] = 1
        for index in range(5, 40_000):
            sequence[index] = sequence[index - 2] ^ sequence[index - 5]
        assert not linear_complexity_test(sequence).passed

    def test_template_passes_good(self, good_bits):
        assert non_overlapping_template_test(good_bits).passed

    def test_template_fails_on_stuffed_stream(self):
        rng = np.random.default_rng(10)
        stream = rng.integers(0, 2, 100_000, dtype=np.uint8)
        # Stuff the template at a fixed stride to overrepresent it.
        template = np.array([0, 0, 0, 0, 0, 0, 0, 0, 1], dtype=np.uint8)
        for start in range(0, stream.size - 9, 40):
            stream[start : start + 9] = template
        assert not non_overlapping_template_test(stream).passed

    def test_custom_template(self, good_bits):
        result = non_overlapping_template_test(good_bits, template=(1, 0, 1, 1, 0, 1))
        assert 0.0 <= result.p_value <= 1.0

    def test_battery_on_trng_output(self, chip):
        """The conditioned SRAM TRNG clears the extended battery too."""
        from repro.trng.trng import SRAMTRNG

        bits = SRAMTRNG(chip).generate(60_000)
        results = run_extended_battery(bits)
        assert sum(not result.passed for result in results) == 0
