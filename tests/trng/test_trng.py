"""Tests for the end-to-end TRNG."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, EntropyExhausted
from repro.trng.trng import SRAMTRNG


@pytest.fixture
def trng(chip) -> SRAMTRNG:
    return SRAMTRNG(chip)


class TestGeneration:
    def test_output_length(self, trng):
        assert trng.generate(512).size == 512

    def test_output_balanced(self, trng):
        bits = trng.generate(8192)
        assert abs(bits.mean() - 0.5) < 0.03

    def test_consecutive_outputs_differ(self, trng):
        a = trng.generate(256)
        b = trng.generate(256)
        assert not np.array_equal(a, b)

    def test_accounting(self, trng):
        trng.generate(100)
        assert trng.output_bits_produced == 100
        assert trng.raw_bits_consumed >= trng.raw_bits_needed(100)

    def test_generate_bytes(self, trng):
        assert len(trng.generate_bytes(16)) == 16

    def test_output_passes_statistical_tests(self, chip):
        from repro.trng.sp800_22 import SP80022Battery

        trng = SRAMTRNG(chip)
        bits = trng.generate(20_000)
        results = SP80022Battery().run_all(bits)
        # Allow a single marginal failure out of ten p-values.
        assert sum(not result.passed for result in results) <= 1


class TestEntropyBudget:
    def test_raw_bits_needed_formula(self, chip):
        trng = SRAMTRNG(chip, claimed_entropy_per_bit=0.02, safety_factor=2.0)
        assert trng.raw_bits_needed(100) == 10_000

    def test_exhaustion_detected(self, chip):
        trng = SRAMTRNG(chip, max_power_ups=3)
        with pytest.raises(EntropyExhausted):
            trng.generate(100_000)

    def test_unstable_mask_strategy(self, chip):
        trng = SRAMTRNG(chip, strategy="unstable-mask",
                        claimed_entropy_per_bit=0.3)
        assert trng.generate(256).size == 256


class TestValidation:
    def test_bad_claim_rejected(self, chip):
        with pytest.raises(ConfigurationError):
            SRAMTRNG(chip, claimed_entropy_per_bit=0.0)

    def test_bad_safety_factor_rejected(self, chip):
        with pytest.raises(ConfigurationError):
            SRAMTRNG(chip, safety_factor=0.5)

    def test_bad_request_rejected(self, trng):
        with pytest.raises(ConfigurationError):
            trng.generate(0)
