"""Tests for SP 800-90B health tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, HealthTestFailure
from repro.trng.health import (
    AdaptiveProportionTest,
    HealthMonitor,
    RepetitionCountTest,
)


class TestRepetitionCount:
    def test_cutoff_formula(self):
        """H=1 with alpha=2^-20 gives cutoff 21."""
        assert RepetitionCountTest(1.0).cutoff == 21

    def test_low_entropy_claim_tolerates_long_runs(self):
        assert RepetitionCountTest(0.03).cutoff > RepetitionCountTest(1.0).cutoff

    def test_stuck_source_trips(self):
        test = RepetitionCountTest(1.0)
        with pytest.raises(HealthTestFailure):
            test.check(np.zeros(100, dtype=np.uint8))

    def test_healthy_source_passes(self):
        rng = np.random.default_rng(1)
        RepetitionCountTest(1.0).check(rng.integers(0, 2, 10_000, dtype=np.uint8))

    def test_run_just_below_cutoff_passes(self):
        test = RepetitionCountTest(1.0)
        bits = np.concatenate([
            np.zeros(test.cutoff - 1, dtype=np.uint8), [1],
        ]).astype(np.uint8)
        test.check(bits)

    def test_empty_block_allowed(self):
        RepetitionCountTest(1.0).check(np.array([], dtype=np.uint8))

    def test_invalid_entropy_claim_rejected(self):
        with pytest.raises(ConfigurationError):
            RepetitionCountTest(0.0)


class TestAdaptiveProportion:
    def test_constant_window_trips(self):
        test = AdaptiveProportionTest(1.0, window=512)
        with pytest.raises(HealthTestFailure):
            test.check(np.ones(512, dtype=np.uint8))

    def test_balanced_window_passes(self):
        rng = np.random.default_rng(2)
        test = AdaptiveProportionTest(1.0, window=512)
        test.check(rng.integers(0, 2, 4096, dtype=np.uint8))

    def test_partial_window_ignored(self):
        test = AdaptiveProportionTest(1.0, window=1024)
        test.check(np.ones(512, dtype=np.uint8))  # less than one window

    def test_low_claim_tolerates_bias(self):
        """A 3 % entropy claim admits extremely biased raw streams."""
        rng = np.random.default_rng(3)
        raw = (rng.random(8192) < 0.03).astype(np.uint8)
        AdaptiveProportionTest(0.03, window=1024).check(raw)

    def test_cutoff_bounded_by_window(self):
        assert AdaptiveProportionTest(0.001, window=64).cutoff <= 64

    def test_invalid_window_rejected(self):
        with pytest.raises(ConfigurationError):
            AdaptiveProportionTest(1.0, window=1)


class TestHealthMonitor:
    def test_monitors_all_tests(self):
        monitor = HealthMonitor(1.0)
        with pytest.raises(HealthTestFailure):
            monitor.check(np.zeros(2048, dtype=np.uint8))

    def test_sram_noise_stream_passes(self, chip):
        """The real (simulated) raw stream passes at the honest claim."""
        from repro.trng.harvester import NoiseHarvester

        raw = NoiseHarvester(chip).harvest(50_000)
        HealthMonitor(0.02).check(raw)

    def test_check_many(self):
        rng = np.random.default_rng(4)
        monitor = HealthMonitor(1.0)
        blocks = [rng.integers(0, 2, 2048, dtype=np.uint8) for _ in range(3)]
        monitor.check_many(blocks)
