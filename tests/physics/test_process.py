"""Tests for the Pelgrom process-variation model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.physics.process import MismatchSpec, PelgromModel


class TestMismatchSpec:
    def test_sigma_follows_pelgrom_law(self):
        spec = MismatchSpec(avt_mv_um=10.0, width_um=4.0, length_um=1.0)
        assert spec.sigma_vth_mv == pytest.approx(10.0 / 2.0)

    def test_gate_area(self):
        spec = MismatchSpec(avt_mv_um=5.0, width_um=2.0, length_um=3.0)
        assert spec.gate_area_um2 == pytest.approx(6.0)

    def test_sigma_in_volts(self):
        spec = MismatchSpec(avt_mv_um=8.0, width_um=1.0, length_um=1.0)
        assert spec.sigma_vth_v == pytest.approx(8e-3)

    def test_smaller_area_means_more_mismatch(self):
        big = MismatchSpec(avt_mv_um=10.0, width_um=4.0, length_um=4.0)
        small = MismatchSpec(avt_mv_um=10.0, width_um=1.0, length_um=1.0)
        assert small.sigma_vth_mv > big.sigma_vth_mv

    @pytest.mark.parametrize("avt,w,l", [(-1, 1, 1), (0, 1, 1), (1, 0, 1), (1, 1, -2)])
    def test_invalid_parameters_rejected(self, avt, w, l):
        with pytest.raises(ConfigurationError):
            MismatchSpec(avt_mv_um=avt, width_um=w, length_um=l)


class TestPelgromModel:
    def test_draws_match_spec_sigma(self):
        spec = MismatchSpec(avt_mv_um=15.0, width_um=1.0, length_um=1.0)
        offsets = PelgromModel(spec).draw_offsets(50_000, random_state=1)
        assert np.std(offsets) == pytest.approx(spec.sigma_vth_v, rel=0.02)

    def test_draws_centered_on_systematic_offset(self):
        spec = MismatchSpec(avt_mv_um=15.0, width_um=1.0, length_um=1.0)
        model = PelgromModel(spec, systematic_offset_v=0.05)
        offsets = model.draw_offsets(50_000, random_state=2)
        assert np.mean(offsets) == pytest.approx(0.05, abs=0.001)

    def test_reproducible_with_same_seed(self):
        spec = MismatchSpec(avt_mv_um=10.0, width_um=1.0, length_um=1.0)
        a = PelgromModel(spec).draw_offsets(100, random_state=7)
        b = PelgromModel(spec).draw_offsets(100, random_state=7)
        np.testing.assert_array_equal(a, b)

    def test_zero_count_allowed(self):
        spec = MismatchSpec(avt_mv_um=10.0, width_um=1.0, length_um=1.0)
        assert PelgromModel(spec).draw_offsets(0).size == 0

    def test_negative_count_rejected(self):
        spec = MismatchSpec(avt_mv_um=10.0, width_um=1.0, length_um=1.0)
        with pytest.raises(ConfigurationError):
            PelgromModel(spec).draw_offsets(-1)
