"""Tests for the BTI aging law."""

import pytest

from repro.errors import ConfigurationError
from repro.physics.constants import ROOM_TEMPERATURE_K, SECONDS_PER_MONTH
from repro.physics.nbti import BTIModel, BTIStress


@pytest.fixture
def model() -> BTIModel:
    return BTIModel(amplitude_v=0.003, time_exponent=0.35)


@pytest.fixture
def nominal() -> BTIStress:
    return BTIStress(temperature_k=ROOM_TEMPERATURE_K, voltage_v=5.0, duty=1.0)


class TestBTIStress:
    def test_duty_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            BTIStress(300.0, 5.0, duty=1.5)

    def test_nonpositive_temperature_rejected(self):
        with pytest.raises(ConfigurationError):
            BTIStress(0.0, 5.0)

    def test_nonpositive_voltage_rejected(self):
        with pytest.raises(ConfigurationError):
            BTIStress(300.0, -5.0)


class TestConditionFactor:
    def test_unity_at_reference(self, model, nominal):
        assert model.condition_factor(nominal) == pytest.approx(1.0)

    def test_higher_temperature_accelerates(self, model, nominal):
        hot = BTIStress(nominal.temperature_k + 60.0, nominal.voltage_v)
        assert model.condition_factor(hot) > 1.0

    def test_higher_voltage_accelerates(self, model, nominal):
        overvolt = BTIStress(nominal.temperature_k, nominal.voltage_v * 1.2)
        assert model.condition_factor(overvolt) == pytest.approx(1.2**3, rel=1e-6)

    def test_partial_duty_decelerates(self, model, nominal):
        partial = BTIStress(nominal.temperature_k, nominal.voltage_v, duty=0.5)
        assert model.condition_factor(partial) == pytest.approx(0.5**0.35, rel=1e-6)


class TestDrift:
    def test_one_month_at_reference_gives_amplitude(self, model, nominal):
        assert model.drift_v(SECONDS_PER_MONTH, nominal) == pytest.approx(0.003)

    def test_power_law_time_dependence(self, model, nominal):
        four_months = model.drift_v(4 * SECONDS_PER_MONTH, nominal)
        one_month = model.drift_v(SECONDS_PER_MONTH, nominal)
        assert four_months / one_month == pytest.approx(4**0.35, rel=1e-9)

    def test_zero_time_gives_zero_drift(self, model, nominal):
        assert model.drift_v(0.0, nominal) == 0.0

    def test_drift_monotone_in_time(self, model, nominal):
        times = [0.1e6, 0.5e6, 2e6, 9e6]
        drifts = [model.drift_v(t, nominal) for t in times]
        assert drifts == sorted(drifts)

    def test_negative_time_rejected(self, model, nominal):
        with pytest.raises(ConfigurationError):
            model.drift_v(-1.0, nominal)


class TestIncrementalDrift:
    def test_increments_sum_to_total(self, model, nominal):
        total = model.drift_v(3 * SECONDS_PER_MONTH, nominal)
        split = model.drift_increment_v(
            0, SECONDS_PER_MONTH, nominal
        ) + model.drift_increment_v(SECONDS_PER_MONTH, 3 * SECONDS_PER_MONTH, nominal)
        assert split == pytest.approx(total)

    def test_early_increment_larger_than_late(self, model, nominal):
        early = model.drift_increment_v(0, SECONDS_PER_MONTH, nominal)
        late = model.drift_increment_v(
            23 * SECONDS_PER_MONTH, 24 * SECONDS_PER_MONTH, nominal
        )
        assert early > late

    def test_reversed_interval_rejected(self, model, nominal):
        with pytest.raises(ConfigurationError):
            model.drift_increment_v(10.0, 5.0, nominal)


class TestEquivalentAge:
    def test_reference_condition_is_identity(self, model, nominal):
        assert model.equivalent_age_seconds(1000.0, nominal) == pytest.approx(1000.0)

    def test_acceleration_compresses_time(self, model, nominal):
        hot = BTIStress(ROOM_TEMPERATURE_K + 60.0, 5.0)
        equivalent = model.equivalent_age_seconds(3600.0, hot)
        assert equivalent > 3600.0

    def test_consistent_with_drift(self, model, nominal):
        """Stress drift equals nominal drift over the equivalent age."""
        hot = BTIStress(ROOM_TEMPERATURE_K + 40.0, 5.5)
        stress_seconds = 7200.0
        equivalent = model.equivalent_age_seconds(stress_seconds, hot)
        assert model.drift_v(stress_seconds, hot) == pytest.approx(
            model.drift_v(equivalent, nominal), rel=1e-9
        )


class TestValidation:
    def test_bad_exponent_rejected(self):
        with pytest.raises(ConfigurationError):
            BTIModel(amplitude_v=0.001, time_exponent=0.0)

    def test_negative_amplitude_rejected(self):
        with pytest.raises(ConfigurationError):
            BTIModel(amplitude_v=-0.001)

    def test_negative_activation_energy_rejected(self):
        with pytest.raises(ConfigurationError):
            BTIModel(amplitude_v=0.001, activation_energy_ev=-0.5)
