"""Tests for the electrical noise model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.physics.noise import NoiseModel


class TestNoiseModel:
    def test_sigma_at_reference_unchanged(self):
        model = NoiseModel(sigma_v=0.025, reference_temperature_k=298.15)
        assert model.sigma_at(298.15) == pytest.approx(0.025)

    def test_sigma_scales_with_sqrt_temperature(self):
        model = NoiseModel(sigma_v=0.025, reference_temperature_k=300.0)
        assert model.sigma_at(1200.0) == pytest.approx(0.05)

    def test_sample_statistics(self):
        model = NoiseModel(sigma_v=0.03)
        samples = model.sample(100_000, random_state=3)
        assert np.mean(samples) == pytest.approx(0.0, abs=5e-4)
        assert np.std(samples) == pytest.approx(0.03, rel=0.02)

    def test_sample_shape(self):
        model = NoiseModel(sigma_v=0.01)
        assert model.sample((4, 8), random_state=1).shape == (4, 8)

    def test_sample_at_temperature_uses_scaled_sigma(self):
        model = NoiseModel(sigma_v=0.02, reference_temperature_k=300.0)
        hot = model.sample(100_000, temperature_k=1200.0, random_state=5)
        assert np.std(hot) == pytest.approx(0.04, rel=0.02)

    def test_nonpositive_sigma_rejected(self):
        with pytest.raises(ConfigurationError):
            NoiseModel(sigma_v=0.0)

    def test_nonpositive_temperature_rejected(self):
        model = NoiseModel(sigma_v=0.02)
        with pytest.raises(ConfigurationError):
            model.sigma_at(-10.0)
