"""Tests for stress-test acceleration factors."""

import pytest

from repro.errors import ConfigurationError
from repro.physics.acceleration import (
    AccelerationModel,
    arrhenius_factor,
    voltage_factor,
)
from repro.physics.constants import celsius_to_kelvin


class TestArrhenius:
    def test_same_temperature_is_unity(self):
        assert arrhenius_factor(300.0, 300.0, 0.5) == pytest.approx(1.0)

    def test_hotter_stress_accelerates(self):
        factor = arrhenius_factor(
            celsius_to_kelvin(25), celsius_to_kelvin(85), 0.5
        )
        assert factor > 10.0

    def test_zero_activation_energy_is_unity(self):
        assert arrhenius_factor(300.0, 400.0, 0.0) == pytest.approx(1.0)

    def test_invalid_temperature_rejected(self):
        with pytest.raises(ConfigurationError):
            arrhenius_factor(-1.0, 300.0, 0.5)


class TestVoltageFactor:
    def test_same_voltage_is_unity(self):
        assert voltage_factor(1.2, 1.2, 3.0) == pytest.approx(1.0)

    def test_cubic_exponent(self):
        assert voltage_factor(1.0, 2.0, 3.0) == pytest.approx(8.0)

    def test_invalid_voltage_rejected(self):
        with pytest.raises(ConfigurationError):
            voltage_factor(0.0, 1.0, 3.0)


class TestAccelerationModel:
    @pytest.fixture
    def model(self) -> AccelerationModel:
        return AccelerationModel(
            use_temperature_k=celsius_to_kelvin(25),
            use_voltage_v=1.2,
            stress_temperature_k=celsius_to_kelvin(85),
            stress_voltage_v=1.44,
            activation_energy_ev=0.5,
            voltage_exponent=3.0,
        )

    def test_overall_combines_both_factors(self, model):
        expected = model.temperature_factor * (1.44 / 1.2) ** 3
        assert model.overall_factor == pytest.approx(expected)

    def test_equivalent_field_time_exceeds_stress_time(self, model):
        assert model.equivalent_field_seconds(3600.0, 0.35) > 3600.0

    def test_time_acceleration_uses_inverse_exponent(self, model):
        factor = model.overall_factor
        equivalent = model.equivalent_field_seconds(100.0, 0.5)
        assert equivalent == pytest.approx(100.0 * factor**2)

    def test_negative_stress_time_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.equivalent_field_seconds(-1.0, 0.35)

    def test_bad_exponent_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.equivalent_field_seconds(1.0, 0.0)
