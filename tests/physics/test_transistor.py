"""Tests for the transistor threshold model."""

import pytest

from repro.errors import ConfigurationError
from repro.physics.transistor import Transistor, TransistorType


class TestTransistor:
    def test_effective_threshold_sums_components(self):
        device = Transistor(TransistorType.PMOS, 0.7, vth_offset_v=0.01)
        device.apply_drift(0.005)
        assert device.vth_v == pytest.approx(0.715)

    def test_drift_accumulates(self):
        device = Transistor(TransistorType.NMOS, 0.5)
        device.apply_drift(0.002)
        device.apply_drift(0.003)
        assert device.vth_drift_v == pytest.approx(0.005)

    def test_recovery_clamped_at_zero(self):
        device = Transistor(TransistorType.PMOS, 0.7)
        device.apply_drift(0.002)
        device.apply_drift(-0.010)
        assert device.vth_drift_v == 0.0

    def test_negative_nominal_rejected(self):
        with pytest.raises(ConfigurationError):
            Transistor(TransistorType.PMOS, -0.7)

    def test_negative_initial_drift_rejected(self):
        with pytest.raises(ConfigurationError):
            Transistor(TransistorType.PMOS, 0.7, vth_drift_v=-0.001)

    def test_negative_offset_allowed(self):
        device = Transistor(TransistorType.NMOS, 0.5, vth_offset_v=-0.02)
        assert device.vth_v == pytest.approx(0.48)

    def test_repr_mentions_polarity(self):
        assert "pmos" in repr(Transistor(TransistorType.PMOS, 0.7))
