"""Tests for physical constants and unit helpers."""

import pytest

from repro.physics.constants import (
    CELSIUS_OFFSET,
    HOURS_PER_MONTH,
    ROOM_TEMPERATURE_K,
    SECONDS_PER_MONTH,
    celsius_to_kelvin,
    kelvin_to_celsius,
)


class TestTemperatureConversion:
    def test_celsius_to_kelvin_at_zero(self):
        assert celsius_to_kelvin(0.0) == pytest.approx(273.15)

    def test_kelvin_to_celsius_roundtrip(self):
        assert kelvin_to_celsius(celsius_to_kelvin(85.0)) == pytest.approx(85.0)

    def test_room_temperature_is_25c(self):
        assert kelvin_to_celsius(ROOM_TEMPERATURE_K) == pytest.approx(25.0)

    def test_negative_celsius(self):
        assert celsius_to_kelvin(-40.0) == pytest.approx(233.15)


class TestMonthConstants:
    def test_seconds_per_month_consistent_with_hours(self):
        assert SECONDS_PER_MONTH == pytest.approx(HOURS_PER_MONTH * 3600.0)

    def test_month_is_about_30_44_days(self):
        assert SECONDS_PER_MONTH / 86400.0 == pytest.approx(30.44, abs=0.01)

    def test_twelve_months_is_a_gregorian_year(self):
        assert 12 * SECONDS_PER_MONTH == pytest.approx(365.2425 * 86400.0)

    def test_celsius_offset_value(self):
        assert CELSIUS_OFFSET == pytest.approx(273.15)
