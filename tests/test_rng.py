"""Tests for deterministic random-stream management."""

import numpy as np
import pytest

from repro.rng import SeedHierarchy, as_generator


class TestSeedHierarchy:
    def test_same_name_same_stream(self):
        seeds = SeedHierarchy(7)
        a = seeds.stream("board-0").random(10)
        b = seeds.stream("board-0").random(10)
        np.testing.assert_array_equal(a, b)

    def test_different_names_different_streams(self):
        seeds = SeedHierarchy(7)
        a = seeds.stream("board-0").random(10)
        b = seeds.stream("board-1").random(10)
        assert not np.array_equal(a, b)

    def test_different_roots_different_streams(self):
        a = SeedHierarchy(1).stream("x").random(10)
        b = SeedHierarchy(2).stream("x").random(10)
        assert not np.array_equal(a, b)

    def test_cross_process_stability(self):
        """Streams are derived via SHA-256, not the salted builtin hash,
        so the same name yields the same stream in every process."""
        value = float(SeedHierarchy(0).stream("stability-probe").random())
        assert value == pytest.approx(0.72632, abs=1e-4)

    def test_child_namespaces_are_independent(self):
        seeds = SeedHierarchy(7)
        a = seeds.child("left").stream("x").random(5)
        b = seeds.child("right").stream("x").random(5)
        assert not np.array_equal(a, b)

    def test_child_reproducible(self):
        a = SeedHierarchy(7).child("sub").stream("x").random(5)
        b = SeedHierarchy(7).child("sub").stream("x").random(5)
        np.testing.assert_array_equal(a, b)

    def test_non_integer_seed_rejected(self):
        with pytest.raises(TypeError):
            SeedHierarchy("seed")


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_is_deterministic(self):
        np.testing.assert_array_equal(
            as_generator(5).random(4), as_generator(5).random(4)
        )

    def test_generator_passes_through(self):
        generator = np.random.default_rng(0)
        assert as_generator(generator) is generator

    def test_hierarchy_uses_name(self):
        seeds = SeedHierarchy(3)
        a = as_generator(seeds, "alpha").random(4)
        b = as_generator(SeedHierarchy(3), "alpha").random(4)
        np.testing.assert_array_equal(a, b)

    def test_invalid_type_rejected(self):
        with pytest.raises(TypeError):
            as_generator(3.14)
